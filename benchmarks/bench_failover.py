"""Replicated-shard failover: kill the primary, keep every key lit.

``bench_cluster_scaleout`` already SIGKILLs a worker mid-run and gates on
client *errors* — but without replication the dead worker's key range
reads **empty** until the corpse restarts and replays its WAL.  This
bench runs the same real-process fleet with ``replication_factor=2`` and
gates on the stronger §III-G property: stale-but-available, no key goes
dark.

Timeline (wall clock, diurnal-modulated op rate):

1. preload a seeded population, then converge — replication queues
   drained, anti-entropy repair rounds run until a round ships zero
   bytes, so every key's replica holds the preloaded image;
2. SIGKILL the roster-ring **primary** of a tracked key (chaos selector
   ``@primary:<pid>``) mid-run; keep reading and writing through the
   resilient client while the registry TTL-evicts the corpse and
   promotes the replica;
3. restart the victim; surviving peers drain their hinted-handoff
   queues into it; a final repair pass closes any in-flight-at-kill
   holes.

Gates:

* client-observed error rate < 1 % across the whole run (reads + writes);
* **zero** ok-but-empty reads for preloaded keys in the victim's range —
  the replica really served while the primary was dead;
* the registry recorded a promotion for the evicted primary;
* replication cost is proportional to the *delta* rate, not profile
  size: mean shipped bytes/delta stays a small fraction of the mean
  resident profile image;
* hinted handoff drained on rejoin (handoff depth back to zero, hints
  shipped > 0) with post-rejoin repair bytes well under the fleet's
  resident bytes — catch-up rode the delta stream, not a full copy;
* same-seed replay: the final per-key fid sets are identical across two
  runs — client-observable state is deterministic even though kill
  timing, retries and promotion races are not.

Run standalone (``python benchmarks/bench_failover.py [--smoke]
[--json]``, with ``src`` on ``PYTHONPATH``) — ``make bench-failover`` /
``make bench-failover-smoke``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from random import Random

from repro.clock import MILLIS_PER_DAY, SystemClock, perf_ms
from repro.chaos.engine import ChaosEvent
from repro.chaos.process import ProcessChaosEngine
from repro.cluster.resilience import ResilienceConfig
from repro.core.timerange import TimeRange
from repro.errors import IPSError
from repro.net.cluster import ProcessCluster
from repro.workload.diurnal import DiurnalTrafficModel

#: Workers start without numpy so subprocess cold-start stays cheap.
WORKER_ENV = {"IPS_KERNEL_DISABLE_NUMPY": "1"}

WORKERS = 3
FACTOR = 2
ROUND_MS = 50.0
READ_BATCH = 8
#: First fid minted by mid-run writes; preload fids stay below this so
#: every mid-run write is a unique, replay-comparable fid.
WRITE_FID_BASE = 10_000
TRACKED_PID = 0


def _preload(client, population: int, now_ms: int) -> None:
    rng = Random(17)
    for profile_id in range(population):
        fids = [100 + rng.randrange(40) for _ in range(4)]
        counts = [(1 + rng.randrange(3), rng.randrange(3), rng.randrange(2))
                  for _ in fids]
        wrote = client.add_profiles(profile_id, now_ms, 0, 1, fids, counts)
        assert wrote == 1, f"preload write for {profile_id} failed"


def _converge(cluster: ProcessCluster, max_sweeps: int = 20) -> int:
    """Drain delta queues, then repair until two peer sweeps ship zero.

    ``repair_round`` round-robins over live peers, so one zero-byte round
    only proves the peer *polled that round* was in sync.  A sweep of
    ``live - 1`` rounds covers every peer, and two clean sweeps in a row
    (the background repair loop can interleave and skew the rotation)
    mean the fleet is converged.
    """
    cluster.wait_for_replication_drain(20.0)
    total = 0
    clean = 0
    for _ in range(max_sweeps):
        live = len(cluster.replication_stats())
        shipped = sum(
            sweep_stats.get("bytes", 0)
            for sweep_stats in cluster.repair_now(max(1, live - 1)).values()
        )
        total += shipped
        clean = clean + 1 if shipped == 0 else 0
        if clean >= 2:
            return total
    raise AssertionError(
        f"repair did not converge in {max_sweeps} sweeps ({total} bytes)"
    )


def _fid_sets(client, population: int, window: TimeRange) -> dict[int, list]:
    """Final client-observable state: sorted fid list per key."""
    outcome = client.multi_get_topk(
        list(range(population)), 0, 1, window, k=256
    )
    sets: dict[int, list] = {}
    for result in outcome.results:
        assert result.ok, f"final read of {result.profile_id} failed"
        sets[result.profile_id] = sorted(row.fid for row in result.value)
    return sets


def run_failover(
    *,
    population: int,
    duration_ms: float,
    kill_at_ms: float,
    revert_at_ms: float,
    ops_per_round: int,
    seed: int = 7,
    ttl_ms: float = 1_200.0,
) -> dict:
    """One full kill-the-primary run; returns measurements, no gating."""
    now_ms = int(SystemClock().now_ms())
    window = TimeRange.absolute(now_ms - 60_000, now_ms + 120_000)
    traffic = DiurnalTrafficModel(
        base_qps=0.4, peak_qps=1.0, noise_fraction=0.0, seed=seed
    )
    with tempfile.TemporaryDirectory(prefix="ips-failover-") as tmp:
        with ProcessCluster(
            WORKERS, tmp,
            replication_factor=FACTOR,
            replication_ms=25.0,
            repair_ms=1_000.0,
            ttl_ms=ttl_ms,
            worker_env=WORKER_ENV,
        ) as cluster:
            cluster.wait_for_members(WORKERS)
            client = cluster.client(
                resilience=ResilienceConfig(deadline_ms=4_000.0, seed=seed)
            )
            _preload(client, population, now_ms)
            time.sleep(0.4)  # one maintenance interval: write tables merge
            repair_baseline_bytes = _converge(cluster)

            victim = cluster.primary_for(TRACKED_PID)
            range_keys = [
                pid for pid in range(population)
                if cluster.primary_for(pid) == victim
            ]
            chaos = ProcessChaosEngine(cluster)
            chaos.schedule(ChaosEvent(
                start_ms=int(kill_at_ms),
                duration_ms=int(revert_at_ms - kill_at_ms),
                kind="node_crash",
                target=f"@primary:{TRACKED_PID}",
            ))
            chaos.start()

            rng = Random(seed)
            reads = read_errors = range_reads = range_empty = 0
            writes = write_errors = 0
            next_fid = WRITE_FID_BASE
            # The op schedule is a pure function of the round index (wall
            # time only paces it): same seed -> same op sequence -> the
            # final fid sets are comparable across runs even though kill
            # timing and retries are not deterministic.
            n_rounds = max(1, int(duration_ms / ROUND_MS))
            start = perf_ms()
            for round_index in range(n_rounds):
                chaos.tick()
                # Diurnal modulation: map run progress onto one simulated
                # day so the op rate sweeps trough -> peak like Fig. 16.
                virtual_ms = int(round_index / n_rounds * MILLIS_PER_DAY)
                scale = traffic.qps_at(virtual_ms) / traffic.peak_qps
                ops = max(1, int(ops_per_round * scale))
                for _ in range(ops):
                    if rng.random() < 0.65:
                        # Half of each batch from the victim's range so the
                        # zero-empty gate has real volume.
                        batch = [
                            range_keys[rng.randrange(len(range_keys))]
                            if index % 2 == 0
                            else rng.randrange(population)
                            for index in range(READ_BATCH)
                        ]
                        outcome = client.multi_get_topk(
                            batch, 0, 1, window, k=8
                        )
                        for result in outcome.results:
                            reads += 1
                            in_range = result.profile_id in range_keys
                            range_reads += in_range
                            if not result.ok:
                                read_errors += 1
                            elif in_range and not result.value:
                                range_empty += 1
                    else:
                        # Unique fid per write: makes the final per-key fid
                        # sets a replay-comparable state digest even under
                        # at-least-once delta delivery.
                        pid = rng.randrange(population)
                        fid = next_fid
                        next_fid += 1
                        for attempt in range(100):
                            writes += 1
                            try:
                                if client.add_profiles(
                                    pid, now_ms, 0, 1, [fid], [(1, 0, 0)]
                                ) == 1:
                                    break
                            except IPSError:
                                pass
                            write_errors += 1
                            time.sleep(0.02)
                        else:
                            raise AssertionError(
                                f"write {pid}/{fid} never acked"
                            )
                behind_ms = (round_index + 1) * ROUND_MS - (perf_ms() - start)
                if behind_ms > 0:
                    time.sleep(behind_ms / 1000.0)

            promotions = (
                cluster.registry_server.registry.members()["promotions"]
            )
            chaos.finish()  # restart the victim if still down
            cluster.wait_for_members(WORKERS)
            cluster.wait_for_replication_drain(30.0)
            repl = cluster.replication_stats()
            hints_drained = sum(
                s.get("hints_drained", 0) for s in repl.values()
            )
            handoff_depth = sum(
                s.get("handoff_depth", 0) for s in repl.values()
            )
            repair_rejoin_bytes = _converge(cluster)
            time.sleep(0.4)  # let the drained deltas merge before reading

            repl = cluster.replication_stats()
            fleet = cluster.fleet_stats()
            deltas_shipped = sum(
                s.get("deltas_shipped", 0) for s in repl.values()
            )
            delta_bytes = sum(s.get("delta_bytes", 0) for s in repl.values())
            resident = sum(s.get("resident", 0) for s in fleet.values())
            memory_bytes = sum(
                s.get("memory_bytes", 0) for s in fleet.values()
            )
            return {
                "victim": victim,
                "range_keys": len(range_keys),
                "reads": reads,
                "read_errors": read_errors,
                "range_reads": range_reads,
                "range_empty": range_empty,
                "writes": writes,
                "write_errors": write_errors,
                "error_rate": (
                    (read_errors + write_errors) / (reads + writes)
                    if reads + writes else 0.0
                ),
                "promotions": promotions,
                "faults": chaos.fault_counts(),
                "hints_drained": hints_drained,
                "handoff_depth_after_drain": handoff_depth,
                "repair_baseline_bytes": repair_baseline_bytes,
                "repair_rejoin_bytes": repair_rejoin_bytes,
                "deltas_shipped": deltas_shipped,
                "delta_bytes": delta_bytes,
                "bytes_per_delta": (
                    delta_bytes / deltas_shipped if deltas_shipped else 0.0
                ),
                "avg_profile_bytes": (
                    memory_bytes / resident if resident else 0.0
                ),
                "memory_bytes": memory_bytes,
                "fid_sets": _fid_sets(client, population, window),
            }


def check(result: dict, replay: dict) -> list[str]:
    failures = []
    if result["error_rate"] >= 0.01:
        failures.append(
            f"client error rate {result['error_rate']:.4%} >= 1% "
            f"({result['read_errors']} read + {result['write_errors']} "
            f"write errors / {result['reads'] + result['writes']} ops)"
        )
    if result["range_empty"] > 0:
        failures.append(
            f"{result['range_empty']}/{result['range_reads']} reads of the "
            f"dead primary's preloaded keys came back empty"
        )
    if result["range_reads"] == 0:
        failures.append("no reads landed in the victim's key range")
    if result["faults"]["node_crash"] < 1:
        failures.append("the primary was never killed")
    if result["promotions"] < 1:
        failures.append("registry never promoted a replica for the victim")
    if result["hints_drained"] < 1:
        failures.append("no hinted-handoff deltas drained into the rejoiner")
    if result["handoff_depth_after_drain"] != 0:
        failures.append(
            f"handoff queues not empty after rejoin "
            f"({result['handoff_depth_after_drain']} deltas stuck)"
        )
    # Proportionality: replication ships the logical write (~tens of
    # bytes), not the profile image (KBs).
    if result["deltas_shipped"] < 1:
        failures.append("no deltas were ever shipped")
    elif result["bytes_per_delta"] * 4 > result["avg_profile_bytes"]:
        failures.append(
            f"bytes/delta {result['bytes_per_delta']:.1f} not << mean "
            f"profile image {result['avg_profile_bytes']:.1f} bytes"
        )
    # Rejoin catch-up rode the hinted delta stream; repair only patched
    # the in-flight-at-kill hole, never re-shipped the fleet.
    if result["repair_rejoin_bytes"] >= result["memory_bytes"]:
        failures.append(
            f"post-rejoin repair shipped {result['repair_rejoin_bytes']} "
            f"bytes >= resident {result['memory_bytes']} bytes"
        )
    if result["fid_sets"] != replay["fid_sets"]:
        diff = [
            pid for pid in result["fid_sets"]
            if result["fid_sets"][pid] != replay["fid_sets"].get(pid)
        ]
        failures.append(
            f"same-seed replay diverged on {len(diff)} keys "
            f"(e.g. {diff[:5]})"
        )
    return failures


def report(result: dict, replay: dict) -> None:
    print("== failover: SIGKILL the primary, replicas keep serving ==")
    print(
        f"  victim {result['victim']} owned {result['range_keys']} of the "
        f"preloaded keys; faults {result['faults']}, "
        f"promotions {result['promotions']}"
    )
    print(
        f"  {result['reads']} reads ({result['read_errors']} errors), "
        f"{result['writes']} write attempts ({result['write_errors']} "
        f"errors) -> error rate {result['error_rate']:.4%}"
    )
    print(
        f"  victim-range reads: {result['range_reads']}, "
        f"empty: {result['range_empty']}"
    )
    print(
        f"  replication: {result['deltas_shipped']} deltas, "
        f"{result['delta_bytes']} bytes "
        f"({result['bytes_per_delta']:.1f} B/delta vs "
        f"{result['avg_profile_bytes']:.0f} B mean profile image)"
    )
    print(
        f"  rejoin: {result['hints_drained']} hinted deltas drained, "
        f"repair shipped {result['repair_rejoin_bytes']} bytes "
        f"(baseline convergence {result['repair_baseline_bytes']} bytes, "
        f"fleet resident {result['memory_bytes']} bytes)"
    )
    same = result["fid_sets"] == replay["fid_sets"]
    print(
        f"  replay: final fid sets over {len(result['fid_sets'])} keys "
        f"{'identical' if same else 'DIVERGED'} across same-seed runs"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short run for make check (same gates)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON only")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        settings = dict(
            population=96, duration_ms=4_000.0,
            kill_at_ms=600.0, revert_at_ms=2_800.0, ops_per_round=6,
        )
    else:
        settings = dict(
            population=256, duration_ms=10_000.0,
            kill_at_ms=2_000.0, revert_at_ms=7_000.0, ops_per_round=14,
        )

    result = run_failover(seed=args.seed, **settings)
    replay = run_failover(seed=args.seed, **settings)
    failures = check(result, replay)

    if args.json:
        payload = {
            key: value
            for key, value in result.items()
            if key != "fid_sets"
        }
        payload["mode"] = "smoke" if args.smoke else "full"
        payload["replay_identical"] = (
            result["fid_sets"] == replay["fid_sets"]
        )
        payload["failures"] = failures
        print(json.dumps(payload, indent=2))
    else:
        report(result, replay)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-failover gates OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
