"""Mini-scale *real* cluster benchmark: Figs. 16/18/19 mechanisms on the
actual implementation (no simulator).

This drives a real in-process 4-node IPS cluster with a Zipf-skewed mixed
read/write workload (10:1 ratio, §IV-C) and reports real wall-clock
throughput, latency percentiles and cache behaviour.  Absolute numbers
are Python-process-scale (repro band 2/5 — 40M qps needs the production
fleet); the mechanisms measured are real: cache hit/miss costs, the
write-table fast path, and maintenance off the serving path.
"""

import time

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import ShrinkConfig, TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.monitoring import ClusterMonitor
from repro.sim.metrics import percentile
from repro.workload import EventStreamGenerator, WorkloadConfig

from conftest import NOW_MS


def run_miniscale(num_requests: int = 20_000) -> dict:
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(
        name="mini",
        attributes=("impression", "click", "like"),
        shrink=ShrinkConfig.from_mapping({}, default_retain=100),
    )
    cluster = IPSCluster(
        config, num_nodes=4, clock=clock,
        cache_capacity_bytes=8 * 1024 * 1024,
    )
    client = cluster.client("miniscale")
    generator = EventStreamGenerator(
        WorkloadConfig(num_users=2000, num_items=5000, seed=99)
    )
    # Warm-up: give every user a profile so the measured phase exercises
    # cache behaviour rather than reads of never-written users.
    for user_id in range(2000):
        client.add_profile(
            user_id, NOW_MS - MILLIS_PER_HOUR, user_id % 8, 0,
            user_id % 500, {"impression": 1},
        )
    cluster.run_background_cycle()

    monitor = ClusterMonitor(cluster)
    monitor.sample()

    read_latencies: list[float] = []
    write_latencies: list[float] = []
    queries = generator.queries(num_requests)
    wall_start = time.perf_counter()
    for index, query in enumerate(queries):
        if index % 11 == 0:  # ~1 write per 10 reads.
            start = time.perf_counter()
            client.add_profile(
                query.user_id, NOW_MS, query.slot, query.type_id or 0,
                index % 500, {"click": 1, "impression": 1},
            )
            write_latencies.append((time.perf_counter() - start) * 1000)
        else:
            start = time.perf_counter()
            client.get_profile_topk(
                query.user_id, query.slot, query.type_id,
                TimeRange.current(query.window_ms),
                SortType.ATTRIBUTE, query.k, sort_attribute="click",
            )
            read_latencies.append((time.perf_counter() - start) * 1000)
        if index % 2000 == 1999:
            cluster.run_background_cycle()
            monitor.sample()
    wall_seconds = time.perf_counter() - wall_start
    snapshot = monitor.sample()
    cluster.shutdown()

    return {
        "ops_per_second": num_requests / wall_seconds,
        "read_p50_ms": percentile(read_latencies, 50),
        "read_p99_ms": percentile(read_latencies, 99),
        "write_p50_ms": percentile(write_latencies, 50),
        "write_p99_ms": percentile(write_latencies, 99),
        "hit_ratio": snapshot.hit_ratio,
        "memory_ratio": snapshot.memory_ratio,
        "resident": snapshot.resident_profiles,
    }


def test_miniscale_real_cluster(benchmark):
    result = benchmark.pedantic(run_miniscale, rounds=1, iterations=1)
    print(
        f"\n=== Mini-scale real cluster (4 nodes, Zipf users, 10:1 r/w) ===\n"
        f"throughput {result['ops_per_second']:.0f} ops/s | "
        f"read p50 {result['read_p50_ms']:.3f} ms p99 "
        f"{result['read_p99_ms']:.3f} ms | "
        f"write p50 {result['write_p50_ms']:.3f} ms p99 "
        f"{result['write_p99_ms']:.3f} ms | "
        f"hit {result['hit_ratio'] * 100:.1f}% | "
        f"resident {result['resident']}"
    )
    # Mechanism checks, not absolute-throughput claims.
    assert result["ops_per_second"] > 1000
    # Writes are cheaper than reads at the median: the write-table append
    # fast path vs merge + sort on the read path (the §III-F design).
    assert result["write_p50_ms"] < result["read_p50_ms"]
    # The skewed workload keeps the cache effective.
    assert result["hit_ratio"] > 0.80
