"""Batched multi-get vs looped single-gets over the RPC-proxied cluster.

Recommendation backends fetch profiles for hundreds of candidate items per
ranking request.  The looped path pays one RPC round-trip per key; the
batched path deduplicates the keys, groups them by owning shard via the
hash ring, and issues one RPC per shard.  This bench drives both paths over
the same warm cluster (every node behind an :class:`RPCNodeProxy`, so each
call pays the Table II network model) and reports:

* modelled end-to-end latency (the RPC layer's client-latency samples) —
  the serving-side win the batch architecture exists for;
* wall-clock time of the real Python implementation;
* the dedup ratio and per-shard fan-out telemetry from
  :class:`~repro.monitoring.BatchQueryMetrics`.

Run standalone (``python benchmarks/bench_batch_query.py [--smoke]``, with
``src`` on ``PYTHONPATH``) or via pytest (``pytest benchmarks/bench_batch_query.py``).
"""

from __future__ import annotations

import argparse
import random
import time

from repro import IPSCluster, SortType, TableConfig, TimeRange
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.server.proxy import RPCNodeProxy
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)
SEED = 42


def build_cluster(num_nodes: int, population: int, writes_per_profile: int):
    """A warm single-region cluster with every node behind an RPC proxy."""
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="bench", attributes=("click", "like", "share"))
    cluster = IPSCluster(config, num_nodes=num_nodes, clock=clock)
    for node_id in list(cluster.region.nodes):
        cluster.region.nodes[node_id] = RPCNodeProxy(
            cluster.region.nodes[node_id], clock
        )
    client = cluster.client("bench")
    rng = random.Random(SEED)
    for profile_id in range(population):
        for _ in range(writes_per_profile):
            client.add_profile(
                profile_id,
                NOW_MS - rng.randrange(30 * MILLIS_PER_DAY),
                1,
                1,
                rng.randrange(200),
                {"click": rng.randrange(1, 10), "like": rng.randrange(5)},
            )
    cluster.run_background_cycle()
    return cluster, client


def make_batches(
    num_batches: int, batch_size: int, dup_fraction: float, population: int
) -> list[list[int]]:
    """Zipf-skewed batches with an exact in-batch duplicate fraction."""
    zipf = ZipfGenerator(population, s=1.05, seed=SEED)
    rng = random.Random(SEED + 1)
    batches = []
    unique_count = max(1, round(batch_size * (1.0 - dup_fraction)))
    for _ in range(num_batches):
        unique: list[int] = []
        seen: set[int] = set()
        while len(unique) < unique_count:
            candidate = zipf.sample()
            if candidate not in seen:
                seen.add(candidate)
                unique.append(candidate)
        duplicates = rng.choices(unique, k=batch_size - unique_count)
        batch = unique + duplicates
        rng.shuffle(batch)
        batches.append(batch)
    return batches


def modelled_latency_ms(cluster) -> float:
    """Total modelled client latency accumulated across all node proxies."""
    return sum(
        proxy.rpc.stats.client_hist.sum
        for proxy in cluster.region.nodes.values()
    )


def run_bench(
    batch_size: int = 256,
    dup_fraction: float = 0.25,
    num_batches: int = 20,
    num_nodes: int = 8,
    population: int = 2000,
    writes_per_profile: int = 6,
) -> dict[str, float]:
    cluster, client = build_cluster(num_nodes, population, writes_per_profile)
    batches = make_batches(num_batches, batch_size, dup_fraction, population)

    # Warm both paths once so cache residency is identical for the
    # measured passes.
    for profile_id in batches[0]:
        client.get_profile_topk(profile_id, 1, 1, WINDOW, SortType.TOTAL, k=10)
    client.multi_get_topk(batches[0], 1, 1, WINDOW, SortType.TOTAL, k=10)
    client.batch_metrics = type(client.batch_metrics)()  # reset telemetry

    looped_model_start = modelled_latency_ms(cluster)
    looped_wall_start = time.perf_counter()
    looped_results = []
    for batch in batches:
        looped_results.append(
            [
                client.get_profile_topk(
                    profile_id, 1, 1, WINDOW, SortType.TOTAL, k=10
                )
                for profile_id in batch
            ]
        )
    looped_wall_ms = (time.perf_counter() - looped_wall_start) * 1000.0
    looped_model_ms = modelled_latency_ms(cluster) - looped_model_start

    batched_model_start = modelled_latency_ms(cluster)
    batched_wall_start = time.perf_counter()
    batched_results = []
    for batch in batches:
        batched_results.append(
            client.multi_get_topk(batch, 1, 1, WINDOW, SortType.TOTAL, k=10)
        )
    batched_wall_ms = (time.perf_counter() - batched_wall_start) * 1000.0
    batched_model_ms = modelled_latency_ms(cluster) - batched_model_start

    # The two paths must answer identically — a correctness gate so the
    # speedup is never bought with wrong results.
    for looped, batched in zip(looped_results, batched_results):
        assert all(result.ok for result in batched)
        assert [result.value for result in batched] == looped

    metrics = client.batch_metrics
    return {
        "batch_size": batch_size,
        "num_batches": num_batches,
        "num_nodes": num_nodes,
        "looped_model_ms": looped_model_ms,
        "batched_model_ms": batched_model_ms,
        "model_speedup": looped_model_ms / batched_model_ms,
        "looped_wall_ms": looped_wall_ms,
        "batched_wall_ms": batched_wall_ms,
        "wall_speedup": looped_wall_ms / batched_wall_ms,
        "dedup_ratio": metrics.dedup_ratio,
        "mean_fanout": metrics.mean_fanout,
    }


def report(result: dict[str, float]) -> None:
    print()
    print("=== Batched multi-get vs looped single-gets ===")
    print(
        f"batches={result['num_batches']:.0f}  "
        f"batch_size={result['batch_size']:.0f}  "
        f"nodes={result['num_nodes']:.0f}"
    )
    print(
        f"modelled latency: looped={result['looped_model_ms']:9.1f} ms   "
        f"batched={result['batched_model_ms']:9.1f} ms   "
        f"speedup={result['model_speedup']:5.1f}x"
    )
    print(
        f"wall clock:       looped={result['looped_wall_ms']:9.1f} ms   "
        f"batched={result['batched_wall_ms']:9.1f} ms   "
        f"speedup={result['wall_speedup']:5.1f}x"
    )
    print(
        f"dedup_ratio={result['dedup_ratio']:.3f}   "
        f"mean per-shard fan-out={result['mean_fanout']:.2f} RPCs/batch"
    )


def test_batched_multiget_speedup():
    """Smoke-sized pytest entry point: batched must be >= 2x on the model."""
    result = run_bench(
        batch_size=64, num_batches=3, num_nodes=4, population=300,
        writes_per_profile=3,
    )
    report(result)
    assert result["model_speedup"] >= 2.0
    assert abs(result["dedup_ratio"] - 0.25) < 0.02


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--dup-fraction", type=float, default=0.25)
    parser.add_argument("--batches", type=int, default=20)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny configuration for CI (same assertions, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.batch_size < 1 or args.batches < 1 or args.nodes < 1 or args.population < 1:
        parser.error("--batch-size, --batches, --nodes and --population must be >= 1")
    if not 0.0 <= args.dup_fraction < 1.0:
        parser.error("--dup-fraction must be in [0, 1)")
    if args.smoke:
        result = run_bench(
            batch_size=64, num_batches=3, num_nodes=4, population=300,
            writes_per_profile=3,
        )
    else:
        result = run_bench(
            batch_size=args.batch_size,
            dup_fraction=args.dup_fraction,
            num_batches=args.batches,
            num_nodes=args.nodes,
            population=args.population,
        )
    report(result)
    if result["model_speedup"] < 2.0:
        raise SystemExit(
            f"batched path only {result['model_speedup']:.2f}x on the "
            "latency model; expected >= 2x"
        )


if __name__ == "__main__":
    main()
