"""Benchmark: reference (python) vs columnar (numpy) query kernels.

Times the hot top-K path — multi-way slice merge, aggregate, sort, cut —
on a single profile through both kernel backends, across profile sizes
(distinct feature count) and K values.  Before any timing, both backends
must return identical ``FeatureResult`` lists *and* identical
``QueryStats`` (the differential contract `tests/test_kernel_oracle.py`
enforces exhaustively), so a speedup can never be bought with wrong
answers.

Two numbers per numpy case:

* **cold** — first query after the writes, paying the one-off
  list-of-lists -> columnar conversion that is then memoised per slice
  (``Slice.kernel_cache``);
* **warm** — steady state, where the gather is a C-speed concat of
  cached int64 blocks.  This is the number that matters for the serving
  read path (profiles are read-hot/write-cold between slice rollovers)
  and the one the ``>= 5x on the 10k-feature top-K`` gate asserts.

Run from the repo root: ``python benchmarks/bench_kernels.py [--smoke]``.
"""

from __future__ import annotations

import argparse

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, perf_ms
from repro.config import TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.kernels import available_backends
from repro.core.profile import ProfileData
from repro.core.query import QueryEngine, QueryStats, SortType
from repro.core.timerange import TimeRange
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
ATTRIBUTES = ("like", "comment", "share")
WINDOW = TimeRange.current(31 * MILLIS_PER_DAY)
NUM_SLICES = 30

#: The acceptance gate: warm numpy top-K on the 10k-feature profile.
GATE_FIDS = 10_000
GATE_K = 100
GATE_SPEEDUP = 5.0


def build_profile(n_fids: int, seed: int = 0) -> ProfileData:
    """One day-granular profile: 30 slices of zipf-distributed writes.

    Writes per slice scale with the fid universe so the big case lands
    near the production shape (10k distinct fids -> ~30k merged rows
    across 30 slices, width 3).
    """
    aggregate = get_aggregate("sum")
    zipf = ZipfGenerator(n_fids, s=1.05, seed=seed)
    profile = ProfileData(1, write_granularity_ms=MILLIS_PER_DAY)
    writes_per_slice = max(64, n_fids // 6)
    for day in range(NUM_SLICES):
        base_ms = NOW_MS - day * MILLIS_PER_DAY
        for i in range(writes_per_slice):
            fid = zipf.sample()
            profile.add(
                base_ms - (i % 20) * MILLIS_PER_HOUR // 20,
                slot=1,
                type_id=1,
                fid=fid,
                counts=[1 + fid % 7, i % 3, 1],
                aggregate=aggregate,
            )
    return profile


def _run_query(engine: QueryEngine, profile: ProfileData, k: int):
    stats = QueryStats()
    results = engine.top_k(
        profile, 1, 1, WINDOW, SortType.ATTRIBUTE, k=k, now_ms=NOW_MS,
        sort_attribute="like", stats=stats,
    )
    return results, stats


def _time_query(engine: QueryEngine, profile: ProfileData, k: int,
                repeats: int) -> float:
    start = perf_ms()
    for _ in range(repeats):
        _run_query(engine, profile, k)
    return (perf_ms() - start) / repeats


def run_case(n_fids: int, k: int, repeats: int, seed: int = 0) -> dict:
    config = TableConfig(name="bench_kernels", attributes=ATTRIBUTES)
    aggregate = get_aggregate("sum")
    profile = build_profile(n_fids, seed=seed)
    rows = sum(
        len(fids)
        for profile_slice in profile.slices
        for fids in profile_slice.feature_maps(1, 1)
    )

    python_engine = QueryEngine(config, aggregate, backend="python")
    case = {"n_fids": n_fids, "rows": rows, "k": k}

    if "numpy" in available_backends():
        numpy_engine = QueryEngine(config, aggregate, backend="numpy")
        # Cold: the first columnar query converts every slice to int64
        # blocks (memoised in Slice.kernel_cache thereafter).
        cold_start = perf_ms()
        numpy_results, numpy_stats = _run_query(numpy_engine, profile, k)
        case["numpy_cold_ms"] = perf_ms() - cold_start

        # Correctness gate before any timing claims.
        python_results, python_stats = _run_query(python_engine, profile, k)
        assert numpy_results == python_results, "backends disagree on results"
        assert numpy_stats == python_stats, "backends disagree on stats"

        case["numpy_ms"] = _time_query(numpy_engine, profile, k, repeats)

    case["python_ms"] = _time_query(python_engine, profile, k, repeats)
    if "numpy_ms" in case:
        case["speedup"] = case["python_ms"] / case["numpy_ms"]
    return case


def run_bench(repeats: int) -> list[dict]:
    cases = []
    for n_fids in (300, 3_000, GATE_FIDS):
        for k in (10, GATE_K, 1_000):
            cases.append(run_case(n_fids, k, repeats))
    return cases


def report(cases: list[dict]) -> None:
    print()
    print("=== Kernel backends: python reference vs numpy columnar ===")
    print(f"{NUM_SLICES} slices, width {len(ATTRIBUTES)}, zipf(s=1.05) fids,"
          " 31-day window, sort=ATTRIBUTE(like), warm numbers are"
          " steady-state (per-slice columnar cache populated)")
    header = (
        f"{'fids':>7} {'rows':>7} {'K':>5} {'python':>10} {'numpy':>10} "
        f"{'cold':>10} {'speedup':>8}"
    )
    print(header)
    for case in cases:
        numpy_ms = case.get("numpy_ms")
        print(
            f"{case['n_fids']:>7} {case['rows']:>7} {case['k']:>5} "
            f"{case['python_ms']:>8.3f}ms "
            + (f"{numpy_ms:>8.3f}ms " if numpy_ms is not None
               else f"{'n/a':>10} ")
            + (f"{case['numpy_cold_ms']:>8.3f}ms " if numpy_ms is not None
               else f"{'n/a':>10} ")
            + (f"{case['speedup']:>7.1f}x" if numpy_ms is not None
               else f"{'n/a':>8}")
        )
    if "numpy" not in available_backends():
        print("numpy backend unavailable: columnar columns skipped, "
              "speedup gate not applicable")


def gate_case(cases: list[dict]) -> dict | None:
    for case in cases:
        if case["n_fids"] == GATE_FIDS and case["k"] == GATE_K:
            return case
    return None


def check_gate(cases: list[dict]) -> bool:
    """True when the acceptance gate holds (or numpy is unavailable)."""
    if "numpy" not in available_backends():
        return True
    case = gate_case(cases)
    assert case is not None, "gate case missing from the sweep"
    ok = case["speedup"] >= GATE_SPEEDUP
    verdict = "PASS" if ok else "FAIL"
    print(
        f"gate [{verdict}]: {GATE_FIDS}-fid top-{GATE_K} numpy speedup "
        f"{case['speedup']:.1f}x (required >= {GATE_SPEEDUP:.0f}x)"
    )
    return ok


def test_kernel_topk_speedup():
    """Pytest entry point: the 10k-feature gate at smoke repeats."""
    cases = [run_case(GATE_FIDS, GATE_K, repeats=3)]
    report(cases)
    assert check_gate(cases)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument(
        "--smoke", action="store_true",
        help="gate case only, few repeats (same assertion, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.smoke:
        cases = [run_case(GATE_FIDS, GATE_K, repeats=3)]
    else:
        cases = run_bench(args.repeats)
    report(cases)
    if not check_gate(cases):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
