"""Benchmark: reference (python) vs columnar (numpy) query kernels.

Times the hot top-K path — multi-way slice merge, aggregate, sort, cut —
on a single profile through both kernel backends, across profile sizes
(distinct feature count) and K values.  Before any timing, both backends
must return identical ``FeatureResult`` lists *and* identical
``QueryStats`` (the differential contract `tests/test_kernel_oracle.py`
enforces exhaustively), so a speedup can never be bought with wrong
answers.

Two numbers per numpy case:

* **cold** — first query after the writes, paying the one-off
  list-of-lists -> columnar conversion that is then memoised per slice
  (``Slice.kernel_cache``);
* **warm** — steady state, where the gather is a C-speed concat of
  cached int64 blocks.  This is the number that matters for the serving
  read path (profiles are read-hot/write-cold between slice rollovers)
  and the one the ``>= 5x on the 10k-feature top-K`` gate asserts.

Run from the repo root: ``python benchmarks/bench_kernels.py [--smoke]``.
"""

from __future__ import annotations

import argparse

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, perf_ms
from repro.config import TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.kernels import available_backends
from repro.core.profile import ProfileData
from repro.core.query import QueryEngine, QueryStats, SortType
from repro.core.timerange import TimeRange
from repro.storage.serialization import ProfileCodec
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
ATTRIBUTES = ("like", "comment", "share")
WINDOW = TimeRange.current(31 * MILLIS_PER_DAY)
NUM_SLICES = 30

#: The acceptance gate: warm numpy top-K on the 10k-feature profile.
GATE_FIDS = 10_000
GATE_K = 100
GATE_SPEEDUP = 5.0

#: Cold gate: the first query on a freshly *decoded* profile (the KV/WAL
#: load path) must land within this factor of steady state.  Before the
#: columnar-native representation, decode rebuilt per-stat dicts and the
#: first query paid a full python gather (12.7 ms cold vs 3.3 ms warm at
#: 10k fids); zero-copy decode hands the kernels int64 columns directly.
COLD_WARM_RATIO = 1.5

#: Multi-get gate: one batched 256-profile top-K must beat 256
#: independent single gets on the reference path by this factor, and
#: must also beat 256 columnar single gets outright (the batch runs a
#: near-constant number of array ops regardless of batch size).
MULTIGET_PROFILES = 256
MULTIGET_FIDS = 96
MULTIGET_SLICES = 6
MULTIGET_WRITES = 72
MULTIGET_K = 10
MULTIGET_SPEEDUP = 5.0


def build_profile(n_fids: int, seed: int = 0) -> ProfileData:
    """One day-granular profile: 30 slices of zipf-distributed writes.

    Writes per slice scale with the fid universe so the big case lands
    near the production shape (10k distinct fids -> ~30k merged rows
    across 30 slices, width 3).
    """
    aggregate = get_aggregate("sum")
    zipf = ZipfGenerator(n_fids, s=1.05, seed=seed)
    profile = ProfileData(1, write_granularity_ms=MILLIS_PER_DAY)
    writes_per_slice = max(64, n_fids // 6)
    for day in range(NUM_SLICES):
        base_ms = NOW_MS - day * MILLIS_PER_DAY
        for i in range(writes_per_slice):
            fid = zipf.sample()
            profile.add(
                base_ms - (i % 20) * MILLIS_PER_HOUR // 20,
                slot=1,
                type_id=1,
                fid=fid,
                counts=[1 + fid % 7, i % 3, 1],
                aggregate=aggregate,
            )
    return profile


def _run_query(engine: QueryEngine, profile: ProfileData, k: int):
    stats = QueryStats()
    results = engine.top_k(
        profile, 1, 1, WINDOW, SortType.ATTRIBUTE, k=k, now_ms=NOW_MS,
        sort_attribute="like", stats=stats,
    )
    return results, stats


def _time_query(engine: QueryEngine, profile: ProfileData, k: int,
                repeats: int) -> float:
    start = perf_ms()
    for _ in range(repeats):
        _run_query(engine, profile, k)
    return (perf_ms() - start) / repeats


def run_case(n_fids: int, k: int, repeats: int, seed: int = 0) -> dict:
    config = TableConfig(name="bench_kernels", attributes=ATTRIBUTES)
    aggregate = get_aggregate("sum")
    profile = build_profile(n_fids, seed=seed)
    rows = sum(
        len(fids)
        for profile_slice in profile.slices
        for fids in profile_slice.feature_maps(1, 1)
    )

    python_engine = QueryEngine(config, aggregate, backend="python")
    case = {"n_fids": n_fids, "rows": rows, "k": k}

    if "numpy" in available_backends():
        numpy_engine = QueryEngine(config, aggregate, backend="numpy")
        # Cold: the first columnar query converts every slice to int64
        # blocks (memoised in Slice.kernel_cache thereafter).
        cold_start = perf_ms()
        numpy_results, numpy_stats = _run_query(numpy_engine, profile, k)
        case["numpy_cold_ms"] = perf_ms() - cold_start

        # Correctness gate before any timing claims.
        python_results, python_stats = _run_query(python_engine, profile, k)
        assert numpy_results == python_results, "backends disagree on results"
        assert numpy_stats == python_stats, "backends disagree on stats"

        case["numpy_ms"] = _time_query(numpy_engine, profile, k, repeats)

    case["python_ms"] = _time_query(python_engine, profile, k, repeats)
    if "numpy_ms" in case:
        case["speedup"] = case["python_ms"] / case["numpy_ms"]
    return case


def build_multiget_profile(pid: int) -> ProfileData:
    """One member of the multi-get fleet: small, recent, zipf-skewed."""
    aggregate = get_aggregate("sum")
    zipf = ZipfGenerator(MULTIGET_FIDS, s=1.05, seed=pid)
    profile = ProfileData(pid, write_granularity_ms=MILLIS_PER_DAY)
    for day in range(MULTIGET_SLICES):
        base_ms = NOW_MS - day * MILLIS_PER_DAY
        for i in range(MULTIGET_WRITES):
            fid = zipf.sample()
            profile.add(
                base_ms - (i % 20) * MILLIS_PER_HOUR // 20,
                slot=1,
                type_id=1,
                fid=fid,
                counts=[1 + fid % 7, i % 3, 1],
                aggregate=aggregate,
            )
    return profile


def run_cold_case(repeats: int) -> dict:
    """Cold (first query after decode) vs warm on the gate profile.

    The decode itself is excluded — it is the load path, and it is paid
    either way.  What the gate bounds is the *query-side* penalty of a
    cold cache: with zero-copy (columnar v2) images, decode yields int64
    columns the kernels use directly, so cold ≈ warm.
    """
    config = TableConfig(name="bench_kernels", attributes=ATTRIBUTES)
    engine = QueryEngine(config, get_aggregate("sum"))
    blob = ProfileCodec.encode_profile(build_profile(GATE_FIDS))

    warm_profile = ProfileCodec.decode_profile(blob)
    _run_query(engine, warm_profile, GATE_K)  # populate per-slice caches
    warm_ms = _time_query(engine, warm_profile, GATE_K, repeats)

    total = 0.0
    for _ in range(repeats):
        profile = ProfileCodec.decode_profile(blob)
        start = perf_ms()
        _run_query(engine, profile, GATE_K)
        total += perf_ms() - start
    cold_ms = total / repeats
    return {
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "ratio": cold_ms / warm_ms,
    }


def run_multiget_case(repeats: int) -> dict:
    """One 256-profile batched top-K vs 256 independent single gets.

    Three timings over identical profiles and an identical query:

    * ``reference_ms`` — 256 single gets on the python reference path
      (the per-profile loop the batch kernels replace);
    * ``singles_ms``   — 256 single gets on the columnar backend;
    * ``batch_ms``     — one ``top_k_batch`` call.

    Before timing, all three must return identical results — the batch
    differential oracle's contract, re-asserted here so the speedup can
    never be bought with wrong answers.
    """
    config = TableConfig(name="bench_kernels", attributes=ATTRIBUTES)
    aggregate = get_aggregate("sum")
    python_engine = QueryEngine(config, aggregate, backend="python")
    engine = QueryEngine(config, aggregate)
    profiles = [build_multiget_profile(pid) for pid in range(MULTIGET_PROFILES)]

    def reference_singles():
        return [
            python_engine.top_k(
                profile, 1, 1, WINDOW, SortType.ATTRIBUTE, k=MULTIGET_K,
                now_ms=NOW_MS, sort_attribute="like",
            )
            for profile in profiles
        ]

    def singles():
        return [
            engine.top_k(
                profile, 1, 1, WINDOW, SortType.ATTRIBUTE, k=MULTIGET_K,
                now_ms=NOW_MS, sort_attribute="like",
            )
            for profile in profiles
        ]

    def batch():
        return engine.top_k_batch(
            profiles, 1, 1, WINDOW, SortType.ATTRIBUTE, k=MULTIGET_K,
            now_ms=NOW_MS, sort_attribute="like",
        )

    batched = batch()  # also warms every per-slice columnar cache
    assert batched == singles() == reference_singles(), (
        "batched multi-get disagrees with independent single gets"
    )

    case = {"n_profiles": MULTIGET_PROFILES, "k": MULTIGET_K}
    for name, fn in (
        ("reference_ms", reference_singles),
        ("singles_ms", singles),
        ("batch_ms", batch),
    ):
        best = None
        for _ in range(repeats):
            start = perf_ms()
            fn()
            elapsed = perf_ms() - start
            best = elapsed if best is None else min(best, elapsed)
        case[name] = best
    case["speedup_vs_reference"] = case["reference_ms"] / case["batch_ms"]
    case["speedup_vs_singles"] = case["singles_ms"] / case["batch_ms"]
    return case


def run_bench(repeats: int) -> list[dict]:
    cases = []
    for n_fids in (300, 3_000, GATE_FIDS):
        for k in (10, GATE_K, 1_000):
            cases.append(run_case(n_fids, k, repeats))
    return cases


def report(cases: list[dict]) -> None:
    print()
    print("=== Kernel backends: python reference vs numpy columnar ===")
    print(f"{NUM_SLICES} slices, width {len(ATTRIBUTES)}, zipf(s=1.05) fids,"
          " 31-day window, sort=ATTRIBUTE(like), warm numbers are"
          " steady-state (per-slice columnar cache populated)")
    header = (
        f"{'fids':>7} {'rows':>7} {'K':>5} {'python':>10} {'numpy':>10} "
        f"{'cold':>10} {'speedup':>8}"
    )
    print(header)
    for case in cases:
        numpy_ms = case.get("numpy_ms")
        print(
            f"{case['n_fids']:>7} {case['rows']:>7} {case['k']:>5} "
            f"{case['python_ms']:>8.3f}ms "
            + (f"{numpy_ms:>8.3f}ms " if numpy_ms is not None
               else f"{'n/a':>10} ")
            + (f"{case['numpy_cold_ms']:>8.3f}ms " if numpy_ms is not None
               else f"{'n/a':>10} ")
            + (f"{case['speedup']:>7.1f}x" if numpy_ms is not None
               else f"{'n/a':>8}")
        )
    if "numpy" not in available_backends():
        print("numpy backend unavailable: columnar columns skipped, "
              "speedup gate not applicable")


def gate_case(cases: list[dict]) -> dict | None:
    for case in cases:
        if case["n_fids"] == GATE_FIDS and case["k"] == GATE_K:
            return case
    return None


def check_gate(cases: list[dict]) -> bool:
    """True when the acceptance gate holds (or numpy is unavailable)."""
    if "numpy" not in available_backends():
        return True
    case = gate_case(cases)
    assert case is not None, "gate case missing from the sweep"
    ok = case["speedup"] >= GATE_SPEEDUP
    verdict = "PASS" if ok else "FAIL"
    print(
        f"gate [{verdict}]: {GATE_FIDS}-fid top-{GATE_K} numpy speedup "
        f"{case['speedup']:.1f}x (required >= {GATE_SPEEDUP:.0f}x)"
    )
    return ok


def report_cold(case: dict) -> None:
    print(
        f"cold-decode: first query on a freshly decoded {GATE_FIDS}-fid "
        f"profile {case['cold_ms']:.3f}ms vs warm {case['warm_ms']:.3f}ms "
        f"({case['ratio']:.2f}x)"
    )


def check_cold_gate(case: dict) -> bool:
    ok = case["ratio"] <= COLD_WARM_RATIO
    verdict = "PASS" if ok else "FAIL"
    print(
        f"gate [{verdict}]: cold/warm ratio {case['ratio']:.2f}x "
        f"(required <= {COLD_WARM_RATIO:.1f}x)"
    )
    return ok


def report_multiget(case: dict) -> None:
    print(
        f"multi-get: {case['n_profiles']} profiles top-{case['k']} — "
        f"batch {case['batch_ms']:.3f}ms vs "
        f"{case['n_profiles']} reference singles {case['reference_ms']:.3f}ms "
        f"({case['speedup_vs_reference']:.1f}x) vs "
        f"columnar singles {case['singles_ms']:.3f}ms "
        f"({case['speedup_vs_singles']:.2f}x)"
    )


def check_multiget_gate(case: dict) -> bool:
    """Batch must beat the reference loop >= 5x and columnar singles outright."""
    if "numpy" not in available_backends():
        print("multi-get gate skipped: numpy unavailable, batch kernels "
              "fall back to the single-get loop")
        return True
    ok_reference = case["speedup_vs_reference"] >= MULTIGET_SPEEDUP
    ok_singles = case["speedup_vs_singles"] > 1.0
    verdict = "PASS" if ok_reference and ok_singles else "FAIL"
    print(
        f"gate [{verdict}]: {case['n_profiles']}-profile multi-get "
        f"{case['speedup_vs_reference']:.1f}x vs reference singles "
        f"(required >= {MULTIGET_SPEEDUP:.0f}x), "
        f"{case['speedup_vs_singles']:.2f}x vs columnar singles "
        f"(required > 1x)"
    )
    return ok_reference and ok_singles


def test_kernel_topk_speedup():
    """Pytest entry point: the 10k-feature gate at smoke repeats."""
    cases = [run_case(GATE_FIDS, GATE_K, repeats=3)]
    report(cases)
    assert check_gate(cases)


def test_cold_decode_ratio():
    """Pytest entry point: cold (post-decode) must stay near warm."""
    case = run_cold_case(repeats=3)
    report_cold(case)
    assert check_cold_gate(case)


def test_multiget_batch_speedup():
    """Pytest entry point: the 256-profile multi-get gate."""
    case = run_multiget_case(repeats=3)
    report_multiget(case)
    assert check_multiget_gate(case)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument(
        "--smoke", action="store_true",
        help="gate cases only, few repeats (same assertions, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.smoke:
        cases = [run_case(GATE_FIDS, GATE_K, repeats=3)]
        aux_repeats = 5
    else:
        cases = run_bench(args.repeats)
        aux_repeats = max(5, args.repeats // 4)
    cold_case = run_cold_case(aux_repeats)
    multiget_case = run_multiget_case(aux_repeats)
    report(cases)
    report_cold(cold_case)
    report_multiget(multiget_case)
    ok = check_gate(cases)
    ok = check_cold_gate(cold_case) and ok
    ok = check_multiget_gate(multiget_case) and ok
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
