"""Figure 16: query throughput, p99 and p50 latency over Spring Festival.

Paper: the Jinri Toutiao cluster served 30-40M feature queries/s at peak
with p99 going from 9 ms to 10 ms while p50 stayed flat at about 1 ms.

We regenerate the three series over five simulated days at 2-hour steps
with the calibrated 1000-node simulator and assert the shape: the
throughput band, the flat median and the load-following tail.
"""

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR

from conftest import fmt_ms, print_series

DURATION_MS = 5 * MILLIS_PER_DAY
STEP_MS = 2 * MILLIS_PER_HOUR


def test_fig16_query_throughput_and_latency(benchmark, simulator, read_traffic):
    result = benchmark.pedantic(
        lambda: simulator.simulate_queries(read_traffic, 0, DURATION_MS, STEP_MS),
        rounds=1,
        iterations=1,
    )

    rows = [
        f"t={step.time_ms / MILLIS_PER_HOUR:6.1f}h  "
        f"qps={step.offered_qps / 1e6:5.1f}M  "
        f"p50={fmt_ms(step.p50_ms)}ms  p99={fmt_ms(step.p99_ms)}ms"
        for step in result.steps[:: max(1, len(result.steps) // 30)]
    ]
    print_series(
        "Fig 16 — query throughput / p50 / p99 (5 days, 2h steps)",
        "paper: 30-40M qps, p50 ~1 ms flat, p99 9-10 ms",
        rows,
    )
    print(
        f"measured: qps {result.trough('offered_qps') / 1e6:.1f}M-"
        f"{result.peak('offered_qps') / 1e6:.1f}M, "
        f"p50 {result.trough('p50_ms'):.2f}-{result.peak('p50_ms'):.2f} ms, "
        f"p99 {result.trough('p99_ms'):.2f}-{result.peak('p99_ms'):.2f} ms"
    )

    # Shape assertions (who wins / how curves move, not absolute equality).
    assert 28e6 < result.trough("offered_qps") < 33e6
    assert 37e6 < result.peak("offered_qps") < 43e6
    # p50 flat around 1 ms.
    assert result.peak("p50_ms") - result.trough("p50_ms") < 0.8
    assert 0.8 < result.mean("p50_ms") < 1.6
    # p99 near the paper's band and visibly load-following.
    assert 4.0 < result.trough("p99_ms") < 11.0
    assert result.peak("p99_ms") > result.trough("p99_ms") + 1.0
