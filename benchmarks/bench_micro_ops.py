"""Micro-benchmarks of the real implementation's hot paths.

These are the absolute single-node costs that calibrate the cluster
simulator (see ``repro.sim.calibrate``): top-K query, write, compaction,
shrink, serialization and compression on the §III-D representative
profile (~60 slices, a few hundred features).
"""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import ShrinkConfig, TableConfig
from repro.core.engine import ProfileEngine
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.sim.calibrate import build_representative_profile
from repro.storage import compress, decompress
from repro.storage.serialization import ProfileCodec

from conftest import NOW_MS


@pytest.fixture
def engine():
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(
        name="bench",
        attributes=("click", "like", "share"),
        shrink=ShrinkConfig.from_mapping({}, default_retain=100),
    )
    engine = ProfileEngine(config, clock)
    build_representative_profile(engine, profile_id=1, now_ms=NOW_MS)
    return engine


WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)


def test_query_topk_30d_window(benchmark, engine):
    result = benchmark(
        lambda: engine.get_profile_topk(
            1, 1, 1, WINDOW, SortType.ATTRIBUTE, k=10, sort_attribute="click"
        )
    )
    assert result


def test_query_topk_all_types(benchmark, engine):
    result = benchmark(
        lambda: engine.get_profile_topk(1, 1, None, WINDOW, SortType.TOTAL, k=50)
    )
    assert result


def test_query_decay_exponential(benchmark, engine):
    result = benchmark(
        lambda: engine.get_profile_decay(
            1, 1, 1, WINDOW, "exponential", 7 * MILLIS_PER_DAY, k=10,
            sort_attribute="click",
        )
    )
    assert result


def test_query_filter(benchmark, engine):
    benchmark(
        lambda: engine.get_profile_filter(
            1, 1, 1, WINDOW, lambda stat: stat.count_at(0) > 2
        )
    )


def test_write_single(benchmark, engine):
    counter = iter(range(100_000_000))
    benchmark(
        lambda: engine.add_profile(
            2, NOW_MS - (next(counter) % 1000) * 1000, 1, 1, 7, [1, 0, 0]
        )
    )


def test_write_batched_32(benchmark, engine):
    fids = list(range(32))
    counts = [[1, 0, 0]] * 32
    benchmark(lambda: engine.add_profiles(3, NOW_MS, 1, 1, fids, counts))


def test_full_compaction(benchmark, engine):
    profile = engine.table.get_or_raise(1)

    def run():
        fresh = profile.copy()
        return engine.compactor.compact(fresh, NOW_MS)

    stats = benchmark(run)
    assert stats.slices_before >= stats.slices_after


def test_shrink_pass(benchmark, engine):
    profile = engine.table.get_or_raise(1)

    def run():
        fresh = profile.copy()
        return engine.shrinker.shrink(fresh, NOW_MS)

    benchmark(run)


def test_serialize_profile(benchmark, engine):
    profile = engine.table.get_or_raise(1)
    blob = benchmark(lambda: ProfileCodec.encode_profile(profile))
    assert len(blob) > 0


def test_deserialize_profile(benchmark, engine):
    blob = ProfileCodec.encode_profile(engine.table.get_or_raise(1))
    profile = benchmark(lambda: ProfileCodec.decode_profile(blob))
    assert profile.profile_id == 1


def test_compress_profile_blob(benchmark, engine):
    blob = ProfileCodec.encode_profile(engine.table.get_or_raise(1))
    compressed = benchmark(lambda: compress(blob))
    assert len(compressed) < len(blob)


def test_decompress_profile_blob(benchmark, engine):
    blob = compress(ProfileCodec.encode_profile(engine.table.get_or_raise(1)))
    benchmark(lambda: decompress(blob))


def test_feature_assembly_per_request(benchmark, engine):
    """§I: 'extract thousands of features for a single request'.

    100 specs x k=10 = 2000 numbers per assembled request, evaluated
    against the representative profile.
    """
    from repro.assembly import FeatureAssembler, FeatureSpec

    specs = [
        FeatureSpec(
            name=f"f{index}",
            slot=index % 4,
            type_id=index % 2,
            window_ms=(1 + index % 30) * MILLIS_PER_DAY,
            attribute=("click", "like", "share")[index % 3],
            k=10,
        )
        for index in range(100)
    ]
    assembler = FeatureAssembler(engine, specs, engine.config.attributes)
    record = benchmark(lambda: assembler.assemble(1, NOW_MS))
    assert len(record.vector()) == 2000
