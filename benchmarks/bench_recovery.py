"""Crash-recovery cost: replay time vs WAL length, and the WAL ack tax.

The durability layer (internals §12) buys zero acked-write loss with two
running costs, and this bench measures both against the real node:

* **recovery time** — a crashed node replays its WAL tail on restart;
  replay work scales with the number of records past the last
  checkpoint, so recovery time is really a function of WAL length and
  checkpoint interval.  Two sweeps: WAL length with checkpoints off, and
  checkpoint interval at a fixed write count.
* **ack overhead** — every ``add_profile`` ack now waits for a WAL
  append (and, in ``always`` mode, its fsync barrier); the fire-and-
  forget arm (no durability attached) is the baseline the overhead is
  measured against.

Every recovery arm also re-checks correctness: the recovered node must
serve exactly the pre-crash top-K, whatever the checkpoint cadence.

Run standalone (``python benchmarks/bench_recovery.py [--smoke]``, with
``src`` on ``PYTHONPATH``) or via pytest
(``pytest benchmarks/bench_recovery.py``).
"""

from __future__ import annotations

import argparse
import random

from repro.clock import MILLIS_PER_DAY, SimulatedClock, perf_ms
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.server.node import IPSNode
from repro.server.recovery import attach_memory_durability
from repro.storage import InMemoryKVStore

NOW_MS = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(2 * MILLIS_PER_DAY)
POPULATION = 48
PROBE_PROFILE = 7


def build_node(
    checkpoint_interval: int = 0, sync: str = "always", durable: bool = True
) -> IPSNode:
    config = TableConfig(name="bench", attributes=("click",))
    node = IPSNode(
        "n0", config, InMemoryKVStore(), clock=SimulatedClock(NOW_MS)
    )
    if durable:
        attach_memory_durability(
            node, sync=sync, checkpoint_interval_records=checkpoint_interval
        )
    return node


def write_workload(node: IPSNode, writes: int, cycle_every: int = 0) -> None:
    """``writes`` single-feature adds over a fixed population; optionally
    run the background cycle (flush + maybe_checkpoint) every N writes,
    the way a node's maintenance loop would."""
    rng = random.Random(11)
    for index in range(writes):
        node.add_profile(
            rng.randrange(POPULATION),
            NOW_MS,
            1,
            0,
            rng.randrange(40),
            {"click": 1},
        )
        if cycle_every and (index + 1) % cycle_every == 0:
            node.run_cache_cycle()


def _probe(node: IPSNode) -> list:
    return [
        (r.fid, tuple(r.counts))
        for r in node.get_profile_topk(PROBE_PROFILE, 1, 0, WINDOW, k=64)
    ]


def crash_and_recover(node: IPSNode) -> dict:
    """Crash the node, time ``recover()``, verify the served state."""
    node.merge_write_table()
    before = _probe(node)
    node.crash()
    start = perf_ms()
    report = node.recover()
    recover_ms = perf_ms() - start
    return {
        "records_replayed": report.records_replayed,
        "checkpoint_sequence": report.checkpoint_sequence,
        "recover_ms": recover_ms,
        "replay_ms": report.replay_ms,
        "state_matches": _probe(node) == before,
    }


def sweep_wal_length(lengths: list[int]) -> list[dict]:
    """Recovery cost with checkpoints off: the whole WAL replays."""
    out = []
    for writes in lengths:
        node = build_node(checkpoint_interval=0)
        write_workload(node, writes)
        result = crash_and_recover(node)
        result["writes"] = writes
        out.append(result)
    return out


def sweep_checkpoint_interval(writes: int, intervals: list[int]) -> list[dict]:
    """Recovery cost at a fixed write count, varying checkpoint cadence."""
    out = []
    for interval in intervals:
        node = build_node(checkpoint_interval=interval)
        write_workload(node, writes, cycle_every=32)
        result = crash_and_recover(node)
        result["interval"] = interval
        result["checkpoints"] = node.durability.stats.checkpoints
        out.append(result)
    return out


def measure_ack_overhead(writes: int) -> dict:
    """Wall time for the same write volume: no WAL vs group vs always."""
    arms = {}
    for name, durable, sync in (
        ("fire_and_forget", False, "always"),
        ("wal_group", True, "group"),
        ("wal_always", True, "always"),
    ):
        node = build_node(durable=durable, sync=sync)
        start = perf_ms()
        write_workload(node, writes)
        elapsed = perf_ms() - start
        arms[name] = {
            "elapsed_ms": elapsed,
            "us_per_write": 1000.0 * elapsed / writes,
            "writes_logged": (
                node.durability.stats.writes_logged if durable else 0
            ),
        }
    baseline = arms["fire_and_forget"]["elapsed_ms"]
    for name in ("wal_group", "wal_always"):
        arms[name]["overhead_x"] = (
            arms[name]["elapsed_ms"] / baseline if baseline else float("inf")
        )
    arms["writes"] = writes
    return arms


def run_bench(
    lengths: list[int], interval_writes: int, overhead_writes: int
) -> dict:
    return {
        "wal_length": sweep_wal_length(lengths),
        "checkpoint_interval": sweep_checkpoint_interval(
            interval_writes, [0, 64, 256]
        ),
        "ack_overhead": measure_ack_overhead(overhead_writes),
    }


def report(result: dict) -> None:
    print("\n=== Crash recovery cost ===")
    print("-- recovery time vs WAL length (checkpoints off) --")
    for row in result["wal_length"]:
        print(
            f"  {row['writes']:>6} writes: replayed={row['records_replayed']} "
            f"recover={row['recover_ms']:.2f} ms "
            f"(replay {row['replay_ms']:.2f} ms) "
            f"state_ok={row['state_matches']}"
        )
    print("-- recovery time vs checkpoint interval "
          f"({result['checkpoint_interval'][0]['records_replayed']} "
          "records when never checkpointing) --")
    for row in result["checkpoint_interval"]:
        label = row["interval"] or "off"
        print(
            f"  interval={label:>4}: checkpoints={row['checkpoints']} "
            f"replayed={row['records_replayed']} "
            f"recover={row['recover_ms']:.2f} ms "
            f"state_ok={row['state_matches']}"
        )
    arms = result["ack_overhead"]
    print(f"-- WAL ack overhead ({arms['writes']} writes) --")
    for name in ("fire_and_forget", "wal_group", "wal_always"):
        arm = arms[name]
        extra = (
            f" ({arm['overhead_x']:.2f}x baseline)"
            if "overhead_x" in arm
            else ""
        )
        print(
            f"  {name:>15}: {arm['us_per_write']:.1f} us/write"
            f"{extra}"
        )


def check(result: dict) -> None:
    # With checkpoints off, recovery replays exactly the acked writes, and
    # replay work grows with WAL length.
    for row in result["wal_length"]:
        assert row["records_replayed"] == row["writes"], row
        assert row["state_matches"], row
    replayed = [row["records_replayed"] for row in result["wal_length"]]
    assert replayed == sorted(replayed) and replayed[0] < replayed[-1]
    # Checkpointing bounds the replay tail; tighter cadence, more
    # checkpoints, fewer records to replay — with identical served state.
    by_interval = {
        row["interval"]: row for row in result["checkpoint_interval"]
    }
    for row in result["checkpoint_interval"]:
        assert row["state_matches"], row
    assert by_interval[0]["checkpoints"] == 0
    assert by_interval[64]["checkpoints"] > by_interval[256]["checkpoints"]
    assert (
        by_interval[64]["records_replayed"]
        < by_interval[0]["records_replayed"]
    )
    assert (
        by_interval[64]["records_replayed"]
        <= by_interval[256]["records_replayed"]
    )
    # Every durable arm really logged (and therefore acked) every write.
    arms = result["ack_overhead"]
    assert arms["wal_group"]["writes_logged"] == arms["writes"]
    assert arms["wal_always"]["writes_logged"] == arms["writes"]


def test_recovery_cost():
    result = run_bench(
        lengths=[200, 800], interval_writes=800, overhead_writes=1500
    )
    report(result)
    check(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller write volumes for CI (same assertions)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_bench(
            lengths=[200, 800], interval_writes=800, overhead_writes=1500
        )
    else:
        result = run_bench(
            lengths=[500, 2000, 8000],
            interval_writes=4000,
            overhead_writes=20000,
        )
    report(result)
    check(result)
    print("OK")


if __name__ == "__main__":
    main()
