"""§III-D prose claims: profile size under compact + truncate + shrink.

Paper numbers this bench regenerates:

* the average slice-list length is 62 and a user profile uses about 45 KB
  of memory, staying fairly stable;
* without compact/truncate, a profile growing one 5-minute slice at a time
  would reach ~76 MB after a year — "clearly not economically practical";
* a serialized + compressed profile takes < 40 KB (§III-E).

We replay one year of regular activity twice — once with the maintenance
machinery enabled (the production Listing-3 config) and once with it off —
and compare trajectories.
"""

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import ShrinkConfig, TableConfig, TruncateConfig
from repro.core.engine import ProfileEngine
from repro.storage import BulkPersistence, InMemoryKVStore

from conftest import NOW_MS, print_series

YEAR_MS = 365 * MILLIS_PER_DAY


def simulate_year(maintained: bool) -> dict:
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(
        name="t",
        attributes=("click", "like", "share"),
        truncate=TruncateConfig(max_age_ms=YEAR_MS),
        shrink=ShrinkConfig.from_mapping({}, default_retain=50)
        if maintained
        else None,
    )
    engine = ProfileEngine(config, clock)
    trajectory = []
    # One action every 5 minutes for a year — the paper's "each slice
    # contains 5-minute worth of data" growth scenario (§III-D).
    start = NOW_MS - YEAR_MS
    writes_per_day = 288  # 24h / 5min
    step_ms = 5 * 60 * 1000
    for day in range(365):
        day_start = start + day * MILLIS_PER_DAY
        for step in range(writes_per_day):
            sequence = day * writes_per_day + step
            engine.add_profile(
                1, day_start + step * step_ms, step % 4, step % 2,
                sequence % 900, {"click": 1, "like": step % 2},
            )
        if maintained and day % 7 == 0:
            engine.maintain_profile(1)
        if day % 30 == 0:
            profile = engine.table.get(1)
            trajectory.append(
                (day, profile.slice_count(), profile.memory_bytes())
            )
    if maintained:
        engine.maintain_profile(1)
    profile = engine.table.get(1)
    persistence = BulkPersistence(InMemoryKVStore(), "t")
    return {
        "trajectory": trajectory,
        "slices": profile.slice_count(),
        "memory_bytes": profile.memory_bytes(),
        "serialized_bytes": persistence.serialized_size(profile),
    }


def test_profile_growth_with_and_without_maintenance(benchmark):
    results = benchmark.pedantic(
        lambda: (simulate_year(True), simulate_year(False)),
        rounds=1,
        iterations=1,
    )
    maintained, unbounded = results
    rows = [
        f"day={day:3d}  maintained: slices={slices:5d} mem={mem / 1024:7.1f}KB"
        for day, slices, mem in maintained["trajectory"]
    ]
    print_series(
        "§III-D — profile growth over one year",
        "paper: ~62 slices, ~45 KB stable with maintenance; ~76 MB/yr without",
        rows,
    )
    ratio = unbounded["memory_bytes"] / maintained["memory_bytes"]
    print(
        f"maintained: {maintained['slices']} slices, "
        f"{maintained['memory_bytes'] / 1024:.1f} KB memory, "
        f"{maintained['serialized_bytes'] / 1024:.1f} KB serialized"
    )
    print(
        f"unbounded:  {unbounded['slices']} slices, "
        f"{unbounded['memory_bytes'] / 1024:.1f} KB memory "
        f"({ratio:.0f}x larger)"
    )

    # Maintained profile: same order of magnitude as the paper's 62-slice,
    # 45 KB steady state (our in-memory accounting model charges Python
    # dict overhead the C++ structs do not have, so the bound is looser).
    assert maintained["slices"] < 150
    assert maintained["memory_bytes"] < 256 * 1024
    # Serialized + compressed under the 40 KB bound of §III-E.
    assert maintained["serialized_bytes"] < 40 * 1024
    # Without maintenance the same activity is dramatically larger (the
    # paper's 76 MB/yr vs 45 KB contrast) and keeps growing with history.
    assert unbounded["slices"] > 100 * maintained["slices"]
    assert ratio > 50.0
    # Stability: the maintained trajectory flattens (last two checkpoints
    # within 2x of each other) while the unbounded one keeps growing.
    maintained_tail = [mem for _, _, mem in maintained["trajectory"][-2:]]
    assert maintained_tail[1] < maintained_tail[0] * 2.0
