"""Falsifiable alerting: the paper incident mix must page, a clean run must not.

PR 3 measured that the naive (no-resilience) client loses 18% of reads
under the Fig. 17 incident timeline.  This bench turns that measurement
into a *judgment*: an :class:`~repro.obs.slo.SLOEngine` watches the naive
tenant with a 99.9% availability objective, and the multi-window
fast-burn rule (page severity) must

* **fire during the incident window** when the chaos timeline runs — the
  first page lands after the machine-crash incident begins and before
  the timeline ends;
* **never fire on a fault-free run** — same deployment, same traffic,
  no scheduled faults, empty alert timeline;
* **replay byte-identically** — two same-seed chaos runs serialize the
  exact same alert timeline JSON (everything is accounted on the
  simulated clock; trace ids and burn windows contain no wall time).

A resilient arm runs the same timeline as a control: its error rate is
~0%, so its budget must survive and its page must stay silent — the SLO
engine distinguishes the tenant that needs paging from the one that
doesn't, under identical faults.

Run standalone (``python benchmarks/bench_slo_alerts.py [--smoke]``,
with ``src`` on ``PYTHONPATH``) or via pytest; ``make slo-check`` runs
the smoke configuration.
"""

from __future__ import annotations

import argparse
import random

from repro.chaos import ChaosEngine, paper_fault_timeline
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import MultiRegionDeployment, ResilienceConfig
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import IPSError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine

NOW_MS = 400 * MILLIS_PER_DAY
ROUND_MS = 60_000
POPULATION = 200
SEED = 42

#: The chaos timeline's first incident (machine crash) begins at round 8
#: and the last (region outage) ends by round 35 — the window the page
#: must land in.
INCIDENT_START_ROUND = 8
INCIDENT_END_ROUND = 35

SLO_CONFIG = {
    "objectives": [
        {
            "name": "reads",
            "caller": "*",
            "op": "read",
            "latency_threshold_ms": "100ms",
            "latency_target": 0.99,
            "availability_target": 0.999,
        }
    ],
    "bucket": "1m",
}


def run_arm(
    chaos: bool,
    resilient: bool = False,
    seed: int = SEED,
    rounds: int = 40,
    reads_per_round: int = 100,
) -> dict:
    """One tenant through the (optional) incident timeline, SLO-judged."""
    clock = SimulatedClock(NOW_MS)
    registry = MetricsRegistry()
    config = TableConfig(name="slo", attributes=("click",))
    deployment = MultiRegionDeployment(
        config,
        ["us", "eu"],
        nodes_per_region=3,
        clock=clock,
        registry=registry,
    )
    # The engine (and its RPC proxies) exists in both arms so traffic
    # takes the identical path; only the chaos arm schedules faults.
    engine = ChaosEngine(deployment, seed=seed, registry=registry)
    if chaos:
        engine.schedule_many(
            paper_fault_timeline(NOW_MS, region="eu", round_ms=ROUND_MS)
        )
    slo = SLOEngine.from_mapping(SLO_CONFIG, clock, registry=registry)
    if resilient:
        client = deployment.client(
            "eu",
            caller="resilient",
            resilience=ResilienceConfig(seed=seed),
            slo=slo,
        )
    else:
        client = deployment.client(
            "eu", caller="naive", max_retries=0, region_failover=False,
            slo=slo,
        )

    window = TimeRange.absolute(
        NOW_MS - 30 * MILLIS_PER_DAY, NOW_MS + (rounds + 1) * ROUND_MS
    )
    for user in range(POPULATION):
        client.add_profile(user, NOW_MS, 1, 0, user % 7, {"click": 1})
    deployment.run_background_cycle()

    rng = random.Random(seed)
    errors = 0
    for _ in range(rounds):
        engine.tick()
        for _ in range(reads_per_round):
            try:
                client.get_profile_topk(
                    rng.randrange(POPULATION), 1, 0, window, SortType.TOTAL,
                    k=3,
                )
            except IPSError:
                errors += 1
        slo.evaluate()
        clock.advance(ROUND_MS)
        deployment.replicate()
    engine.tick()
    slo.evaluate()
    return {
        "errors": errors,
        "reads": rounds * reads_per_round,
        "timeline_json": slo.timeline_json(),
        "events": list(slo.timeline),
        "active": slo.active_alerts(),
        "budget_availability": slo.budget_remaining("reads:availability"),
    }


def _pages(events: list[dict]) -> list[dict]:
    return [
        event
        for event in events
        if event["event"] == "fire" and event["severity"] == "page"
    ]


def check(
    incident: dict, clean: dict, replay: dict, control: dict, rounds: int
) -> None:
    pages = _pages(incident["events"])
    assert pages, (
        "paper incident mix burned "
        f"{incident['errors']}/{incident['reads']} reads but the "
        "fast-burn page never fired"
    )
    window_start = NOW_MS + INCIDENT_START_ROUND * ROUND_MS
    window_end = NOW_MS + min(INCIDENT_END_ROUND, rounds + 1) * ROUND_MS
    first = pages[0]
    assert window_start <= first["at_ms"] <= window_end, (
        f"first page at t={first['at_ms']} outside the incident window "
        f"[{window_start}, {window_end}]"
    )
    assert incident["budget_availability"] < 0, (
        "an 18%-error incident should leave the 99.9% availability "
        f"budget overdrawn, got {incident['budget_availability']:+.3f}"
    )
    assert not clean["events"], (
        f"fault-free run produced alert events: {clean['events']}"
    )
    assert clean["errors"] == 0, (
        f"fault-free run saw {clean['errors']} errors"
    )
    assert incident["timeline_json"] == replay["timeline_json"], (
        "same-seed replay produced a different alert timeline"
    )
    assert not _pages(control["events"]), (
        "the resilient tenant absorbed the incident "
        f"(errors={control['errors']}) yet its page fired"
    )


def report(
    incident: dict, clean: dict, replay: dict, control: dict
) -> None:
    print()
    print("=== SLO burn-rate alerts under the Fig. 17 incident mix ===")
    print(
        f"naive+chaos:      {incident['errors']}/{incident['reads']} reads "
        f"failed, budget {incident['budget_availability']:+.1f}, "
        f"{len(_pages(incident['events']))} page(s), "
        f"{len(incident['events'])} events total"
    )
    for event in incident["events"]:
        offset = (event["at_ms"] - NOW_MS) // ROUND_MS
        print(
            f"  round {offset:>3}: {event['event']:<5} "
            f"[{event['severity']}] {event['slo']} "
            f"burn short={event['burn_short']:.1f} "
            f"long={event['burn_long']:.1f}"
        )
    print(
        f"naive+clean:      {clean['errors']} errors, "
        f"{len(clean['events'])} events (must be 0)"
    )
    print(
        f"resilient+chaos:  {control['errors']}/{control['reads']} reads "
        f"failed, {len(_pages(control['events']))} page(s) (must be 0)"
    )
    identical = incident["timeline_json"] == replay["timeline_json"]
    print(f"same-seed replay: timeline byte-identical={identical}")


def run_bench(rounds: int = 40, reads_per_round: int = 100) -> dict:
    incident = run_arm(chaos=True, rounds=rounds,
                       reads_per_round=reads_per_round)
    clean = run_arm(chaos=False, rounds=rounds,
                    reads_per_round=reads_per_round)
    replay = run_arm(chaos=True, rounds=rounds,
                     reads_per_round=reads_per_round)
    control = run_arm(chaos=True, resilient=True, rounds=rounds,
                      reads_per_round=reads_per_round)
    return {
        "incident": incident,
        "clean": clean,
        "replay": replay,
        "control": control,
        "rounds": rounds,
    }


def test_slo_alerts():
    """Pytest entry: chaos-must-page, clean-must-not, replay-identical."""
    result = run_bench(rounds=40, reads_per_round=60)
    report(result["incident"], result["clean"], result["replay"],
           result["control"])
    check(result["incident"], result["clean"], result["replay"],
          result["control"], result["rounds"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=40)
    parser.add_argument("--reads-per-round", type=int, default=100)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller read volume for CI (same assertions)",
    )
    args = parser.parse_args()
    if args.rounds < 1 or args.reads_per_round < 1:
        parser.error("--rounds and --reads-per-round must be >= 1")
    if args.smoke:
        result = run_bench(rounds=40, reads_per_round=60)
    else:
        result = run_bench(
            rounds=args.rounds, reads_per_round=args.reads_per_round
        )
    report(result["incident"], result["clean"], result["replay"],
           result["control"])
    check(result["incident"], result["clean"], result["replay"],
          result["control"], result["rounds"])
    print("OK")


if __name__ == "__main__":
    main()
