"""Figure 17: client-side request error rate over twenty days.

Paper: maximum error rate around 0.025 %, average below 0.01 %, overall
SLA reaching 99.99 % despite machine crashes, network outages and a data
center failover in the window.

We replay a 20-day fault schedule (five node crashes, two network blips,
one region failover) through the simulator with client-retry leakage and
assert the same ceiling, floor and SLA.
"""

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.sim import FaultSchedule

from conftest import print_series

DURATION_MS = 20 * MILLIS_PER_DAY
STEP_MS = 2 * MILLIS_PER_HOUR


def test_fig17_error_rate_over_twenty_days(benchmark, simulator, read_traffic):
    schedule = FaultSchedule.production_twenty_days(seed=42)
    result = benchmark.pedantic(
        lambda: simulator.simulate_queries(
            read_traffic, 0, DURATION_MS, STEP_MS, fault_schedule=schedule
        ),
        rounds=1,
        iterations=1,
    )

    daily_max = {}
    for step in result.steps:
        day = step.time_ms // MILLIS_PER_DAY
        daily_max[day] = max(daily_max.get(day, 0.0), step.error_rate)
    rows = [
        f"day={day:2d}  max_err={rate * 100:7.4f}%"
        for day, rate in sorted(daily_max.items())
    ]
    print_series(
        "Fig 17 — client-side error rate (20 days)",
        "paper: max ~0.025 %, average < 0.01 %, SLA 99.99 %",
        rows,
    )
    max_error = result.peak("error_rate")
    mean_error = result.mean("error_rate")
    sla = 1.0 - mean_error
    print(
        f"measured: max {max_error * 100:.4f}%, mean {mean_error * 100:.4f}%, "
        f"SLA {sla * 100:.4f}%"
    )

    assert max_error < 0.0005       # Ceiling well below 0.05 %.
    assert max_error > 0.00005      # Incidents are visible, not flat zero.
    assert mean_error < 0.0001      # Average below 0.01 %.
    assert sla > 0.9999             # The 99.99 % SLA.


def test_fig17_real_deployment_fault_replay(benchmark):
    """Real-code analogue: replay node crashes, a region outage and a
    storage blip against an actual multi-region deployment and measure the
    client-observed error rate.  Retries and failover should absorb almost
    everything — the mechanism behind the paper's 99.99 % SLA."""
    from repro.clock import MILLIS_PER_DAY, SimulatedClock
    from repro.cluster import MultiRegionDeployment
    from repro.config import TableConfig
    from repro.core.timerange import TimeRange
    from repro.errors import IPSError

    now = 400 * MILLIS_PER_DAY
    window = TimeRange.current(MILLIS_PER_DAY)

    def run():
        clock = SimulatedClock(now)
        config = TableConfig(name="t", attributes=("click",))
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=3, clock=clock
        )
        client = deployment.client("eu", caller="app")
        for user in range(200):
            client.add_profile(user, now, 1, 0, user % 7, {"click": 1})
        deployment.run_background_cycle()

        # Fault timeline across 20 rounds of 500 reads each: a node crash
        # in rounds 5-7, a full eu outage in rounds 12-13.
        errors = 0
        reads = 0
        eu = deployment.regions["eu"]
        for round_index in range(20):
            if round_index == 5:
                eu.fail_node("eu-node-0")
            if round_index == 8:
                eu.recover_node("eu-node-0")
            if round_index == 12:
                deployment.fail_region("eu")
            if round_index == 14:
                deployment.recover_region("eu")
            for read_index in range(500):
                reads += 1
                try:
                    client.get_profile_topk(
                        (round_index * 500 + read_index) % 200, 1, 0, window, k=3
                    )
                except IPSError:
                    errors += 1
        return reads, errors, client.stats

    reads, errors, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    error_rate = errors / reads
    print(
        f"\n=== Fig 17 (real deployment fault replay) === {reads} reads, "
        f"{errors} client-visible errors ({error_rate * 100:.4f}%), "
        f"{stats.region_failovers} region failovers, {stats.retries} retries"
    )
    # Failover + ring rerouting absorb the whole timeline.
    assert error_rate < 0.0005
    assert stats.region_failovers > 0  # The eu outage really happened.
