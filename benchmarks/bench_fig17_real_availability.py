"""Figure 17 against the real mini-cluster: chaos-injected availability.

The original Fig. 17 bench replays an *analytic* fault schedule whose
``retry_leak`` constant asserts how much of each incident retries absorb.
This bench removes the constant: it injects the same incident mix — a
machine crash, a network blip (erroring + slowed RPCs), a whole-region
outage with stalled replication — into an actual two-region deployment via
the :class:`~repro.chaos.ChaosEngine`, and *measures* what leaks past the
client's resilience layer (deadlines, backoff retries, hedged reads,
circuit breakers, region failover).

Three arms:

* **resilient** — the full resilience stack; must stay at or below the
  paper's error ceiling (≤ 0.1 % here, vs the paper's 0.025 % on a much
  longer window).
* **naive** — retries, failover and resilience disabled; the same fault
  timeline must hurt at least 10× more, which is the measured replacement
  for the old ``retry_leak`` factor.
* **replay** — the resilient arm re-run with the same seed; fault and
  error counts must serialize byte-identically (chaos determinism).

Run standalone (``python benchmarks/bench_fig17_real_availability.py
[--smoke]``, with ``src`` on ``PYTHONPATH``) or via pytest
(``pytest benchmarks/bench_fig17_real_availability.py``).
"""

from __future__ import annotations

import argparse
import json
import random

from repro.chaos import ChaosEngine, paper_fault_timeline
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import MultiRegionDeployment, ResilienceConfig
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import IPSError
from repro.obs.registry import MetricsRegistry

NOW_MS = 400 * MILLIS_PER_DAY
ROUND_MS = 60_000
POPULATION = 200
SEED = 42


def run_arm(
    resilient: bool,
    seed: int = SEED,
    rounds: int = 40,
    reads_per_round: int = 250,
) -> dict:
    """Drive one client arm through the Fig. 17 fault timeline.

    Returns reads, errors, per-round error counts, the engine's fault
    counts and the client's resilience summary — everything the
    determinism check serializes.
    """
    clock = SimulatedClock(NOW_MS)
    registry = MetricsRegistry()
    config = TableConfig(name="fig17", attributes=("click",))
    deployment = MultiRegionDeployment(
        config,
        ["us", "eu"],
        nodes_per_region=3,
        clock=clock,
        registry=registry,
    )
    engine = ChaosEngine(deployment, seed=seed, registry=registry)
    engine.schedule_many(
        paper_fault_timeline(NOW_MS, region="eu", round_ms=ROUND_MS)
    )
    if resilient:
        client = deployment.client(
            "eu", caller="resilient", resilience=ResilienceConfig(seed=seed)
        )
    else:
        client = deployment.client(
            "eu", caller="naive", max_retries=0, region_failover=False
        )

    window = TimeRange.absolute(
        NOW_MS - 30 * MILLIS_PER_DAY, NOW_MS + (rounds + 1) * ROUND_MS
    )
    for user in range(POPULATION):
        client.add_profile(user, NOW_MS, 1, 0, user % 7, {"click": 1})
    deployment.run_background_cycle()

    rng = random.Random(seed)
    reads = 0
    errors = 0
    per_round_errors: list[int] = []
    for _ in range(rounds):
        engine.tick()
        round_errors = 0
        for _ in range(reads_per_round):
            reads += 1
            try:
                client.get_profile_topk(
                    rng.randrange(POPULATION), 1, 0, window, SortType.TOTAL, k=3
                )
            except IPSError:
                round_errors += 1
        errors += round_errors
        per_round_errors.append(round_errors)
        clock.advance(ROUND_MS)
        deployment.replicate()
    engine.tick()  # past the timeline: revert anything still active

    summary = {
        key: value
        for key, value in client.resilience_summary().items()
        if key != "breaker_states"
    }
    return {
        "reads": reads,
        "errors": errors,
        "per_round_errors": per_round_errors,
        "faults": engine.fault_counts(),
        "resilience": summary,
        "region_failovers": client.stats.region_failovers,
        "retries": client.stats.retries,
    }


def run_bench(rounds: int = 40, reads_per_round: int = 250) -> dict:
    resilient = run_arm(True, rounds=rounds, reads_per_round=reads_per_round)
    naive = run_arm(False, rounds=rounds, reads_per_round=reads_per_round)
    replay = run_arm(True, rounds=rounds, reads_per_round=reads_per_round)
    return {"resilient": resilient, "naive": naive, "replay": replay}


def _error_rate(arm: dict) -> float:
    return arm["errors"] / arm["reads"] if arm["reads"] else 0.0


def report(result: dict) -> None:
    resilient, naive = result["resilient"], result["naive"]
    print("\n=== Fig 17 (real chaos replay) ===")
    print(
        "paper: max error ~0.025 % with retries; here: resilient vs naive "
        "client under the same injected fault timeline"
    )
    for name in ("resilient", "naive"):
        arm = result[name]
        spikes = [
            f"r{index}={count}"
            for index, count in enumerate(arm["per_round_errors"])
            if count
        ]
        print(
            f"  {name:>9}: {arm['reads']} reads, {arm['errors']} errors "
            f"({_error_rate(arm) * 100:.4f}%), "
            f"failovers={arm['region_failovers']}, retries={arm['retries']}"
        )
        if spikes:
            print(f"             error rounds: {' '.join(spikes)}")
    print(f"  faults injected: {resilient['faults']}")
    print(f"  resilience: {resilient['resilience']}")
    ratio = (
        _error_rate(naive) / _error_rate(resilient)
        if _error_rate(resilient)
        else float("inf")
    )
    print(
        f"  measured leak ratio: naive/resilient = {ratio:.1f}x "
        "(replaces the analytic retry_leak constant)"
    )


def check(result: dict) -> None:
    resilient, naive, replay = (
        result["resilient"],
        result["naive"],
        result["replay"],
    )
    resilient_rate = _error_rate(resilient)
    naive_rate = _error_rate(naive)
    # The resilience stack holds the paper's availability ceiling.
    assert resilient_rate <= 0.001, f"resilient error rate {resilient_rate:.4%}"
    # Without it the same timeline hurts an order of magnitude more — the
    # incidents really were injected and really were absorbed.
    floor = max(resilient_rate, 1.0 / resilient["reads"])
    assert naive_rate >= 10 * floor, (
        f"naive {naive_rate:.4%} not >= 10x resilient {resilient_rate:.4%}"
    )
    assert naive.get("faults"), "no faults injected in the naive arm"
    # Chaos determinism: same seed, byte-identical fault/error accounting.
    first = json.dumps(resilient, sort_keys=True)
    second = json.dumps(replay, sort_keys=True)
    assert first == second, "same-seed chaos runs diverged"


def test_fig17_real_chaos_availability():
    result = run_bench(rounds=40, reads_per_round=100)
    report(result)
    check(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=40)
    parser.add_argument("--reads-per-round", type=int, default=250)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller read volume for CI (same assertions)",
    )
    args = parser.parse_args()
    if args.rounds < 1 or args.reads_per_round < 1:
        parser.error("--rounds and --reads-per-round must be >= 1")
    if args.smoke:
        result = run_bench(rounds=40, reads_per_round=60)
    else:
        result = run_bench(rounds=args.rounds, reads_per_round=args.reads_per_round)
    report(result)
    check(result)
    print("OK")


if __name__ == "__main__":
    main()
