"""Ablation benches for the design choices DESIGN.md calls out.

* **Sharded vs single-shard LRU** (§III-C, Fig. 7): lock contention among
  concurrent serving threads and swap workers.
* **Bulk vs fine-grained persistence** (§III-E, Figs. 12-14): flush cost
  and KV traffic for small updates to large profiles.
* **Full vs partial compaction** (§III-D): CPU spent per maintenance pass.
* **Write-table isolation on the real node** (§III-F): direct-path write
  cost vs buffered append.
"""

import threading
import time

import pytest

from repro.cache import GCache
from repro.cache.lru import ShardedLRU
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.engine import ProfileEngine
from repro.server.node import IPSNode
from repro.sim.calibrate import build_representative_profile
from repro.storage import (
    BulkPersistence,
    FineGrainedPersistence,
    InMemoryKVStore,
)

from conftest import NOW_MS


# ----------------------------------------------------------------------
# Ablation 1: sharded vs unsharded LRU under concurrent touches
# ----------------------------------------------------------------------


def _hammer_lru(lru: ShardedLRU, threads: int = 4, ops: int = 20_000) -> float:
    """Wall-clock seconds for `threads` workers touching the LRU."""

    def worker(base: int) -> None:
        for index in range(ops):
            lru.touch(base * 100_000 + index % 500, 64)

    workers = [
        threading.Thread(target=worker, args=(base,)) for base in range(threads)
    ]
    start = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return time.perf_counter() - start


def test_ablation_sharded_lru_contention(benchmark):
    def run():
        single = _hammer_lru(ShardedLRU(1))
        sharded = _hammer_lru(ShardedLRU(16))
        return single, sharded

    single, sharded = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: LRU sharding (4 threads) === "
        f"1 shard: {single * 1000:.0f}ms, 16 shards: {sharded * 1000:.0f}ms, "
        f"speedup {single / sharded:.2f}x"
    )
    # The GIL hides most lock contention in Python, so the requirement is
    # modest: sharding must never be slower by more than noise.
    assert sharded < single * 1.5


# ----------------------------------------------------------------------
# Ablation 2: bulk vs fine-grained persistence for one small update
# ----------------------------------------------------------------------


def _build_large_profile():
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="t", attributes=("click", "like", "share"))
    engine = ProfileEngine(config, clock)
    for day in range(120):
        for step in range(6):
            engine.add_profile(
                1, NOW_MS - day * MILLIS_PER_DAY - step * MILLIS_PER_HOUR,
                step % 4, step % 2, (day * 6 + step) % 300, [1, 1, 0],
            )
    return engine.table.get_or_raise(1)


def test_ablation_bulk_vs_fine_grained_flush(benchmark):
    profile = _build_large_profile()

    def run():
        bulk_store = InMemoryKVStore()
        fine_store = InMemoryKVStore()
        bulk = BulkPersistence(bulk_store, "t")
        fine = FineGrainedPersistence(fine_store, "t")
        # Initial full flush for both.
        bulk.flush(profile)
        fine.flush(profile)
        start = time.perf_counter()
        for _ in range(10):
            bulk.flush(profile)
        bulk_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10):
            fine.flush(profile)
        fine_seconds = time.perf_counter() - start
        return {
            "bulk_ms": bulk_seconds * 100,
            "fine_ms": fine_seconds * 100,
            "bulk_bytes": bulk.stats.bytes_written,
            "fine_bytes": fine.stats.bytes_written,
            "bulk_value_bytes": bulk_store.total_value_bytes(),
            "fine_value_bytes": fine_store.total_value_bytes(),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: persistence mode (per flush of a "
        f"{profile.slice_count()}-slice profile) === "
        f"bulk {result['bulk_ms']:.2f}ms / fine {result['fine_ms']:.2f}ms; "
        f"stored bytes bulk={result['bulk_value_bytes']} "
        f"fine={result['fine_value_bytes']}"
    )
    # Fine-grained splits one value into meta + slices; the total stored
    # volume stays within the same order of magnitude.
    assert result["fine_value_bytes"] < result["bulk_value_bytes"] * 3


def test_ablation_fine_grained_slice_values_stay_small(benchmark):
    """§III-E: slice-split bounds individual KV value sizes."""
    profile = _build_large_profile()

    def run():
        bulk_store = InMemoryKVStore()
        fine_store = InMemoryKVStore()
        BulkPersistence(bulk_store, "t").flush(profile)
        FineGrainedPersistence(fine_store, "t").flush(profile)
        bulk_max = max(
            len(fine.value) if hasattr(fine, "value") else 0
            for fine in [bulk_store.xget(key) for key in bulk_store.keys()]
        )
        fine_max = max(
            len(fine.value)
            for fine in [fine_store.xget(key) for key in fine_store.keys()]
        )
        return bulk_max, fine_max

    bulk_max, fine_max = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: max KV value size === bulk={bulk_max}B "
        f"fine-grained={fine_max}B ({bulk_max / fine_max:.1f}x smaller values)"
    )
    assert fine_max < bulk_max


# ----------------------------------------------------------------------
# Ablation 2b: window-scoped slice loading (§III-E payoff)
# ----------------------------------------------------------------------


def test_ablation_window_load_vs_full_load(benchmark):
    """Fine-grained persistence can reload only the queried window."""
    profile = _build_large_profile()

    def run():
        store = InMemoryKVStore()
        fine = FineGrainedPersistence(store, "t")
        fine.flush(profile)
        # A 1-day window at the head of a 120-day profile.
        newest = profile.newest_timestamp_ms()
        start = time.perf_counter()
        for _ in range(20):
            fine.load_window(1, newest - 86_400_000, newest)
        window_seconds = time.perf_counter() - start
        window_bytes = fine.stats.bytes_read
        start = time.perf_counter()
        for _ in range(20):
            fine.load(1)
        full_seconds = time.perf_counter() - start
        full_bytes = fine.stats.bytes_read - window_bytes
        return window_seconds, full_seconds, window_bytes, full_bytes

    window_s, full_s, window_b, full_b = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n=== Ablation: window load vs full load (120-day profile, "
        f"1-day window) === window {window_s * 50:.2f}ms/"
        f"{window_b // 20}B vs full {full_s * 50:.2f}ms/{full_b // 20}B "
        f"per load ({full_b / max(1, window_b):.1f}x less data)"
    )
    assert window_s < full_s
    # The slice-meta record must be read either way, which floors the
    # window load's traffic; the slice-value traffic itself shrinks with
    # the window.
    assert window_b < full_b / 2


# ----------------------------------------------------------------------
# Ablation 3: full vs partial compaction cost
# ----------------------------------------------------------------------


def test_ablation_full_vs_partial_compaction(benchmark):
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="t", attributes=("click",))
    engine = ProfileEngine(config, clock)
    for hour in range(24 * 30):
        engine.add_profile(1, NOW_MS - hour * MILLIS_PER_HOUR, 1, 0, hour % 50, [1])
    profile = engine.table.get_or_raise(1)

    def run():
        full_copy = profile.copy()
        start = time.perf_counter()
        full_stats = engine.compactor.compact(full_copy, NOW_MS)
        full_seconds = time.perf_counter() - start
        partial_copy = profile.copy()
        start = time.perf_counter()
        partial_stats = engine.compactor.compact(
            partial_copy, NOW_MS, partial_budget=32
        )
        partial_seconds = time.perf_counter() - start
        return full_seconds, partial_seconds, full_stats, partial_stats

    full_s, partial_s, full_stats, partial_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n=== Ablation: compaction strategy === "
        f"full: {full_s * 1000:.2f}ms ({full_stats.merges} merges), "
        f"partial(32): {partial_s * 1000:.2f}ms ({partial_stats.merges} merges)"
    )
    # Partial compaction does strictly less work per pass — the mechanism
    # behind §III-D's peak-time strategy.
    assert partial_stats.merges <= full_stats.merges


# ----------------------------------------------------------------------
# Ablation 3b: our snappy-style codec vs stdlib zlib (codec honesty check)
# ----------------------------------------------------------------------


def test_ablation_codec_vs_zlib(benchmark):
    """Quantify the trade-off of the from-scratch LZ codec.

    Snappy's design point (and ours) is speed over ratio; zlib is the
    opposite.  This ablation documents where our pure-Python codec lands
    on a real serialized profile so the substitution in DESIGN.md §1.3 is
    measured, not asserted.
    """
    import zlib

    from repro.storage.compression import compress as our_compress
    from repro.storage.compression import decompress as our_decompress
    from repro.storage.serialization import ProfileCodec

    profile = _build_large_profile()
    blob = ProfileCodec.encode_profile(profile)

    def run():
        start = time.perf_counter()
        ours = our_compress(blob)
        our_compress_s = time.perf_counter() - start
        start = time.perf_counter()
        our_decompress(ours)
        our_decompress_s = time.perf_counter() - start
        start = time.perf_counter()
        theirs = zlib.compress(blob, 6)
        zlib_compress_s = time.perf_counter() - start
        start = time.perf_counter()
        zlib.decompress(theirs)
        zlib_decompress_s = time.perf_counter() - start
        return {
            "blob": len(blob),
            "ours": len(ours),
            "zlib": len(theirs),
            "our_compress_ms": our_compress_s * 1000,
            "our_decompress_ms": our_decompress_s * 1000,
            "zlib_compress_ms": zlib_compress_s * 1000,
            "zlib_decompress_ms": zlib_decompress_s * 1000,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: codec vs zlib on a {result['blob']}B profile blob "
        f"=== ours {result['ours']}B in {result['our_compress_ms']:.2f}ms "
        f"(+{result['our_decompress_ms']:.2f}ms decode) | "
        f"zlib {result['zlib']}B in {result['zlib_compress_ms']:.2f}ms "
        f"(+{result['zlib_decompress_ms']:.2f}ms decode)"
    )
    # Both must actually compress the profile blob.
    assert result["ours"] < result["blob"]
    assert result["zlib"] < result["blob"]
    # Our pure-Python codec trails C-backed zlib in both dimensions —
    # that is the documented cost of the from-scratch substitution.


# ----------------------------------------------------------------------
# Ablation 4: isolation write path on the real node
# ----------------------------------------------------------------------


@pytest.mark.parametrize("isolation", [True, False], ids=["isolated", "direct"])
def test_ablation_node_write_path(benchmark, isolation):
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="t", attributes=("click",))
    node = IPSNode(
        f"n-{isolation}", config, InMemoryKVStore(), clock=clock,
        isolation_enabled=isolation,
        write_table_limit_bytes=256 * 1024 * 1024,
    )
    counter = iter(range(100_000_000))

    def write_once():
        node.add_profile(
            next(counter) % 100, NOW_MS, 1, 0, next(counter) % 50, [1]
        )

    benchmark(write_once)
    if isolation:
        node.merge_write_table()
