"""Figure 19: add (write) throughput and latency over five days, plus the
read-write isolation effect.

Paper: write traffic peaks at 3-4M/s (about a tenth of read traffic),
write p99 runs 4-6 ms with p50 flat at ~0.5 ms, and enabling read-write
isolation cut write p99 by about 80 % while query latency stayed stable.
"""

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR

from conftest import fmt_ms, print_series

DURATION_MS = 5 * MILLIS_PER_DAY
STEP_MS = 2 * MILLIS_PER_HOUR


def test_fig19_write_throughput_and_latency(
    benchmark, simulator, write_traffic, read_traffic
):
    result = benchmark.pedantic(
        lambda: simulator.simulate_writes(
            write_traffic, 0, DURATION_MS, STEP_MS,
            isolation=True, read_traffic_model=read_traffic,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        f"t={step.time_ms / MILLIS_PER_HOUR:6.1f}h  "
        f"writes={step.offered_qps / 1e6:4.2f}M/s  "
        f"p50={fmt_ms(step.p50_ms)}ms  p99={fmt_ms(step.p99_ms)}ms"
        for step in result.steps[:: max(1, len(result.steps) // 25)]
    ]
    print_series(
        "Fig 19 — add throughput / p50 / p99 (isolation on)",
        "paper: 3-4M writes/s, p50 ~0.5 ms flat, p99 4-6 ms",
        rows,
    )
    print(
        f"measured: writes {result.trough('offered_qps') / 1e6:.2f}M-"
        f"{result.peak('offered_qps') / 1e6:.2f}M/s, "
        f"p50 {result.mean('p50_ms'):.2f} ms, "
        f"p99 {result.trough('p99_ms'):.2f}-{result.peak('p99_ms'):.2f} ms"
    )

    assert 2.8e6 < result.trough("offered_qps") < 3.3e6
    assert 3.7e6 < result.peak("offered_qps") < 4.3e6
    assert 0.35 < result.mean("p50_ms") < 0.8
    assert 1.5 < result.mean("p99_ms") < 7.0
    # Read:write ratio ~10:1 (paper §IV-C).
    read_peak = read_traffic.qps_at(20 * MILLIS_PER_HOUR)
    write_peak = write_traffic.qps_at(20 * MILLIS_PER_HOUR)
    assert 8.0 < read_peak / write_peak < 12.0


def test_fig19_isolation_ablation(benchmark, simulator, write_traffic, read_traffic):
    """The §IV-C claim: isolation cuts write p99 ~80 %."""

    def run():
        on = simulator.simulate_writes(
            write_traffic, 0, MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR,
            isolation=True, read_traffic_model=read_traffic,
        )
        off = simulator.simulate_writes(
            write_traffic, 0, MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR,
            isolation=False, read_traffic_model=read_traffic,
        )
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = 1.0 - on.mean("p99_ms") / off.mean("p99_ms")
    print(
        f"\n=== Fig 19 isolation A/B === p99 on={on.mean('p99_ms'):.2f}ms "
        f"off={off.mean('p99_ms'):.2f}ms reduction={reduction * 100:.0f}% "
        f"(paper: ~80 %)"
    )
    assert 0.6 < reduction < 0.95
