"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index).  Figure benches print the
paper-shaped series to stdout (run with ``-s`` to see them) and assert the
qualitative claims; micro benches use pytest-benchmark to time the real
implementation.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.sim import ClusterSimulator
from repro.workload import spring_festival_curve

#: Shared simulated "now".
NOW_MS = 400 * MILLIS_PER_DAY

#: Metrics recorded by benches during a pytest run (perf-history hook).
_RECORDED: dict[str, dict] = {}


def record_metric(
    name: str,
    value: float,
    unit: str = "",
    better: str = "lower",
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> None:
    """Record one headline number for the perf-history harness.

    When the run was started with ``IPS_BENCH_RECORD=<path>``, everything
    recorded is dumped there at session end in the same metric shape
    ``tools/bench_history.py`` snapshots (``--ingest`` merges it).
    """
    if better not in ("lower", "higher"):
        raise ValueError(f"better must be lower|higher, got {better!r}")
    _RECORDED[name] = {
        "value": round(float(value), 6),
        "unit": unit,
        "better": better,
        "rel_tol": rel_tol,
        "abs_tol": abs_tol,
    }


def pytest_sessionfinish(session, exitstatus) -> None:
    path = os.environ.get("IPS_BENCH_RECORD")
    if not path or not _RECORDED:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(sorted(_RECORDED.items())), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def simulator() -> ClusterSimulator:
    """The calibrated 1000-node fleet used by the figure benches."""
    return ClusterSimulator(num_nodes=1000, seed=42, samples_per_step=3000)


@pytest.fixture(scope="session")
def read_traffic():
    return spring_festival_curve(read_traffic=True, seed=42)


@pytest.fixture(scope="session")
def write_traffic():
    return spring_festival_curve(read_traffic=False, seed=42)


def print_series(title: str, header: str, rows: list[str]) -> None:
    """Uniform figure-series output."""
    print()
    print(f"=== {title} ===")
    print(header)
    for row in rows:
        print(row)


def fmt_ms(value: float) -> str:
    return f"{value:6.2f}"
