"""A/B: the server-side hot-read path vs a bare node, under diurnal Zipf load.

Two identical nodes replay the same seeded trace — Zipf-skewed reads whose
per-hour volume follows the diurnal traffic model, interleaved with writes
(~1:10) that invalidate the written profile's cached results.  Node A runs
the full hot-read path (result cache + singleflight + adaptive batch
windows); node B executes every read against the engine.

Reported and gated (``make check`` runs ``--smoke``):

* every read byte-identical between the two nodes (the cache may only be
  faster, never different);
* result-cache hit ratio on the *hot tier* (the top Zipf ranks, where
  ubiquitous recommendation traffic concentrates) must be >= 50%;
* cached p99 read latency must be no worse than the uncached baseline
  (small slack absorbs timer noise at microsecond scale);
* a concurrent phase reports how much duplicate work singleflight and the
  batch windows absorbed.

Run standalone (``python benchmarks/bench_server_batching.py [--smoke]``,
with ``src`` on ``PYTHONPATH``) or via pytest.
"""

from __future__ import annotations

import argparse
import random
import threading
import time

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.server import CoalesceConfig, IPSNode
from repro.storage import InMemoryKVStore
from repro.workload.diurnal import DiurnalTrafficModel
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
SEED = 42
WINDOW = TimeRange.current(7 * MILLIS_PER_DAY)
#: Hot tier: reads whose profile falls in the top Zipf ranks.
HOT_TIER_RANKS = 32


def build_trace(
    population: int,
    hours: int,
    reads_per_peak_hour: int,
    write_ratio: float,
    seed_writes: int,
):
    """One deterministic op list: ('seed'|'read'|'write'|'advance', ...).

    Read volume per simulated hour follows the diurnal curve; profiles are
    Zipf-drawn so the hot tier dominates, and writes hit the same skewed
    population — each one invalidating exactly that profile's entries.
    """
    rng = random.Random(SEED)
    zipf = ZipfGenerator(population, s=1.05, seed=SEED)
    traffic = DiurnalTrafficModel(
        base_qps=0.35 * reads_per_peak_hour,
        peak_qps=reads_per_peak_hour,
        seed=SEED,
    )
    ops: list[tuple] = []
    for _ in range(seed_writes):
        ops.append(("seed", _write_args(rng, zipf)))
    reads_since_write = 0
    for hour in range(hours):
        volume = max(1, int(round(traffic.qps_at(hour * MILLIS_PER_HOUR))))
        ops.append(("advance", MILLIS_PER_HOUR))
        for _ in range(volume):
            ops.append(("read", zipf.sample()))
            reads_since_write += 1
            if reads_since_write * write_ratio >= 1.0:
                reads_since_write = 0
                ops.append(("write", _write_args(rng, zipf)))
    return ops


def _write_args(rng: random.Random, zipf: ZipfGenerator) -> tuple:
    return (
        zipf.sample(),
        NOW_MS - rng.randrange(6 * MILLIS_PER_DAY),
        1,
        1,
        rng.randrange(150),
        {"click": rng.randrange(1, 8), "like": rng.randrange(4)},
    )


def build_node(node_id: str, cached: bool, clock: SimulatedClock) -> IPSNode:
    config = TableConfig(name="bench", attributes=("click", "like", "share"))
    return IPSNode(
        node_id,
        config,
        InMemoryKVStore(),
        clock=clock,
        cache_capacity_bytes=128 * 1024 * 1024,
        isolation_enabled=False,  # Writes apply (and invalidate) directly.
        result_cache=8192 if cached else None,
        coalesce=CoalesceConfig() if cached else None,
    )


def replay(node: IPSNode, trace, track_hits: bool):
    """Run the trace; returns (per-read latency µs, results, hot-tier hits/reads)."""
    latencies_us: list[float] = []
    results: list[str] = []
    hot_reads = hot_hits = 0
    result_cache = node.result_cache if track_hits else None
    for op, arg in trace:
        if op in ("seed", "write"):
            node.add_profile(*arg)
        elif op == "advance":
            node.clock.advance(arg)
        else:
            hot = arg <= HOT_TIER_RANKS
            hits_before = result_cache.stats.hits if result_cache else 0
            start = time.perf_counter_ns()
            value = node.get_profile_topk(
                arg, 1, 1, WINDOW, SortType.TOTAL, 10
            )
            latencies_us.append((time.perf_counter_ns() - start) / 1000.0)
            results.append(repr(value))
            if hot:
                hot_reads += 1
                if result_cache and result_cache.stats.hits > hits_before:
                    hot_hits += 1
    return latencies_us, results, hot_hits, hot_reads


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
    return ordered[index]


def concurrent_phase(node: IPSNode, num_threads: int = 4, rounds: int = 40):
    """Hammer a handful of hot keys from several threads; returns stats."""
    barrier = threading.Barrier(num_threads)
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            barrier.wait(10.0)
            for round_index in range(rounds):
                profile_id = 1 + (round_index % 4)
                node.result_cache.invalidate(profile_id)
                node.get_profile_topk(
                    profile_id, 1, 1, WINDOW, SortType.TOTAL, 10
                )
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    if errors:
        raise errors[0]
    return node.singleflight.stats, node.batcher.stats


def run_bench(
    population: int = 2000,
    hours: int = 24,
    reads_per_peak_hour: int = 400,
    write_ratio: float = 0.1,
    seed_writes: int = 30000,
) -> dict[str, float]:
    trace = build_trace(
        population, hours, reads_per_peak_hour, write_ratio, seed_writes
    )
    cached = build_node("cached", True, SimulatedClock(start_ms=NOW_MS))
    plain = build_node("plain", False, SimulatedClock(start_ms=NOW_MS))

    cached_lat, cached_results, hot_hits, hot_reads = replay(
        cached, trace, track_hits=True
    )
    plain_lat, plain_results, _, _ = replay(plain, trace, track_hits=False)

    # Staleness gate: the cache may only be faster, never different.
    assert cached_results == plain_results, (
        "cached node diverged from uncached baseline"
    )

    stats = cached.result_cache.stats
    flight_stats, batch_stats = concurrent_phase(cached)
    return {
        "reads": len(cached_lat),
        "writes": sum(1 for op, _ in trace if op == "write"),
        "hot_reads": hot_reads,
        "hot_hit_ratio": hot_hits / hot_reads if hot_reads else 0.0,
        "overall_hit_ratio": stats.hit_ratio,
        "invalidations": stats.invalidations,
        "cached_p50_us": percentile(cached_lat, 0.50),
        "cached_p99_us": percentile(cached_lat, 0.99),
        "plain_p50_us": percentile(plain_lat, 0.50),
        "plain_p99_us": percentile(plain_lat, 0.99),
        "coalesced": flight_stats.coalesced,
        "singleflight_executions": flight_stats.executions,
        "batch_windows": batch_stats.batches,
        "mean_window_occupancy": batch_stats.mean_occupancy,
    }


def report(result: dict[str, float]) -> None:
    print()
    print("=== Server-side hot-read path: cached vs bare node ===")
    print(
        f"reads={result['reads']:.0f}  writes={result['writes']:.0f}  "
        f"hot-tier reads={result['hot_reads']:.0f}"
    )
    print(
        f"hit ratio: hot-tier={result['hot_hit_ratio']:6.1%}   "
        f"overall={result['overall_hit_ratio']:6.1%}   "
        f"invalidations={result['invalidations']:.0f}"
    )
    print(
        f"read latency: cached p50={result['cached_p50_us']:8.1f} µs  "
        f"p99={result['cached_p99_us']:8.1f} µs"
    )
    print(
        f"              plain  p50={result['plain_p50_us']:8.1f} µs  "
        f"p99={result['plain_p99_us']:8.1f} µs"
    )
    print(
        f"concurrent phase: coalesced={result['coalesced']:.0f} "
        f"(executions={result['singleflight_executions']:.0f})   "
        f"batch windows={result['batch_windows']:.0f} "
        f"mean occupancy={result['mean_window_occupancy']:.2f}"
    )


def check_gates(result: dict[str, float]) -> list[str]:
    failures = []
    if result["hot_hit_ratio"] < 0.5:
        failures.append(
            f"hot-tier hit ratio {result['hot_hit_ratio']:.1%} < 50%"
        )
    # Slack absorbs scheduler noise at microsecond scale; the claim gated
    # here is "no worse", not "faster".
    if result["cached_p99_us"] > result["plain_p99_us"] * 1.25:
        failures.append(
            f"cached p99 {result['cached_p99_us']:.1f}µs worse than "
            f"uncached {result['plain_p99_us']:.1f}µs"
        )
    return failures


_SMOKE = dict(
    population=600, hours=10, reads_per_peak_hour=150, seed_writes=8000
)


def test_hot_read_path_gates():
    """Pytest entry: smoke-sized run, same gates as ``make check``."""
    result = run_bench(**_SMOKE)
    report(result)
    assert not check_gates(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--hours", type=int, default=24)
    parser.add_argument("--reads-per-peak-hour", type=int, default=400)
    parser.add_argument("--seed-writes", type=int, default=30000)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration for CI (same gates, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_bench(**_SMOKE)
    else:
        if min(args.population, args.hours, args.reads_per_peak_hour) < 1:
            parser.error("sizes must be >= 1")
        result = run_bench(
            population=args.population,
            hours=args.hours,
            reads_per_peak_hour=args.reads_per_peak_hour,
            seed_writes=args.seed_writes,
        )
    report(result)
    failures = check_gates(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    if failures:
        raise SystemExit(1)
    print("all gates passed")


if __name__ == "__main__":
    main()
