"""Figure 18: cluster memory usage and cache hit ratio.

Paper: the typical cache hit ratio stays above 90 % and cluster memory
usage remains stable around 85 %, thanks to the profile-split optimisation
and the swap-threshold cache management of §III-C.

Two parts:

* the simulated fleet series (hit ratio and the swap sawtooth around 85 %);
* a **real GCache run** under a Zipf-skewed access stream, showing that
  LRU + skew yields a >90 % hit ratio while swap keeps memory in the
  [target, threshold] band — the actual mechanism behind the figure.
"""

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.cache import GCache
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.storage import BulkPersistence, InMemoryKVStore
from repro.workload import ZipfGenerator

from conftest import NOW_MS, print_series

SUM = get_aggregate("sum")


def test_fig18_simulated_memory_and_hit_ratio(benchmark, simulator, read_traffic):
    result = benchmark.pedantic(
        lambda: simulator.simulate_queries(
            read_traffic, 0, 2 * MILLIS_PER_DAY, MILLIS_PER_HOUR
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        f"t={step.time_ms / MILLIS_PER_HOUR:5.1f}h  "
        f"mem={step.memory_ratio * 100:5.1f}%  hit={step.hit_ratio * 100:5.1f}%"
        for step in result.steps[::4]
    ]
    print_series(
        "Fig 18 — memory usage and cache hit ratio (simulated fleet)",
        "paper: memory stable ~85 %, hit ratio > 90 %",
        rows,
    )
    assert result.trough("hit_ratio") > 0.90
    assert 0.78 < result.trough("memory_ratio")
    assert result.peak("memory_ratio") < 0.88


def test_fig18_real_gcache_under_zipf(benchmark):
    """Drive the real GCache with Zipf-skewed accesses and check the band."""

    WARMUP = 20_000
    TOTAL = 60_000

    def run() -> tuple[float, list[float]]:
        store = InMemoryKVStore()
        persistence = BulkPersistence(store, "t")
        cache = GCache(
            load_fn=persistence.load,
            flush_fn=persistence.flush,
            capacity_bytes=400_000,
            swap_threshold=0.85,
            swap_target=0.80,
        )
        zipf = ZipfGenerator(5000, s=1.2, seed=42)
        memory_samples = []
        steady_hits = 0
        steady_accesses = 0
        for step in range(TOTAL):
            profile_id = zipf.sample()
            resident_before = profile_id in cache
            profile = cache.get(profile_id)
            if profile is None:
                profile = ProfileData(profile_id, 1000)
                profile.add(NOW_MS, 1, 1, 1, [1], SUM)
                cache.put(profile)
            if step >= WARMUP:
                # Steady-state hit ratio: cold-start compulsory misses are
                # a property of the empty cache, not of the policy.
                steady_accesses += 1
                steady_hits += resident_before
            if step % 50 == 0:
                cache.run_swap_once()
                cache.run_flush_once()
                if step > WARMUP:
                    memory_samples.append(cache.memory_ratio())
        return steady_hits / steady_accesses, memory_samples

    hit_ratio, memory_samples = benchmark.pedantic(run, rounds=1, iterations=1)
    mem_low = min(memory_samples)
    mem_high = max(memory_samples)
    print(
        f"\n=== Fig 18 (real GCache, Zipf-1.2 over 5000 users, steady state) "
        f"=== hit={hit_ratio * 100:.1f}%  memory band=[{mem_low * 100:.1f}%, "
        f"{mem_high * 100:.1f}%]"
    )
    assert hit_ratio > 0.90
    # Swap keeps the steady-state memory close to the configured band; the
    # instantaneous ratio may overshoot slightly between swap passes.
    assert mem_high < 0.95
    assert mem_low > 0.5
