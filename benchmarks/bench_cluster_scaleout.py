"""Process-cluster scale-out: the first non-modelled cluster number.

Every cluster figure before this bench was in-process — multi-thread
wins muted by the GIL, network costs modelled, crashes simulated.  Here
each IPSNode is its **own OS process** behind a real TCP socket
(``repro.net``), so aggregate throughput can actually grow with worker
count on real cores, and a ``node_crash`` is a real SIGKILL.

Two phases:

* **scale-out** — aggregate ``multi_get_topk`` keys/s from several
  client threads against 1, 2, 4 worker processes.  Gate (full mode, on
  a machine with >= 4 cores): the 4-worker figure must be >= 2x the
  1-worker figure.  On smaller machines the sweep still runs and
  reports, but the multiplier is informational — one core cannot
  parallelize anything, whatever the architecture.
* **chaos failover** — SIGKILL one worker mid-run and keep serving: the
  resilience layer (retries, breakers, deadlines, hedged reads — the
  unmodified ``IPSClient``) must hold the client-observed per-key error
  rate under 1% while the registry evicts the corpse and the ring
  reroutes.  Gated in both modes.

Run standalone (``python benchmarks/bench_cluster_scaleout.py [--smoke]``,
with ``src`` on ``PYTHONPATH``) — ``make bench-cluster`` /
``make bench-cluster-smoke``.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
from random import Random

from repro.clock import SystemClock, perf_ms
from repro.chaos.engine import ChaosEvent
from repro.chaos.process import ProcessChaosEngine
from repro.cluster.resilience import ResilienceConfig
from repro.core.timerange import TimeRange
from repro.net.cluster import ProcessCluster

#: Workers start without numpy so subprocess cold-start stays cheap; the
#: query shapes here never hit the columnar fast path's win region anyway.
WORKER_ENV = {"IPS_KERNEL_DISABLE_NUMPY": "1"}

CLIENT_THREADS = 4
BATCH_SIZE = 32
TOPK = 10


def _preload(cluster: ProcessCluster, population: int, now_ms: int) -> None:
    client = cluster.client()
    rng = Random(17)
    for profile_id in range(population):
        fids = [100 + rng.randrange(40) for _ in range(4)]
        counts = [(1 + rng.randrange(3), rng.randrange(3), rng.randrange(2))
                  for _ in fids]
        wrote = client.add_profiles(profile_id, now_ms, 0, 1, fids, counts)
        assert wrote == 1, f"preload write for {profile_id} failed"


def _drive_reads(
    cluster: ProcessCluster,
    population: int,
    window: TimeRange,
    duration_ms: float,
    *,
    resilience: ResilienceConfig | None = None,
    chaos: ProcessChaosEngine | None = None,
    seed: int = 0,
) -> dict:
    """Hammer multi_get_topk from CLIENT_THREADS threads for duration_ms."""
    results = {"keys": 0, "key_errors": 0, "batches": 0}
    lock = threading.Lock()
    stop = threading.Event()

    def worker(thread_index: int) -> None:
        # Each thread gets its own client + region view (own connection
        # pools); they share nothing but the cluster registry.
        client = cluster.client(resilience=resilience)
        rng = Random(seed * 1_000 + thread_index)
        keys = served = failed = batches = 0
        while not stop.is_set():
            batch = [rng.randrange(population) for _ in range(BATCH_SIZE)]
            outcome = client.multi_get_topk(batch, 0, 1, window, k=TOPK)
            batches += 1
            for result in outcome.results:
                keys += 1
                if result.ok:
                    served += 1
                else:
                    failed += 1
        with lock:
            results["keys"] += keys
            results["key_errors"] += failed
            results["batches"] += batches

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(CLIENT_THREADS)
    ]
    start = perf_ms()
    for thread in threads:
        thread.start()
    while perf_ms() - start < duration_ms:
        if chaos is not None:
            chaos.tick()
        threading.Event().wait(0.01)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed_ms = perf_ms() - start
    results["elapsed_ms"] = elapsed_ms
    results["qps"] = results["keys"] / (elapsed_ms / 1000.0)
    results["error_rate"] = (
        results["key_errors"] / results["keys"] if results["keys"] else 0.0
    )
    return results


def run_scaleout(
    worker_counts: list[int],
    *,
    population: int,
    duration_ms: float,
    settle_s: float = 0.4,
) -> dict[int, dict]:
    """Aggregate read throughput for each worker-process count."""
    now_ms = int(SystemClock().now_ms())
    window = TimeRange.absolute(now_ms - 60_000, now_ms + 60_000)
    out: dict[int, dict] = {}
    for count in worker_counts:
        with tempfile.TemporaryDirectory(prefix="ips-scaleout-") as tmp:
            with ProcessCluster(count, tmp, worker_env=WORKER_ENV) as cluster:
                cluster.wait_for_members(count)
                _preload(cluster, population, now_ms)
                threading.Event().wait(settle_s)  # let write tables merge
                out[count] = _drive_reads(
                    cluster, population, window, duration_ms, seed=count
                )
    return out


def run_chaos_failover(
    *,
    workers: int,
    population: int,
    duration_ms: float,
    kill_at_ms: float,
    settle_s: float = 0.4,
) -> dict:
    """SIGKILL one worker mid-run; measure the client-observed error rate."""
    now_ms = int(SystemClock().now_ms())
    window = TimeRange.absolute(now_ms - 60_000, now_ms + 60_000)
    with tempfile.TemporaryDirectory(prefix="ips-chaos-") as tmp:
        with ProcessCluster(workers, tmp, worker_env=WORKER_ENV) as cluster:
            victims = cluster.wait_for_members(workers)
            _preload(cluster, population, now_ms)
            threading.Event().wait(settle_s)
            chaos = ProcessChaosEngine(cluster)
            chaos.schedule(
                ChaosEvent(
                    start_ms=int(kill_at_ms),
                    duration_ms=max(int(duration_ms - kill_at_ms), 1),
                    kind="node_crash",
                    target=victims[-1],
                )
            )
            chaos.start()
            stats = _drive_reads(
                cluster,
                population,
                window,
                duration_ms,
                resilience=ResilienceConfig(deadline_ms=4_000.0),
                chaos=chaos,
                seed=99,
            )
            chaos.finish()
            stats["faults"] = chaos.fault_counts()
            return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short run for make check")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON only")
    args = parser.parse_args(argv)

    if args.smoke:
        counts = [1, 2]
        population, duration_ms = 128, 900.0
        chaos_workers, chaos_duration, kill_at = 2, 1_500.0, 500.0
    else:
        counts = [1, 2, 4]
        population, duration_ms = 512, 4_000.0
        chaos_workers, chaos_duration, kill_at = 4, 8_000.0, 3_000.0

    scaling = run_scaleout(
        counts, population=population, duration_ms=duration_ms
    )
    chaos = run_chaos_failover(
        workers=chaos_workers,
        population=population,
        duration_ms=chaos_duration,
        kill_at_ms=kill_at,
    )

    cores = os.cpu_count() or 1
    base_qps = scaling[counts[0]]["qps"]
    report = {
        "mode": "smoke" if args.smoke else "full",
        "cores": cores,
        "scaling": {
            str(count): {
                "qps": round(stats["qps"], 1),
                "keys": stats["keys"],
                "error_rate": round(stats["error_rate"], 5),
                "speedup_vs_1": round(stats["qps"] / base_qps, 2),
            }
            for count, stats in scaling.items()
        },
        "chaos": {
            "qps": round(chaos["qps"], 1),
            "keys": chaos["keys"],
            "key_errors": chaos["key_errors"],
            "error_rate": round(chaos["error_rate"], 5),
            "faults": chaos["faults"],
        },
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print("== cluster scale-out (real processes, real sockets) ==")
        print(f"cores: {cores}")
        for count in counts:
            stats = report["scaling"][str(count)]
            print(
                f"  {count} worker(s): {stats['qps']:>9.1f} keys/s  "
                f"(x{stats['speedup_vs_1']:.2f} vs 1, "
                f"err {stats['error_rate']:.4%})"
            )
        print(
            f"== chaos failover: SIGKILL 1/{chaos_workers} mid-run ==\n"
            f"  {report['chaos']['qps']:>9.1f} keys/s, "
            f"{report['chaos']['key_errors']}/{report['chaos']['keys']} "
            f"key errors ({report['chaos']['error_rate']:.4%}), "
            f"faults {report['chaos']['faults']}"
        )

    failures = []
    # Every scaling arm must actually serve traffic.
    for count, stats in scaling.items():
        if stats["keys"] <= 0:
            failures.append(f"{count}-worker arm served no keys")
        if stats["error_rate"] >= 0.01:
            failures.append(
                f"{count}-worker arm error rate {stats['error_rate']:.4%}"
            )
    # The headline acceptance gate: 4 workers >= 2x 1 worker — only
    # meaningful with >= 4 real cores to scale onto (per the criterion).
    if not args.smoke and 4 in scaling and cores >= 4:
        speedup = scaling[4]["qps"] / base_qps
        if speedup < 2.0:
            failures.append(
                f"4-worker speedup x{speedup:.2f} < x2.0 on {cores} cores"
            )
    # Failover gate (both modes): losing one worker must not cost 1% errors.
    if chaos["error_rate"] >= 0.01:
        failures.append(
            f"chaos error rate {chaos['error_rate']:.4%} >= 1% "
            f"({chaos['key_errors']}/{chaos['keys']})"
        )
    if chaos["faults"]["node_crash"] < 1:
        failures.append("chaos phase never killed a worker")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-cluster gates OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
