"""Table II: client/server query latency by cache hit vs cache miss.

Paper (prose anchors, the table itself): network transmission costs about
3 ms and grows with response size; cache hits save approximately 2-4 ms
per query relative to misses.

Two parts:

* the **simulated production table** from the calibrated fleet model
  (client = server + network; miss = hit + KV fetch/decode penalty);
* a **measured table from the real implementation**: the same query is
  served from a warm GCache (hit) and from a cold cache through the real
  persistence path (miss) — demonstrating the same gap mechanically.
"""

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.server.node import IPSNode
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.storage import InMemoryKVStore

from conftest import NOW_MS, print_series


def test_table2_simulated_production_latency(benchmark, simulator):
    table = benchmark.pedantic(
        lambda: simulator.latency_table(samples=20_000), rounds=1, iterations=1
    )
    rows = []
    for side in ("client", "server"):
        for case in ("hit", "miss"):
            rows.append(
                f"{side:6s} {case:4s}  "
                f"p50={table[side][f'{case}_p50_ms']:5.2f}ms  "
                f"mean={table[side][f'{case}_mean_ms']:5.2f}ms  "
                f"p99={table[side][f'{case}_p99_ms']:5.2f}ms"
            )
    print_series(
        "Table II — query latency by side and cache outcome (simulated fleet)",
        "paper: network ~3 ms; hit saves ~2-4 ms",
        rows,
    )
    for side in ("client", "server"):
        saving = table[side]["miss_mean_ms"] - table[side]["hit_mean_ms"]
        assert 2.0 < saving < 4.5, f"{side} hit saving {saving}"
    network = table["client"]["hit_mean_ms"] - table["server"]["hit_mean_ms"]
    assert 2.5 < network < 4.0


def test_table2_rpc_proxy_client_server_split(benchmark):
    """Client/server decomposition over real calls through the RPC proxy:
    client latency = measured server handler time + the ~3 ms modelled
    network hop — the structure of Table II, from this implementation."""
    from repro.server.proxy import RPCNodeProxy
    from repro.server.rpc import LatencyModel

    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="t", attributes=("click", "like"))
    node = IPSNode(
        "n0", config, InMemoryKVStore(), clock=clock, isolation_enabled=False
    )
    for step in range(120):
        node.add_profile(
            1, NOW_MS - step * 3_600_000, step % 4, 0, step % 30, {"click": 1}
        )
    proxy = RPCNodeProxy(node, clock, LatencyModel(jitter_ms=0.3))
    window = TimeRange.current(30 * MILLIS_PER_DAY)

    def query():
        return proxy.get_profile_topk(
            1, 1, 0, window, SortType.ATTRIBUTE, k=10, sort_attribute="click"
        )

    result = benchmark(query)
    assert result
    summary = proxy.latency_summary()
    print(
        f"\n=== Table II (RPC proxy, real server time) === "
        f"client p50={summary['client_p50_ms']:.2f}ms "
        f"p99={summary['client_p99_ms']:.2f}ms | "
        f"server p50={summary['server_p50_ms']:.3f}ms "
        f"p99={summary['server_p99_ms']:.3f}ms"
    )
    gap = summary["client_p50_ms"] - summary["server_p50_ms"]
    assert 2.5 < gap < 4.5  # The ~3 ms network share of Table II.


def test_table2_real_code_hit_vs_miss(benchmark):
    """Measure the real hit/miss service-time gap in this implementation."""
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="t", attributes=("click", "like"))
    store = InMemoryKVStore()
    node = IPSNode("n0", config, store, clock=clock, isolation_enabled=False)
    # A realistically sized profile: ~60 slices, hundreds of features.
    for step in range(240):
        node.add_profile(
            1, NOW_MS - step * 3_600_000, step % 4, 0, step % 40,
            {"click": 1 + step % 3},
        )
    node.shutdown()  # Everything durable.
    window = TimeRange.current(30 * MILLIS_PER_DAY)

    def query_once():
        return node.get_profile_topk(
            1, 1, 0, window, SortType.ATTRIBUTE, k=10, sort_attribute="click"
        )

    # Warm path (cache hit).
    hit_result = benchmark(query_once)
    assert hit_result

    import time

    # Cold path (cache miss through real persistence) measured manually:
    # evict, then time the first query after eviction.
    miss_samples = []
    for _ in range(50):
        node.cache._evict(1)
        start = time.perf_counter()
        query_once()
        miss_samples.append((time.perf_counter() - start) * 1000)
    hit_samples = []
    for _ in range(50):
        start = time.perf_counter()
        query_once()
        hit_samples.append((time.perf_counter() - start) * 1000)
    hit_ms = sum(hit_samples) / len(hit_samples)
    miss_ms = sum(miss_samples) / len(miss_samples)
    print(
        f"\n=== Table II (real code) === hit={hit_ms:.3f}ms "
        f"miss={miss_ms:.3f}ms penalty={miss_ms - hit_ms:.3f}ms"
    )
    # The mechanism: a miss pays load+decompress+deserialize on top.
    assert miss_ms > hit_ms
