"""Tracing must be cheap: <10% enabled, free when disabled.

The observability layer is constructor-injected everywhere, so every
request pays *something* even with tracing off — the cost of calling into
:data:`~repro.obs.trace.NULL_TRACER`.  This bench pins both ends of the
contract from the ISSUE:

* the **no-op** tracer costs well under a microsecond per span (measured
  directly, so a regression in the null path can't hide inside workload
  noise);
* an **enabled** :class:`~repro.obs.trace.Tracer` (with a live
  :class:`~repro.obs.registry.MetricsRegistry` attached) adds less than
  10% wall-clock to the batched-query workload of
  ``bench_batch_query.py``.

Wall times are best-of-``repeats`` with the two configurations
interleaved, so machine drift hits both equally.

Run standalone (``python benchmarks/bench_trace_overhead.py [--smoke]``,
with ``src`` on ``PYTHONPATH``) or via pytest.
"""

from __future__ import annotations

import argparse
import random
import time

from repro import IPSCluster, SortType, TableConfig, TimeRange
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.proxy import RPCNodeProxy
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)
SEED = 99

#: The acceptance ceiling for enabled tracing, plus a little headroom the
#: assertion leaves for timer noise on loaded CI machines.
OVERHEAD_LIMIT = 0.10


def build_cluster(num_nodes: int, population: int, tracer, registry):
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="bench", attributes=("click", "like"))
    cluster = IPSCluster(
        config, num_nodes=num_nodes, clock=clock,
        tracer=tracer, registry=registry,
    )
    for node_id in list(cluster.region.nodes):
        cluster.region.nodes[node_id] = RPCNodeProxy(
            cluster.region.nodes[node_id], clock,
            tracer=tracer, registry=registry,
        )
    client = cluster.client("bench")
    rng = random.Random(SEED)
    for profile_id in range(population):
        for _ in range(4):
            client.add_profile(
                profile_id,
                NOW_MS - rng.randrange(30 * MILLIS_PER_DAY),
                1,
                1,
                rng.randrange(100),
                {"click": rng.randrange(1, 8)},
            )
    cluster.run_background_cycle()
    return cluster, client


def make_batches(num_batches: int, batch_size: int, population: int):
    zipf = ZipfGenerator(population, s=1.05, seed=SEED)
    return [
        [zipf.sample() for _ in range(batch_size)]
        for _ in range(num_batches)
    ]


def drive(client, batches) -> float:
    """One measured pass of the batched workload; returns wall ms."""
    start = time.perf_counter()
    for batch in batches:
        outcome = client.multi_get_topk(
            batch, 1, 1, WINDOW, SortType.TOTAL, k=10
        )
        assert all(result.ok for result in outcome)
    return (time.perf_counter() - start) * 1000.0


def bench_null_span_ns(iterations: int = 200_000) -> float:
    """Direct cost of one disabled span, in nanoseconds."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("noop"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def run_bench(
    batch_size: int = 128,
    num_batches: int = 8,
    num_nodes: int = 4,
    population: int = 600,
    repeats: int = 5,
) -> dict[str, float]:
    batches = make_batches(num_batches, batch_size, population)

    _, client_off = build_cluster(num_nodes, population, NULL_TRACER, None)
    registry = MetricsRegistry()
    # max_roots keeps retained span trees bounded during the bench.
    tracer = Tracer(registry=registry, max_roots=32)
    _, client_on = build_cluster(num_nodes, population, tracer, registry)

    # Warm both clusters identically before measuring.
    drive(client_off, batches[:1])
    drive(client_on, batches[:1])

    off_ms = float("inf")
    on_ms = float("inf")
    for _ in range(repeats):
        off_ms = min(off_ms, drive(client_off, batches))
        on_ms = min(on_ms, drive(client_on, batches))

    overhead = on_ms / off_ms - 1.0
    return {
        "noop_span_ns": bench_null_span_ns(),
        "disabled_ms": off_ms,
        "enabled_ms": on_ms,
        "overhead": overhead,
        "spans_recorded": float(
            sum(1 for root in tracer.roots for _ in root.iter_spans())
        ),
    }


def report(result: dict[str, float]) -> None:
    print()
    print("=== Tracing overhead (batched-query workload) ===")
    print(f"no-op span:        {result['noop_span_ns']:8.0f} ns/span")
    print(f"tracing disabled:  {result['disabled_ms']:8.1f} ms (best of repeats)")
    print(
        f"tracing enabled:   {result['enabled_ms']:8.1f} ms "
        f"(+{result['overhead']:.1%}, {result['spans_recorded']:.0f} retained spans)"
    )


def _check(result: dict[str, float]) -> None:
    assert result["noop_span_ns"] < 2_000, (
        f"no-op span costs {result['noop_span_ns']:.0f} ns; "
        "the disabled tracer is supposed to be free"
    )
    assert result["overhead"] < OVERHEAD_LIMIT, (
        f"enabled tracing adds {result['overhead']:.1%} "
        f"(limit {OVERHEAD_LIMIT:.0%})"
    )


def test_trace_overhead_smoke():
    """Pytest entry point: small workload, same assertions."""
    result = run_bench(
        batch_size=64, num_batches=4, num_nodes=3, population=200, repeats=3
    )
    report(result)
    _check(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--population", type=int, default=600)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny configuration for CI (same assertions, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_bench(
            batch_size=64, num_batches=4, num_nodes=3, population=200,
            repeats=3,
        )
    else:
        result = run_bench(
            batch_size=args.batch_size,
            num_batches=args.batches,
            num_nodes=args.nodes,
            population=args.population,
            repeats=args.repeats,
        )
    report(result)
    _check(result)


if __name__ == "__main__":
    main()
