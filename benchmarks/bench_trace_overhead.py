"""Tracing must be cheap: <10% enabled, free when disabled.

The observability layer is constructor-injected everywhere, so every
request pays *something* even with tracing off — the cost of calling into
:data:`~repro.obs.trace.NULL_TRACER`.  This bench pins both ends of the
contract from the ISSUE:

* the **no-op** tracer costs well under a microsecond per span (measured
  directly, so a regression in the null path can't hide inside workload
  noise);
* an **enabled** :class:`~repro.obs.trace.Tracer` — with a live
  :class:`~repro.obs.registry.MetricsRegistry`, histogram **exemplars**
  (every root observation carries its trace id), a slow-query threshold,
  and a **tail sampler** attached — adds less than 10% wall-clock to the
  batched-query workload of ``bench_batch_query.py``.  The sampler's
  bounded-memory claim is asserted too: residency never exceeds
  ``max_traces`` no matter how many requests were offered.

Wall times are best-of-``repeats`` with the two configurations
interleaved, so machine drift hits both equally.

Run standalone (``python benchmarks/bench_trace_overhead.py [--smoke]``,
with ``src`` on ``PYTHONPATH``) or via pytest.
"""

from __future__ import annotations

import argparse
import random
import time

from repro import IPSCluster, SortType, TableConfig, TimeRange
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.obs.registry import MetricsRegistry
from repro.obs.tail import TailSampler
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.proxy import RPCNodeProxy
from repro.workload.zipf import ZipfGenerator

NOW_MS = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)
SEED = 99

#: The acceptance ceiling for enabled tracing, plus a little headroom the
#: assertion leaves for timer noise on loaded CI machines.
OVERHEAD_LIMIT = 0.10


def build_cluster(num_nodes: int, population: int, tracer, registry):
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(name="bench", attributes=("click", "like"))
    cluster = IPSCluster(
        config, num_nodes=num_nodes, clock=clock,
        tracer=tracer, registry=registry,
    )
    for node_id in list(cluster.region.nodes):
        cluster.region.nodes[node_id] = RPCNodeProxy(
            cluster.region.nodes[node_id], clock,
            tracer=tracer, registry=registry,
        )
    client = cluster.client("bench")
    rng = random.Random(SEED)
    for profile_id in range(population):
        for _ in range(4):
            client.add_profile(
                profile_id,
                NOW_MS - rng.randrange(30 * MILLIS_PER_DAY),
                1,
                1,
                rng.randrange(100),
                {"click": rng.randrange(1, 8)},
            )
    cluster.run_background_cycle()
    return cluster, client


def make_batches(num_batches: int, batch_size: int, population: int):
    zipf = ZipfGenerator(population, s=1.05, seed=SEED)
    return [
        [zipf.sample() for _ in range(batch_size)]
        for _ in range(num_batches)
    ]


def drive(client, batches) -> float:
    """One measured pass of the batched workload; returns wall ms."""
    start = time.perf_counter()
    for batch in batches:
        outcome = client.multi_get_topk(
            batch, 1, 1, WINDOW, SortType.TOTAL, k=10
        )
        assert all(result.ok for result in outcome)
    return (time.perf_counter() - start) * 1000.0


def bench_null_span_ns(iterations: int = 200_000) -> float:
    """Direct cost of one disabled span, in nanoseconds."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("noop"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def run_bench(
    batch_size: int = 128,
    num_batches: int = 8,
    num_nodes: int = 4,
    population: int = 600,
    repeats: int = 5,
) -> dict[str, float]:
    batches = make_batches(num_batches, batch_size, population)

    _, client_off = build_cluster(num_nodes, population, NULL_TRACER, None)
    registry = MetricsRegistry()
    # The enabled arm runs the FULL observability pipeline: exemplars
    # (trace ids into every root histogram observation), a slow-query
    # threshold, and tail sampling.  A tiny threshold makes every request
    # a retention candidate, so the sampler's classify + store cost is
    # *in* the measured path, and its FIFO cap is constantly exercised.
    sampler = TailSampler(max_traces=32, registry=registry)
    tracer = Tracer(
        registry=registry, max_roots=32, slow_threshold_ms=0.01,
        tail_sampler=sampler,
    )
    _, client_on = build_cluster(num_nodes, population, tracer, registry)

    # Warm both clusters identically before measuring.
    drive(client_off, batches[:1])
    drive(client_on, batches[:1])

    off_ms = float("inf")
    on_ms = float("inf")
    for _ in range(repeats):
        off_ms = min(off_ms, drive(client_off, batches))
        on_ms = min(on_ms, drive(client_on, batches))

    overhead = on_ms / off_ms - 1.0
    sampler_stats = sampler.stats()
    return {
        "noop_span_ns": bench_null_span_ns(),
        "disabled_ms": off_ms,
        "enabled_ms": on_ms,
        "overhead": overhead,
        "spans_recorded": float(
            sum(1 for root in tracer.roots for _ in root.iter_spans())
        ),
        "sampler_offered": float(sampler_stats["offered"]),
        "sampler_resident": float(sampler_stats["resident"]),
        "sampler_max_traces": float(sampler_stats["max_traces"]),
        "exemplars_recorded": float(
            sum(
                metric.exemplar_count()
                for metric, _ in registry.histograms("trace_root_ms")
            )
        ),
    }


def report(result: dict[str, float]) -> None:
    print()
    print("=== Tracing overhead (batched-query workload) ===")
    print(f"no-op span:        {result['noop_span_ns']:8.0f} ns/span")
    print(f"tracing disabled:  {result['disabled_ms']:8.1f} ms (best of repeats)")
    print(
        f"tracing enabled:   {result['enabled_ms']:8.1f} ms "
        f"(+{result['overhead']:.1%}, {result['spans_recorded']:.0f} retained spans)"
    )
    print(
        f"tail sampler:      {result['sampler_offered']:8.0f} offered, "
        f"{result['sampler_resident']:.0f} resident "
        f"(cap {result['sampler_max_traces']:.0f}); "
        f"{result['exemplars_recorded']:.0f} exemplars live"
    )


def _check(result: dict[str, float]) -> None:
    assert result["noop_span_ns"] < 2_000, (
        f"no-op span costs {result['noop_span_ns']:.0f} ns; "
        "the disabled tracer is supposed to be free"
    )
    assert result["overhead"] < OVERHEAD_LIMIT, (
        f"enabled tracing adds {result['overhead']:.1%} "
        f"(limit {OVERHEAD_LIMIT:.0%})"
    )
    # Bounded memory: the sampler saw far more requests than it may keep,
    # and residency respects the cap.
    assert result["sampler_offered"] > result["sampler_max_traces"], (
        "bench too small to exercise the tail sampler's cap"
    )
    assert result["sampler_resident"] <= result["sampler_max_traces"], (
        f"tail sampler holds {result['sampler_resident']:.0f} traces, "
        f"cap is {result['sampler_max_traces']:.0f}"
    )
    assert result["exemplars_recorded"] > 0, (
        "enabled arm recorded no exemplars; the pipeline under test is "
        "not the full one"
    )


def test_trace_overhead_smoke():
    """Pytest entry point: small workload, same assertions."""
    result = run_bench(
        batch_size=64, num_batches=4, num_nodes=3, population=200, repeats=3
    )
    report(result)
    _check(result)
    from conftest import record_metric

    record_metric(
        "trace.overhead_frac", result["overhead"], unit="frac",
        better="lower", abs_tol=0.10,
    )
    record_metric(
        "trace.noop_span_ns", result["noop_span_ns"], unit="ns",
        better="lower", rel_tol=1.0,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--population", type=int, default=600)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny configuration for CI (same assertions, seconds not minutes)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_bench(
            batch_size=64, num_batches=4, num_nodes=3, population=200,
            repeats=3,
        )
    else:
        result = run_bench(
            batch_size=args.batch_size,
            num_batches=args.batches,
            num_nodes=args.nodes,
            population=args.population,
            repeats=args.repeats,
        )
    report(result)
    _check(result)


if __name__ == "__main__":
    main()
