"""Advertising: flow control and volatile bid prices (§I-d).

The paper's second major use case places two extra demands on IPS:

* **flow control** — models must see fresh impression/conversion counts to
  pace an ad's delivery over its campaign window;
* **volatile bid prices** — auctions reprice constantly, so the stored
  price must reflect the *latest* observation, not an average.  This is
  what the ``last`` aggregate (per-table reduce function) is for.

This example runs two IPS tables side by side: a ``sum``-aggregated
counters table for pacing and a ``last``-aggregated price table, plus a
per-caller QPS quota showing the multi-tenancy guardrail of §V-b.

Run with::

    python examples/advertising.py
"""

from repro import (
    IPSCluster,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    QuotaExceededError,
    SimulatedClock,
    SortType,
    TableConfig,
    TimeRange,
)
from repro.clock import MILLIS_PER_MINUTE

NOW = 400 * MILLIS_PER_DAY

SLOT_CAMPAIGN = 1
TYPE_DISPLAY = 0
ADVERTISER = 555  # Profile id keyed by advertiser in this table.


def pacing_example() -> None:
    """Flow control: impressions and conversions per ad over the day."""
    clock = SimulatedClock(NOW)
    counters = TableConfig(
        name="ad_counters",
        attributes=("impression", "click", "conversion"),
        aggregate="sum",
    )
    cluster = IPSCluster(counters, num_nodes=2, clock=clock)
    client = cluster.client("ads-pacer")

    # A campaign with three ads delivering through the day.
    deliveries = {101: 40, 102: 25, 103: 10}
    for ad_id, impressions in deliveries.items():
        for index in range(impressions):
            timestamp = NOW - index * 20 * MILLIS_PER_MINUTE
            counts = {"impression": 1}
            if index % 5 == 0:
                counts["click"] = 1
            if index % 10 == 0:
                counts["conversion"] = 1
            client.add_profile(
                ADVERTISER, timestamp, SLOT_CAMPAIGN, TYPE_DISPLAY, ad_id, counts
            )
    cluster.run_background_cycle()

    # The pacer asks: deliveries in the last 6 hours per ad -> throttle the
    # over-delivering ad, boost the under-delivering one.
    recent = client.get_profile_topk(
        ADVERTISER, SLOT_CAMPAIGN, TYPE_DISPLAY,
        TimeRange.current(6 * MILLIS_PER_HOUR),
        SortType.ATTRIBUTE, k=10, sort_attribute="impression",
    )
    print("--- pacing view (last 6 hours) ---")
    impression_idx = counters.attributes.index("impression")
    conversion_idx = counters.attributes.index("conversion")
    budget_per_6h = 12
    for row in recent:
        served = row.count(impression_idx)
        decision = "THROTTLE" if served > budget_per_6h else "serve"
        print(
            f"  ad {row.fid}: {served} impressions, "
            f"{row.count(conversion_idx)} conversions -> {decision}"
        )
    cluster.shutdown()


def bid_price_example() -> None:
    """Volatile prices: the ``last`` aggregate keeps the newest bid."""
    clock = SimulatedClock(NOW)
    prices = TableConfig(
        name="ad_bids",
        attributes=("bid_millicents",),
        aggregate="last",  # Newest observation wins on merge.
    )
    cluster = IPSCluster(prices, num_nodes=2, clock=clock)
    client = cluster.client("ads-bidder")

    # The same ad re-prices five times within one minute; every write lands
    # in the same 1-second-band slice region and merges with `last`.
    reprices = [12_000, 12_700, 11_900, 13_300, 12_850]
    for index, bid in enumerate(reprices):
        client.add_profile(
            ADVERTISER, NOW - (len(reprices) - index) * 100,
            SLOT_CAMPAIGN, TYPE_DISPLAY, 101, {"bid_millicents": bid},
        )
    cluster.run_background_cycle()

    current = client.get_profile_topk(
        ADVERTISER, SLOT_CAMPAIGN, TYPE_DISPLAY,
        TimeRange.current(MILLIS_PER_HOUR), k=1,
    )
    print("\n--- bid price view ---")
    print(f"  ad 101 current bid: {current[0].count(0)} millicents "
          f"(last write was {reprices[-1]})")
    assert current[0].count(0) == reprices[-1]
    cluster.shutdown()


def quota_example() -> None:
    """Multi-tenancy: a greedy experiment hits its QPS quota (§V-b)."""
    clock = SimulatedClock(NOW)
    config = TableConfig(name="ad_counters", attributes=("impression",))
    cluster = IPSCluster(config, num_nodes=1, clock=clock)
    node = next(iter(cluster.region.nodes.values()))
    node.quota.set_quota("greedy-experiment", qps=100, burst=5)

    client = cluster.client("greedy-experiment")
    client.add_profile(ADVERTISER, NOW, 1, 0, 101, {"impression": 1})
    cluster.run_background_cycle()

    admitted, rejected = 0, 0
    for _ in range(20):
        try:
            client.get_profile_topk(
                ADVERTISER, 1, 0, TimeRange.current(MILLIS_PER_HOUR), k=1
            )
            admitted += 1
        except QuotaExceededError:
            rejected += 1
    print("\n--- quota view ---")
    print(f"  greedy-experiment: {admitted} admitted, {rejected} rejected "
          f"(burst=5, qps=100)")
    assert rejected > 0
    cluster.shutdown()


def main() -> None:
    pacing_example()
    bid_price_example()
    quota_example()
    print("\nOK — advertising example finished.")


if __name__ == "__main__":
    main()
