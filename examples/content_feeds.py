"""Content feeds: the full §III-A ingestion topology feeding a ranking loop.

This example reproduces the paper's first major use case (§I-c): a news /
short-video feed whose recommendation models need both fast-moving trend
signals (clicks and CTR "within a minute") and long-term interests.

The pipeline, exactly as in Figure 5:

  impression/action/feature streams
      -> windowed stream join (Flink substitute)
      -> instance topic (Kafka substitute)
      -> IPS ingestion job with extraction logic
      -> IPS cluster (compute cache + KV persistence)
      -> feature queries from the "ranking service"

Run with::

    python examples/content_feeds.py
"""

from repro import (
    IPSCluster,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    SimulatedClock,
    SortType,
    TableConfig,
    TimeRange,
)
from repro.ingest import (
    IngestionJob,
    InstanceJoiner,
    Topic,
    default_extraction,
)
from repro.workload import EventStreamGenerator, WorkloadConfig

NOW = 400 * MILLIS_PER_DAY


def build_cluster() -> IPSCluster:
    config = TableConfig(
        name="feed",
        attributes=("impression", "click", "like", "comment", "share"),
    )
    return IPSCluster(config, num_nodes=4, clock=SimulatedClock(NOW))


def run_ingestion(cluster: IPSCluster, num_requests: int = 4000) -> None:
    """Generate two hours of traffic and push it through the pipeline."""
    generator = EventStreamGenerator(
        WorkloadConfig(num_users=300, num_items=1200, seed=2024)
    )
    joiner = InstanceJoiner(window_ms=60_000)
    topic = Topic("instance-feed", num_partitions=4)

    span = 2 * MILLIS_PER_HOUR
    for impression, actions, feature in generator.impressions(
        num_requests, NOW - span, span
    ):
        joiner.on_impression(impression)
        joiner.on_feature(feature)
        for action in actions:
            joiner.on_action(action)
        for record in joiner.advance_watermark(impression.timestamp_ms):
            topic.produce(record.user_id, record, record.timestamp_ms)
    for record in joiner.flush():
        topic.produce(record.user_id, record, record.timestamp_ms)

    job = IngestionJob(
        topic,
        cluster.client("flink-ingest"),
        default_extraction(cluster.config.attributes),
    )
    job.run_until_drained()
    cluster.run_background_cycle()
    print(
        f"ingested {job.stats.instances_consumed} instances "
        f"({joiner.stats.positives} positive samples), "
        f"{job.stats.writes_issued} profile writes"
    )


def rank_for_user(cluster: IPSCluster, user_id: int) -> None:
    """What the ranking service asks IPS per request (10s-100s features)."""
    client = cluster.client("ranking-service")
    click_idx = cluster.config.attributes.index("click")
    impression_idx = cluster.config.attributes.index("impression")

    print(f"\n--- features for user {user_id} ---")
    # 1. Trend signal: most clicked items in the last hour (short window).
    for slot in range(8):
        hot = client.get_profile_topk(
            user_id, slot, None, TimeRange.current(MILLIS_PER_HOUR),
            SortType.ATTRIBUTE, k=3, sort_attribute="click",
        )
        if hot:
            print(f"  slot {slot}: last-hour top clicks: "
                  + ", ".join(f"item{r.fid}(c={r.count(click_idx)})" for r in hot))

    # 2. CTR features: clicks / impressions over a longer window.
    for slot in range(8):
        rows = client.get_profile_topk(
            user_id, slot, None, TimeRange.current(6 * MILLIS_PER_HOUR),
            SortType.ATTRIBUTE, k=5, sort_attribute="impression",
        )
        for row in rows:
            impressions = row.count(impression_idx)
            clicks = row.count(click_idx)
            if impressions >= 3:
                print(
                    f"  slot {slot} item{row.fid}: "
                    f"CTR={clicks / impressions:.2f} "
                    f"({clicks}/{impressions})"
                )

    # 3. Long-term interest with recency decay: favour what the user is
    #    into *now* without forgetting history (the trail-cooking-recipes
    #    effect from §I-c).
    for slot in range(8):
        decayed = client.get_profile_decay(
            user_id, slot, None, TimeRange.current(MILLIS_PER_DAY),
            decay_function="exponential", decay_factor=3 * MILLIS_PER_HOUR,
            k=3, sort_attribute="click",
        )
        if decayed:
            print(
                f"  slot {slot}: decayed interests: "
                + ", ".join(f"item{r.fid}" for r in decayed)
            )
            break  # One slot is enough for the demo output.


def assemble_for_training(cluster: IPSCluster) -> None:
    """Serving and training see the identical assembled features (§I)."""
    from repro.assembly import FeatureAssembler, FeatureSpec
    from repro.ingest import Topic

    specs = [
        FeatureSpec(name=f"clicks_24h_slot{slot}", slot=slot, type_id=None,
                    window_ms=MILLIS_PER_DAY, attribute="click", k=5)
        for slot in range(4)
    ] + [
        FeatureSpec(name="hot_now", slot=0, type_id=None,
                    window_ms=2 * MILLIS_PER_HOUR, kind="decay",
                    half_life_ms=MILLIS_PER_HOUR // 2, attribute="click", k=5),
    ]
    training_topic = Topic("training-instances")
    assembler = FeatureAssembler(
        cluster.client("ranking-service"), specs,
        cluster.config.attributes, training_topic=training_topic,
    )
    record = assembler.assemble(0, cluster.clock.now_ms())
    print(f"\n--- feature assembly (serving + training) ---")
    print(f"  vector width: {assembler.vector_width} numbers "
          f"({len(specs)} specs x 2k each)")
    print(f"  first 10 values: {record.vector()[:10]}")
    trained = training_topic.poll("trainer")[0].value
    assert trained.vector() == record.vector()
    print("  training topic received the identical record — no skew")


def main() -> None:
    cluster = build_cluster()
    run_ingestion(cluster)
    # Rank for the most active user (Zipf rank 0 is the heaviest).
    rank_for_user(cluster, user_id=0)
    assemble_for_training(cluster)
    cluster.shutdown()
    print("\nOK — content feeds example finished.")


if __name__ == "__main__":
    main()
