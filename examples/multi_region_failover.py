"""Multi-region deployment and data-center failover (§III-G, Fig. 15).

Demonstrates the paper's geo-replication strategy:

* clients **write to every region** but **query only the local one**;
* only the master region persists to the master KV cluster; other regions
  read their local slave replica;
* when a region fails, clients fail over to another region within the
  same request; when a single node fails, the consistent-hash ring routes
  around it and the replacement node reloads the profile from storage;
* consistency across regions is deliberately weak — a recovering node may
  briefly serve stale data.

Run with::

    python examples/multi_region_failover.py
"""

from repro import (
    MILLIS_PER_DAY,
    MultiRegionDeployment,
    SimulatedClock,
    TableConfig,
    TimeRange,
)

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)
USER = 77


def main() -> None:
    clock = SimulatedClock(NOW)
    config = TableConfig(name="profiles", attributes=("click", "like"))
    deployment = MultiRegionDeployment(
        config,
        region_names=["us-east", "eu-west", "ap-south"],
        nodes_per_region=3,
        master_region="us-east",
        clock=clock,
    )
    eu_client = deployment.client("eu-west", caller="feed")

    # --- write-all / read-local ---------------------------------------
    regions_written = eu_client.add_profile(
        USER, NOW, slot=1, type_id=0, fid=42, counts={"click": 3, "like": 1}
    )
    print(f"write fanned out to {regions_written} regions")
    deployment.run_background_cycle()  # merge write tables + replicate KV

    local = eu_client.get_profile_topk(USER, 1, 0, WINDOW, k=5)
    print(f"eu-west local read: {[(r.fid, r.counts) for r in local]}")
    assert eu_client.stats.region_failovers == 0

    # --- node failure: ring reroute + reload from the slave replica ----
    eu = deployment.regions["eu-west"]
    owner = eu.node_for(USER).node_id
    eu.fail_node(owner)
    print(f"\nkilled eu-west node {owner!r}")
    rerouted = eu_client.get_profile_topk(USER, 1, 0, WINDOW, k=5)
    print(f"rerouted read (replacement node reloaded from replica): "
          f"{[(r.fid, r.counts) for r in rerouted]}")
    assert rerouted == local
    eu.recover_node(owner)

    # --- whole-region failure: cross-region failover -------------------
    deployment.fail_region("eu-west")
    print("\nfailed the entire eu-west region")
    failover = eu_client.get_profile_topk(USER, 1, 0, WINDOW, k=5)
    print(f"failover read served by another region: "
          f"{[(r.fid, r.counts) for r in failover]}")
    print(f"client failovers so far: {eu_client.stats.region_failovers}")
    assert failover == local
    deployment.recover_region("eu-west")

    # --- weak consistency window ---------------------------------------
    # A write lands while replication to ap-south is held back...
    eu_client.add_profile(USER, NOW + 1000, 1, 0, 42, {"click": 10})
    for region in deployment.regions.values():
        region.merge_all_write_tables()
    for node in deployment.regions["us-east"].nodes.values():
        node.cache.flush_all()
    lag = deployment.kv_cluster.lag("ap-south")
    print(f"\nap-south replication lag before pump: {lag} ops "
          f"(a node recovering there now could serve slightly stale data)")
    deployment.replicate()
    print(f"after pump: lag={deployment.kv_cluster.lag('ap-south')} ops")

    print(f"\nclient error rate: {eu_client.stats.error_rate:.4%} "
          f"across {eu_client.stats.reads} reads / {eu_client.stats.writes} writes")
    deployment.shutdown()
    print("\nOK — multi-region failover example finished.")


if __name__ == "__main__":
    main()
