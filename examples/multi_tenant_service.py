"""Multi-tenant IPS service: many tables, shared capacity, one quota.

The paper's §IV operations model: one IPS cluster is shared by multiple
applications in a multi-tenancy manner; each upstream application has a
QPS quota enforced by caller identity, and every API call names its table
first — the exact signatures of §II-B.

Two product teams share a service here: the *feed* team (content
recommendation counters) and the *ads* team (impression/conversion flow
control).  A third, greedy experiment gets throttled without affecting
either team.  Finally the RPC proxy shows the Table-II-style client/server
latency decomposition over real calls.

Run with::

    python examples/multi_tenant_service.py
"""

from repro import (
    IPSService,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    QuotaExceededError,
    SimulatedClock,
    SortType,
    TableConfig,
    TimeRange,
)
from repro.server import LatencyModel, RPCNodeProxy
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


def build_service() -> IPSService:
    clock = SimulatedClock(NOW)
    service = IPSService(InMemoryKVStore(), clock=clock)
    service.create_table(
        TableConfig(name="feed", attributes=("impression", "click", "like"))
    )
    service.create_table(
        TableConfig(
            name="ads",
            attributes=("impression", "conversion"),
            aggregate="sum",
        )
    )
    return service


def tenant_traffic(service: IPSService) -> None:
    print("--- two tenants on one service ---")
    # Feed team writes engagement counters.
    for user in range(20):
        service.add_profile(
            "feed", user, NOW, slot=1, type=0, fid=user % 5,
            feature_counts={"impression": 3, "click": 1},
            caller="feed-team",
        )
    # Ads team writes conversion counters for the same user ids —
    # independent namespaces, zero interference.
    for user in range(20):
        service.add_profile(
            "ads", user, NOW, slot=2, type=0, fid=100 + user % 3,
            feature_counts={"impression": 5, "conversion": 1},
            caller="ads-team",
        )
    service.run_background_cycle()

    feed_top = service.get_profile_topk(
        "feed", 7, 1, 0, WINDOW, SortType.ATTRIBUTE, k=2,
        sort_attribute="click", caller="feed-team",
    )
    ads_top = service.get_profile_topk(
        "ads", 7, 2, 0, WINDOW, SortType.ATTRIBUTE, k=2,
        sort_attribute="conversion", caller="ads-team",
    )
    print(f"  feed user 7 top clicked items: {[r.fid for r in feed_top]}")
    print(f"  ads  user 7 top converting ads: {[r.fid for r in ads_top]}")


def quota_guardrail(service: IPSService) -> None:
    print("\n--- the greedy experiment hits its quota ---")
    service.quota.set_quota("ml-experiment", qps=50, burst=3)
    admitted = rejected = 0
    for index in range(12):
        try:
            service.get_profile_topk(
                "feed", index % 5, 1, 0, WINDOW, caller="ml-experiment"
            )
            admitted += 1
        except QuotaExceededError:
            rejected += 1
    print(f"  ml-experiment: {admitted} admitted, {rejected} rejected")
    # The feed team is untouched.
    service.get_profile_topk("feed", 1, 1, 0, WINDOW, caller="feed-team")
    print("  feed-team still serving normally")


def rpc_latency_view(service: IPSService) -> None:
    print("\n--- Table-II style decomposition over the RPC proxy ---")
    node = service.table_node("feed")
    proxy = RPCNodeProxy(node, service.clock, LatencyModel(jitter_ms=0.2))
    for index in range(200):
        proxy.get_profile_topk(index % 20, 1, 0, WINDOW, k=5)
    summary = proxy.latency_summary()
    print(
        f"  {summary['calls']:.0f} proxied reads: "
        f"client p50={summary['client_p50_ms']:.2f}ms "
        f"p99={summary['client_p99_ms']:.2f}ms | "
        f"server p50={summary['server_p50_ms']:.3f}ms "
        f"p99={summary['server_p99_ms']:.3f}ms"
    )
    print("  (client = server + ~3 ms simulated network, §III / Table II)")


def main() -> None:
    service = build_service()
    tenant_traffic(service)
    quota_guardrail(service)
    rpc_latency_view(service)
    service.shutdown()
    print("\nOK — multi-tenant service example finished.")


if __name__ == "__main__":
    main()
