"""Feature engineering & operations: the §V lessons in action.

The paper's "Experiences & Lessons Learned" section describes how teams
actually work with IPS day to day:

* **higher-level APIs** summarising common scenarios (§V-a) — shown here
  via ``FeatureClient`` (CTR, trending, engagement scores);
* **hot-reload of feature-dependent configs** (§V-b) — a machine-learning
  engineer experiments with time precision by swapping the compaction
  bands live, no restart;
* **auto-scaling with workload** (§IV) — the fleet grows under a traffic
  spike and shrinks afterwards without losing data;
* **monitoring** — the telemetry rollups behind the §IV dashboards.

Run with::

    python examples/feature_engineering.py
"""

from repro import (
    ClusterMonitor,
    FeatureClient,
    IPSCluster,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    ScalingPolicy,
    SimulatedClock,
    TableConfig,
    TimeDimensionConfig,
)
from repro.cluster.autoscaler import AutoScaler

NOW = 400 * MILLIS_PER_DAY


def build_cluster() -> IPSCluster:
    config = TableConfig(
        name="feed",
        attributes=("impression", "click", "like", "comment", "share"),
    )
    return IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))


def seed_activity(cluster: IPSCluster) -> None:
    client = cluster.client("seed")
    # A user with layered interests: heavy on item 1, recent on item 2,
    # high-engagement (shares) on item 3.
    for hour in range(48):
        client.add_profile(7, NOW - hour * MILLIS_PER_HOUR, 1, 0, 1,
                           {"impression": 2, "click": 1})
    client.add_profile(7, NOW, 1, 0, 2, {"impression": 1, "click": 1})
    client.add_profile(7, NOW - 3 * MILLIS_PER_HOUR, 1, 0, 3,
                       {"impression": 1, "share": 2, "comment": 1})
    cluster.run_background_cycle()


def scenario_apis(cluster: IPSCluster) -> None:
    features = FeatureClient(cluster.client("ranker"), cluster.config.attributes)
    print("--- FeatureClient scenarios (§V-a) ---")
    print("top interests (30d, by clicks):",
          [(r.fid, r.counts) for r in features.top_interests(7, slot=1, by="click", k=3)])
    print("CTR rows (24h, >=3 impressions):",
          [(row.fid, f"{row.ctr:.2f}") for row in features.ctr(7, slot=1, min_impressions=3)])
    print("trending (6h, 1h half-life):",
          [r.fid for r in features.trending(7, slot=1)])
    print("engagement (share x5, comment x3, click x1):",
          [r.fid for r in features.engagement_score(
              7, slot=1, weights={"share": 5, "comment": 3, "click": 1})])


def hot_reload_experiment(cluster: IPSCluster) -> None:
    """§V-b: experiment with compaction time precision, live."""
    node = cluster.region.node_for(7)
    profile = node.engine.table.get(7)
    before = profile.slice_count()
    # Experiment: much coarser precision for everything older than 10 min.
    coarse = TimeDimensionConfig.from_mapping(
        {"1s": ("0s", "10m"), "12h": ("10m", "365d")}
    )
    for each in cluster.region.nodes.values():
        each.reload_config(time_dimension=coarse)
        each.run_maintenance()
    after = node.engine.table.get(7).slice_count()
    print(f"\n--- hot-reload experiment (§V-b) ---")
    print(f"slice count {before} -> {after} after swapping compaction "
          f"bands live (no restart)")


def autoscale_under_spike(cluster: IPSCluster) -> None:
    print("\n--- auto-scaling (§IV) ---")
    scaler = AutoScaler(
        cluster.region,
        ScalingPolicy(node_capacity_qps=1000, min_nodes=1, max_nodes=6,
                      cooldown_ticks=0),
    )
    for observed_qps in (500, 1900, 4000, 4000, 900, 300):
        events = scaler.tick(observed_qps)
        actions = ", ".join(f"{e.action} {e.node_id}" for e in events) or "steady"
        print(f"  load {observed_qps:5.0f} qps over "
              f"{cluster.region.healthy_node_count} nodes -> {actions}")
    # Data survived the churn.
    client = cluster.client("check")
    features = FeatureClient(client, cluster.config.attributes)
    assert features.top_interests(7, slot=1, k=1)
    print("  profile data intact after scale up/down")


def show_dashboard(cluster: IPSCluster) -> None:
    print("\n--- monitoring rollup ---")
    print(ClusterMonitor(cluster).report())


def main() -> None:
    cluster = build_cluster()
    seed_activity(cluster)
    scenario_apis(cluster)
    hot_reload_experiment(cluster)
    autoscale_under_spike(cluster)
    show_dashboard(cluster)
    cluster.shutdown()
    print("\nOK — feature engineering example finished.")


if __name__ == "__main__":
    main()
