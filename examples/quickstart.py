"""Quickstart: the paper's motivating example (§II-A) end to end.

Alice watches short videos: she likes, comments on and re-shares a video
about the Los Angeles Lakers, then a few days later likes a couple of
videos about the Golden State Warriors.  The recommendation engine asks
IPS: "Alice's most liked basketball team over the last ten days?" — the
answer should be the Warriors.

Run with::

    python examples/quickstart.py
"""

from repro import (
    FeatureCatalog,
    IPSCluster,
    MILLIS_PER_DAY,
    SimulatedClock,
    SortType,
    TableConfig,
    TimeRange,
)

# The paper stores "hashed literals": the catalog maps names to ids
# deterministically.  debug=True keeps a reverse map so this example can
# decode its own results; production runs strict (one-way) mode.
catalog = FeatureCatalog(salt="quickstart", debug=True)
ALICE = 1001
SLOT_SPORTS = catalog.slot("Sports")
TYPE_BASKETBALL = catalog.type("Basketball")
FID_LAKERS = catalog.fid("Los Angeles Lakers")
FID_WARRIORS = catalog.fid("Golden State Warriors")


def main() -> None:
    # A deterministic clock makes the example reproducible; production
    # deployments simply omit the clock argument.
    clock = SimulatedClock(start_ms=400 * MILLIS_PER_DAY)
    now = clock.now_ms()

    config = TableConfig(
        name="user_profile",
        attributes=("like", "comment", "share"),
    )
    cluster = IPSCluster(config, num_nodes=4, clock=clock)
    client = cluster.client(caller="quickstart")

    # --- Alice's activity (writes) -----------------------------------
    # Ten days ago: Lakers video — like + comment + share.
    client.add_profile(
        ALICE, now - 10 * MILLIS_PER_DAY, SLOT_SPORTS, TYPE_BASKETBALL,
        FID_LAKERS, {"like": 1, "comment": 1, "share": 1},
    )
    # Two days ago: Warriors videos — two likes.
    client.add_profile(
        ALICE, now - 2 * MILLIS_PER_DAY, SLOT_SPORTS, TYPE_BASKETBALL,
        FID_WARRIORS, {"like": 2},
    )

    # Writes land in the write table first (read-write isolation, §III-F)
    # and become visible after the periodic merge.
    cluster.run_background_cycle()

    # --- The Listing-1 query (read) -----------------------------------
    # SELECT feature, SUM(like) ... WHERE timestamp > TEN_DAYS_AGO
    #   AND slot='Sports' AND type='Basketball'
    # ORDER BY total_likes DESC LIMIT 1
    top = client.get_profile_topk(
        ALICE, SLOT_SPORTS, TYPE_BASKETBALL,
        TimeRange.current(10 * MILLIS_PER_DAY),
        SortType.ATTRIBUTE, k=1, sort_attribute="like",
    )
    print("Alice's most liked basketball team over the last 10 days:")
    for result in top:
        print(f"  {catalog.feature_name(result.fid)}  (likes={result.count(0)})")
    assert top[0].fid == FID_WARRIORS

    # --- A decayed view (get_profile_decay) ----------------------------
    decayed = client.get_profile_decay(
        ALICE, SLOT_SPORTS, TYPE_BASKETBALL,
        TimeRange.current(30 * MILLIS_PER_DAY),
        decay_function="exponential",
        decay_factor=2 * MILLIS_PER_DAY,  # Half life: two days.
    )
    print("\nExponentially decayed counts (half life = 2 days):")
    for result in decayed:
        print(
            f"  {catalog.feature_name(result.fid)}: "
            f"decayed likes = {result.count(0)}"
        )

    cluster.shutdown()
    print("\nOK — quickstart finished.")


if __name__ == "__main__":
    main()
