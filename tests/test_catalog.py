"""Tests for the hashed-literal feature catalog (§II-A privacy posture)."""

import pytest

from repro.catalog import FeatureCatalog
from repro.errors import ConfigError


class TestHashing:
    def test_deterministic_across_instances(self):
        a, b = FeatureCatalog(salt="s"), FeatureCatalog(salt="s")
        assert a.fid("Los Angeles Lakers") == b.fid("Los Angeles Lakers")
        assert a.slot("Sports") == b.slot("Sports")
        assert a.type("Basketball") == b.type("Basketball")

    def test_salt_changes_everything(self):
        a, b = FeatureCatalog(salt="s1"), FeatureCatalog(salt="s2")
        assert a.fid("Lakers") != b.fid("Lakers")

    def test_distinct_literals_distinct_ids(self):
        catalog = FeatureCatalog()
        assert catalog.fid("Lakers") != catalog.fid("Warriors")

    def test_slot_and_type_namespaces_are_separate(self):
        """"Sports" as a slot and "Sports" as a type must not collide."""
        catalog = FeatureCatalog()
        assert catalog.slot("Sports") != catalog.type("Sports")

    def test_fid_is_64_bit_buckets_32_bit(self):
        catalog = FeatureCatalog()
        assert 0 <= catalog.fid("x") < 2**64
        assert 0 <= catalog.slot("x") < 2**32
        assert 0 <= catalog.type("x") < 2**32

    def test_empty_literal_rejected(self):
        with pytest.raises(ConfigError):
            FeatureCatalog().fid("")


class TestPrivacyPosture:
    def test_strict_mode_refuses_reverse_lookup(self):
        catalog = FeatureCatalog(debug=False)
        fid = catalog.fid("Lakers")
        with pytest.raises(ConfigError):
            catalog.feature_name(fid)
        with pytest.raises(ConfigError):
            catalog.bucket_name(catalog.slot("Sports"))

    def test_strict_mode_retains_nothing(self):
        catalog = FeatureCatalog(debug=False)
        catalog.fid("Lakers")
        assert catalog._reverse_fids == {}

    def test_debug_mode_decodes_seen_literals(self):
        catalog = FeatureCatalog(debug=True)
        fid = catalog.fid("Lakers")
        assert catalog.feature_name(fid) == "Lakers"
        slot = catalog.slot("Sports")
        assert catalog.bucket_name(slot) == "Sports"

    def test_debug_mode_unknown_fid_is_none(self):
        catalog = FeatureCatalog(debug=True)
        assert catalog.feature_name(12345) is None


class TestEndToEnd:
    def test_alice_example_with_literals(self):
        """The paper's §II-A motivating example, in actual literals."""
        from repro.clock import MILLIS_PER_DAY, SimulatedClock
        from repro.cluster import IPSCluster
        from repro.config import TableConfig
        from repro.core.query import SortType
        from repro.core.timerange import TimeRange

        now = 400 * MILLIS_PER_DAY
        catalog = FeatureCatalog(salt="prod", debug=True)
        config = TableConfig(
            name="user_profile", attributes=("like", "comment", "share")
        )
        cluster = IPSCluster(config, num_nodes=2, clock=SimulatedClock(now))
        client = cluster.client("app")
        alice = 1001
        sports = catalog.slot("Sports")
        basketball = catalog.type("Basketball")
        client.add_profile(
            alice, now - 10 * MILLIS_PER_DAY, sports, basketball,
            catalog.fid("Los Angeles Lakers"),
            {"like": 1, "comment": 1, "share": 1},
        )
        client.add_profile(
            alice, now - 2 * MILLIS_PER_DAY, sports, basketball,
            catalog.fid("Golden State Warriors"), {"like": 2},
        )
        cluster.run_background_cycle()
        top = client.get_profile_topk(
            alice, sports, basketball,
            TimeRange.current(10 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=1, sort_attribute="like",
        )
        decoded = catalog.decode_results(top)
        assert decoded[0][0] == "Golden State Warriors"
