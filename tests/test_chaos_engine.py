"""Tests for the chaos engine's fault seams and determinism."""

import pytest

from repro.chaos import ChaosEngine, ChaosEvent, paper_fault_timeline
from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster, MultiRegionDeployment
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import IPSError, NodeUnavailableError, RPCTimeoutError, StorageError
from repro.obs.registry import MetricsRegistry
from repro.server.proxy import RPCNodeProxy

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def deployment():
    clock = SimulatedClock(NOW)
    config = TableConfig(name="t", attributes=("click",))
    return MultiRegionDeployment(
        config, ["us", "eu"], nodes_per_region=2, clock=clock
    )


class TestChaosEvent:
    def test_window_is_half_open(self):
        event = ChaosEvent(100, 50, "node_crash")
        assert not event.active_at(99)
        assert event.active_at(100)
        assert event.active_at(149)
        assert not event.active_at(150)
        assert event.end_ms == 150

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ChaosEvent(0, 10, "gamma_rays")

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            ChaosEvent(0, 0, "node_crash")


class TestEngineWiring:
    def test_engine_proxies_every_node(self, deployment):
        ChaosEngine(deployment, seed=1)
        for region in deployment.regions.values():
            for node in region.nodes.values():
                assert isinstance(node, RPCNodeProxy)

    def test_idempotent_over_preproxied_deployments(self, deployment):
        ChaosEngine(deployment, seed=1)
        before = {
            node_id: node
            for region in deployment.regions.values()
            for node_id, node in region.nodes.items()
        }
        ChaosEngine(deployment, seed=2)
        after = {
            node_id: node
            for region in deployment.regions.values()
            for node_id, node in region.nodes.items()
        }
        assert before == after  # No double wrapping.


class TestFaultKinds:
    def test_node_crash_takes_transport_down_and_drops_state(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        client = deployment.client("us", caller="app")
        client.add_profile(3, NOW, 1, 0, 1, {"click": 1})
        deployment.run_background_cycle()
        victim = None
        for region in deployment.regions.values():
            for node in region.nodes.values():
                if node.cache.resident_count() > 0:
                    victim = node
                    break
        assert victim is not None
        engine.schedule(
            ChaosEvent(NOW + 100, 200, "node_crash", victim.node_id)
        )
        deployment.clock.advance(100)
        engine.tick()
        assert victim.cache.resident_count() == 0  # Volatile state lost.
        with pytest.raises(NodeUnavailableError):
            victim.get_profile_topk(3, 1, 0, WINDOW, SortType.TOTAL, 3)
        deployment.clock.advance(200)
        engine.tick()
        # Restarted: transport back, cache cold but reloads from KV.
        results = client.get_profile_topk(3, 1, 0, WINDOW, SortType.TOTAL, k=3)
        assert results and results[0].fid == 1

    def test_region_outage_and_recovery(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        engine.schedule(ChaosEvent(NOW, 100, "region_outage", "eu"))
        engine.tick()
        assert not deployment.regions["eu"].available
        assert deployment.regions["us"].available
        deployment.clock.advance(100)
        engine.tick()
        assert deployment.regions["eu"].available

    def test_rpc_error_injection_is_probabilistic_and_counted(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        engine.schedule(ChaosEvent(NOW, 1_000, "rpc_error", "us", 0.5))
        engine.tick()
        node = deployment.regions["us"].nodes["us-node-0"]
        outcomes = {"ok": 0, "err": 0}
        for _ in range(100):
            try:
                node.get_profile_topk(1, 1, 0, WINDOW, SortType.TOTAL, 3)
                outcomes["ok"] += 1
            except RPCTimeoutError:
                outcomes["err"] += 1
        assert outcomes["err"] > 10
        assert outcomes["ok"] > 10
        assert engine.injections["rpc_error_injected"] == outcomes["err"]
        # eu is outside the blast radius.
        eu_node = deployment.regions["eu"].nodes["eu-node-0"]
        eu_node.get_profile_topk(1, 1, 0, WINDOW, SortType.TOTAL, 3)

    def test_rpc_latency_inflates_modelled_client_time(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        node = deployment.regions["us"].nodes["us-node-0"]
        node.get_profile_topk(1, 1, 0, WINDOW, SortType.TOTAL, 3)
        baseline = node.rpc.stats.last_client_ms
        engine.schedule(ChaosEvent(NOW, 1_000, "rpc_latency", "us", 75.0))
        engine.tick()
        node.get_profile_topk(1, 1, 0, WINDOW, SortType.TOTAL, 3)
        assert node.rpc.stats.last_client_ms >= baseline + 70.0

    def test_kv_error_injection_hits_the_region_store(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        engine.schedule(ChaosEvent(NOW, 1_000, "kv_error", "us", 1.0))
        engine.tick()
        store = deployment.kv_cluster.injection_store("us")
        with pytest.raises(StorageError):
            store.get(b"any-key")
        assert engine.injections["kv_error"] >= 1
        deployment.clock.advance(1_000)
        engine.tick()
        store.get(b"any-key")  # Injector reverted to rate 0.

    def test_replica_lag_stalls_and_resumes_the_pump(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        writer = deployment.kv_cluster.write_store()
        writer.set(b"k", b"v")
        engine.schedule(ChaosEvent(NOW, 500, "replica_lag", None, 0))
        engine.tick()
        assert deployment.replicate() == 0  # Stalled.
        assert deployment.kv_cluster.lag("eu") == 1
        deployment.clock.advance(500)
        engine.tick()
        assert deployment.replicate() == 1  # Throttle cleared.
        assert deployment.kv_cluster.lag("eu") == 0


class TestDeterminismAndAccounting:
    def test_fault_counts_are_key_sorted(self, deployment):
        engine = ChaosEngine(deployment, seed=1)
        engine.schedule(ChaosEvent(NOW, 100, "rpc_error", None, 1.0))
        engine.tick()
        node = deployment.regions["us"].nodes["us-node-0"]
        with pytest.raises(RPCTimeoutError):
            node.get_profile_topk(1, 1, 0, WINDOW, SortType.TOTAL, 3)
        counts = engine.fault_counts()
        assert list(counts) == sorted(counts)
        assert counts["rpc_error"] == 1
        assert counts["rpc_error_injected"] == 1

    def test_same_seed_same_counts(self):
        def run(seed):
            clock = SimulatedClock(NOW)
            config = TableConfig(name="t", attributes=("click",))
            deployment = MultiRegionDeployment(
                config, ["us", "eu"], nodes_per_region=2, clock=clock
            )
            engine = ChaosEngine(deployment, seed=seed)
            engine.schedule(ChaosEvent(NOW, 10_000, "rpc_error", "us", 0.4))
            engine.tick()
            client = deployment.client("us", caller="app", max_retries=0)
            errors = 0
            for profile_id in range(200):
                try:
                    client.get_profile_topk(
                        profile_id, 1, 0, WINDOW, SortType.TOTAL, k=3
                    )
                except IPSError:
                    errors += 1
            return errors, engine.fault_counts()

        assert run(9) == run(9)
        # A different seed draws a different error sequence (overwhelmingly
        # likely over 200 Bernoulli(0.4) trials).
        assert run(9) != run(10)

    def test_injections_flow_to_the_registry(self, deployment):
        registry = MetricsRegistry()
        engine = ChaosEngine(deployment, seed=1, registry=registry)
        engine.schedule(ChaosEvent(NOW, 100, "node_crash", "us-node-0"))
        engine.tick()
        assert 'chaos_injections{kind="node_crash"}' in registry.render_text()

    def test_single_region_cluster_is_supported(self):
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        engine = ChaosEngine(cluster, seed=1)
        engine.schedule(ChaosEvent(NOW, 100, "kv_error", "local", 1.0))
        engine.tick()
        with pytest.raises(StorageError):
            cluster.store.get(b"k")
        clock.advance(100)
        engine.tick()
        cluster.store.get(b"k")


class TestPaperTimeline:
    def test_shape_of_the_fig17_timeline(self):
        events = paper_fault_timeline(0, region="eu", round_ms=1_000)
        kinds = sorted(event.kind for event in events)
        assert kinds == [
            "node_crash",
            "region_outage",
            "replica_lag",
            "rpc_error",
            "rpc_latency",
        ]
        crash = next(e for e in events if e.kind == "node_crash")
        assert crash.target == "eu-node-0"
        outage = next(e for e in events if e.kind == "region_outage")
        assert outage.target == "eu"
        assert all(event.end_ms <= 40 * 1_000 for event in events)
