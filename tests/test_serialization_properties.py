"""Property-based suite for the zero-copy (columnar v2) serialization.

Two contracts, enforced with hypothesis over generated slices/profiles:

1. **v2 round-trip** — array-native slice → bytes → slice is lossless,
   and re-encoding the decoded slice reproduces the exact same bytes
   (stability matters: replica repair compares encoded block digests).
2. **Backward compatibility** — dict-era (v1) bytes decode losslessly
   into the array-native representation, so WAL/checkpoint/KV images
   written before the columnar refactor keep loading.

Plus structural checks that the raw int64 column sections actually
appear on the wire for large groups (the zero-copy path) and that
corrupt raw sections fail with ``SerializationError``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar import ColumnGroup
from repro.core.aggregate import aggregate_sum
from repro.core.feature import INT64_MAX, INT64_MIN, FeatureStat
from repro.core.profile import ProfileData
from repro.core.slice import Slice
from repro.errors import SerializationError
from repro.storage.serialization import (
    RAW_COLUMN_MIN_ROWS,
    SLICE_V2_MAGIC,
    ProfileCodec,
    deserialize_profile,
    read_varint,
    serialize_profile,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Counts beyond int64 are clamped by FeatureStat; include both.
count_values = st.integers(min_value=-(2**70), max_value=2**70)

#: fids stay unsigned for v1-encoder compatibility (it rejects negatives)
#: but may exceed int64 — those rows demote their group to legacy mode.
fid_values = st.integers(min_value=0, max_value=2**64 - 1)

timestamp_values = st.integers(min_value=0, max_value=2**48)

feature_stats = st.builds(
    FeatureStat,
    fid_values,
    st.lists(count_values, min_size=0, max_size=4),
    timestamp_values,
)


@st.composite
def slices(draw):
    start = draw(st.integers(0, 2**40))
    end = start + draw(st.integers(1, 2**40))
    profile_slice = Slice(start, end)
    for slot in draw(st.lists(st.integers(0, 5), max_size=3, unique=True)):
        instance_set = profile_slice.ensure_slot(slot)
        for type_id in draw(
            st.lists(st.integers(0, 5), max_size=3, unique=True)
        ):
            stats = draw(st.lists(feature_stats, min_size=1, max_size=30))
            instance_set.adopt_group(type_id, ColumnGroup.from_stats(stats))
    profile_slice.mark_mutated()
    return profile_slice


write_ops = st.tuples(
    st.integers(0, 10 * 86_400_000),            # timestamp offset
    st.integers(1, 2),                           # slot
    st.integers(1, 3),                           # type
    fid_values,                                  # fid
    st.lists(count_values, min_size=0, max_size=3),
)


def slice_snapshot(profile_slice):
    """Logical content of a slice, order-independent per (slot, type)."""
    slots = {}
    for slot, instance_set in profile_slice.slots_items():
        slots[slot] = {
            type_id: sorted(
                (stat.fid, tuple(stat.counts), stat.last_timestamp_ms)
                for stat in instance_set.features_for_type(type_id)
            )
            for type_id in instance_set.type_ids
        }
    return (profile_slice.start_ms, profile_slice.end_ms, slots)


def _fits_int64(stat):
    return (
        INT64_MIN <= stat.fid <= INT64_MAX
        and INT64_MIN <= stat.last_timestamp_ms <= INT64_MAX
    )


# ----------------------------------------------------------------------
# v2 round-trip
# ----------------------------------------------------------------------


class TestV2RoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(slices())
    def test_slice_roundtrip_lossless_and_stable(self, profile_slice):
        blob = ProfileCodec.encode_slice(profile_slice)
        decoded = ProfileCodec.decode_slice(blob)
        assert slice_snapshot(decoded) == slice_snapshot(profile_slice)
        # Re-encoding the decoded slice must reproduce the same bytes.
        assert ProfileCodec.encode_slice(decoded) == blob

    @settings(max_examples=120, deadline=None)
    @given(slices())
    def test_decoded_slices_are_array_native(self, profile_slice):
        """Groups whose rows all fit int64 decode into columnar form."""
        decoded = ProfileCodec.decode_slice(
            ProfileCodec.encode_slice(profile_slice)
        )
        for _, instance_set in decoded.slots_items():
            for _, group in instance_set.groups_items():
                if all(_fits_int64(stat) for stat in group.iter_stats()):
                    assert group.is_columnar

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 2**32),
        st.integers(1, 86_400_000),
        st.lists(write_ops, min_size=0, max_size=40),
    )
    def test_profile_roundtrip(self, profile_id, granularity, ops):
        profile = ProfileData(profile_id, write_granularity_ms=granularity)
        for offset, slot, type_id, fid, counts in ops:
            profile.add(offset, slot, type_id, fid, counts, aggregate_sum)
        blob = serialize_profile(profile)
        back = deserialize_profile(blob)
        assert back.profile_id == profile.profile_id
        assert back.write_granularity_ms == profile.write_granularity_ms
        assert [slice_snapshot(s) for s in back.slices] == [
            slice_snapshot(s) for s in profile.slices
        ]
        assert serialize_profile(back) == blob
        # Logical memory accounting is representation-stable.
        assert back.memory_bytes() == profile.memory_bytes()


# ----------------------------------------------------------------------
# Backward compatibility: v1 (dict-era) bytes
# ----------------------------------------------------------------------


class TestV1Compatibility:
    @settings(max_examples=120, deadline=None)
    @given(slices())
    def test_v1_bytes_decode_losslessly(self, profile_slice):
        blob = ProfileCodec.encode_slice_v1(profile_slice)
        decoded = ProfileCodec.decode_slice(blob)
        assert slice_snapshot(decoded) == slice_snapshot(profile_slice)

    @settings(max_examples=60, deadline=None)
    @given(slices())
    def test_v1_decodes_into_array_native_groups(self, profile_slice):
        decoded = ProfileCodec.decode_slice(
            ProfileCodec.encode_slice_v1(profile_slice)
        )
        for _, instance_set in decoded.slots_items():
            for _, group in instance_set.groups_items():
                if all(_fits_int64(stat) for stat in group.iter_stats()):
                    assert group.is_columnar

    @settings(max_examples=60, deadline=None)
    @given(slices())
    def test_v1_and_v2_decode_identically(self, profile_slice):
        via_v1 = ProfileCodec.decode_slice(
            ProfileCodec.encode_slice_v1(profile_slice)
        )
        via_v2 = ProfileCodec.decode_slice(
            ProfileCodec.encode_slice(profile_slice)
        )
        assert slice_snapshot(via_v1) == slice_snapshot(via_v2)
        assert via_v1.memory_bytes() == via_v2.memory_bytes()


# ----------------------------------------------------------------------
# The raw (zero-copy) sections
# ----------------------------------------------------------------------


def _first_group_encoding(blob: bytes) -> int:
    """Parse a v2 slice body down to its first type section's encoding."""
    pos = 0
    magic, pos = read_varint(blob, pos)
    assert magic == SLICE_V2_MAGIC
    _, pos = read_varint(blob, pos)  # start_ms
    _, pos = read_varint(blob, pos)  # end_ms
    n_slots, pos = read_varint(blob, pos)
    assert n_slots >= 1
    _, pos = read_varint(blob, pos)  # slot_id
    n_types, pos = read_varint(blob, pos)
    assert n_types >= 1
    _, pos = read_varint(blob, pos)  # type_id
    encoding, pos = read_varint(blob, pos)
    return encoding


def _uniform_slice(n_rows: int, width: int) -> Slice:
    profile_slice = Slice(0, 1000)
    stats = [
        FeatureStat(fid, [fid * 7 + j for j in range(width)], 500)
        for fid in range(n_rows)
    ]
    profile_slice.ensure_slot(1).adopt_group(2, ColumnGroup.from_stats(stats))
    profile_slice.mark_mutated()
    return profile_slice


class TestRawColumns:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(RAW_COLUMN_MIN_ROWS, 3 * RAW_COLUMN_MIN_ROWS),
        st.integers(0, 4),
    )
    def test_large_groups_use_raw_sections(self, n_rows, width):
        blob = ProfileCodec.encode_slice(_uniform_slice(n_rows, width))
        assert _first_group_encoding(blob) == 1  # _ENC_RAW
        decoded = ProfileCodec.decode_slice(blob)
        assert slice_snapshot(decoded) == slice_snapshot(
            _uniform_slice(n_rows, width)
        )

    def test_small_groups_stay_on_varints(self):
        blob = ProfileCodec.encode_slice(
            _uniform_slice(RAW_COLUMN_MIN_ROWS - 1, 3)
        )
        assert _first_group_encoding(blob) == 0  # _ENC_VARINT

    def test_truncated_raw_column_rejected(self):
        blob = ProfileCodec.encode_slice(_uniform_slice(32, 3))
        for cut in (len(blob) - 1, len(blob) - 9, len(blob) // 2):
            with pytest.raises(SerializationError):
                ProfileCodec.decode_slice(blob[:cut])

    def test_duplicate_fid_in_raw_section_rejected(self):
        profile_slice = _uniform_slice(32, 1)
        group = profile_slice.instance_set(1).column_group(2)
        group.fids[1] = group.fids[0]  # corrupt in place, then re-encode
        blob = ProfileCodec.encode_slice(profile_slice)
        with pytest.raises(SerializationError):
            ProfileCodec.decode_slice(blob)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_ragged_widths_roundtrip(self, data):
        """Non-uniform native widths survive the widths column."""
        n_rows = data.draw(st.integers(RAW_COLUMN_MIN_ROWS, 40))
        widths = data.draw(
            st.lists(
                st.integers(0, 4), min_size=n_rows, max_size=n_rows
            )
        )
        profile_slice = Slice(0, 1000)
        stats = [
            FeatureStat(fid, list(range(width)), 10 + fid)
            for fid, width in enumerate(widths)
        ]
        profile_slice.ensure_slot(1).adopt_group(
            3, ColumnGroup.from_stats(stats)
        )
        profile_slice.mark_mutated()
        blob = ProfileCodec.encode_slice(profile_slice)
        decoded = ProfileCodec.decode_slice(blob)
        assert slice_snapshot(decoded) == slice_snapshot(profile_slice)
        assert ProfileCodec.encode_slice(decoded) == blob
