"""Tests for the exception hierarchy and error payloads."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.ConfigError,
            errors.TableNotFoundError,
            errors.ProfileNotFoundError,
            errors.InvalidTimeRangeError,
            errors.InvalidQueryError,
            errors.SerializationError,
            errors.CompressionError,
            errors.StorageError,
            errors.QuotaExceededError,
            errors.RPCError,
        ],
    )
    def test_everything_derives_from_ips_error(self, subclass):
        assert issubclass(subclass, errors.IPSError)

    def test_version_conflict_is_storage_error(self):
        assert issubclass(errors.VersionConflictError, errors.StorageError)

    @pytest.mark.parametrize(
        "transport_error",
        [
            errors.RPCTimeoutError,
            errors.NodeUnavailableError,
            errors.NoHealthyNodeError,
            errors.RegionUnavailableError,
        ],
    )
    def test_transport_errors_are_rpc_errors(self, transport_error):
        assert issubclass(transport_error, errors.RPCError)

    def test_catching_the_family(self):
        with pytest.raises(errors.IPSError):
            raise errors.QuotaExceededError("x", 10.0)


class TestPayloads:
    def test_table_not_found_carries_table(self):
        error = errors.TableNotFoundError("feed")
        assert error.table == "feed"
        assert "feed" in str(error)

    def test_profile_not_found_carries_id(self):
        error = errors.ProfileNotFoundError(42)
        assert error.profile_id == 42

    def test_version_conflict_carries_versions(self):
        error = errors.VersionConflictError(b"k", held=3, current=5)
        assert (error.held, error.current, error.key) == (3, 5, b"k")
        assert "3" in str(error) and "5" in str(error)

    def test_quota_error_carries_caller_and_rate(self):
        error = errors.QuotaExceededError("ads-team", 250.0)
        assert error.caller == "ads-team"
        assert error.quota == 250.0

    def test_node_unavailable_carries_node(self):
        error = errors.NodeUnavailableError("node-7")
        assert error.node_id == "node-7"

    def test_region_unavailable_carries_region(self):
        error = errors.RegionUnavailableError("eu")
        assert error.region == "eu"

    def test_circuit_open_carries_node(self):
        error = errors.CircuitOpenError("node-3")
        assert error.node_id == "node-3"
        assert "node-3" in str(error)

    def test_deadline_exceeded_carries_operation_and_budget(self):
        error = errors.DeadlineExceededError("multi_get_topk", 250.0)
        assert error.operation == "multi_get_topk"
        assert error.budget_ms == 250.0


class TestRetryability:
    """The shared taxonomy every retry loop consults (client, batch path)."""

    def test_transient_errors_are_retryable(self):
        for error in (
            errors.NodeUnavailableError("n0"),
            errors.RPCTimeoutError("slow"),
            errors.StorageError("blip"),
            errors.CircuitOpenError("n0"),
        ):
            assert errors.is_retryable(error), error

    def test_region_fatal_errors_are_not_retryable(self):
        for error in (
            errors.RegionUnavailableError("eu"),
            errors.NoHealthyNodeError("none left"),
            errors.QuotaExceededError("ads", 10.0),
        ):
            assert not errors.is_retryable(error), error
            assert errors.is_region_fatal(error), error

    def test_deadline_exceeded_is_never_retryable(self):
        # Even though it subclasses RPCError, retrying a request whose
        # budget is spent only multiplies load during incidents.
        assert not errors.is_retryable(
            errors.DeadlineExceededError("get", 100.0)
        )

    def test_custom_retryable_mixin(self):
        class TransientFlake(errors.IPSError, errors.RetryableError):
            pass

        assert errors.is_retryable(TransientFlake("flaky"))
        assert not errors.is_retryable(errors.IPSError("generic"))

    def test_plain_exceptions_are_not_retryable(self):
        assert not errors.is_retryable(ValueError("nope"))
