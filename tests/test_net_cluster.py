"""Real worker processes: durability, churn, election, and failover.

Everything here spawns actual ``repro.net.worker`` OS processes behind
real TCP sockets — the point of the exercise.  The suite covers the two
shutdown contracts (SIGTERM must lose **zero acked writes** via the
ordered graceful sequence; SIGKILL must lose zero acked writes via WAL
replay on restart), membership churn (join/leave rebalance, heartbeat-
timeout eviction, deterministic master re-election), and the chaos
engine's SIGKILL-mid-traffic failover with the resilient client.

Workers start with ``IPS_KERNEL_DISABLE_NUMPY=1`` purely to keep
subprocess cold-start cheap; nothing here exercises the columnar path.
Profile timestamps are real wall-clock because the workers run on
:class:`~repro.clock.SystemClock` — ancient timestamps would age out
under the maintenance loop's truncation bands.
"""

from __future__ import annotations

import time

import pytest

from repro.clock import SystemClock
from repro.chaos.engine import ChaosEvent
from repro.chaos.process import ProcessChaosEngine
from repro.cluster.resilience import ResilienceConfig
from repro.core.timerange import TimeRange
from repro.monitoring import fleet_summary, format_fleet_report
from repro.net.cluster import ProcessCluster

WORKER_ENV = {"IPS_KERNEL_DISABLE_NUMPY": "1"}
#: One maintenance interval (100ms) plus generous scheduling slack.
MERGE_WAIT_S = 0.4


@pytest.fixture
def make_cluster(tmp_path, process_tracker):
    clusters = []

    def _make(num_workers: int, **kwargs) -> ProcessCluster:
        kwargs.setdefault("worker_env", WORKER_ENV)
        cluster = ProcessCluster(
            num_workers, tmp_path / f"cluster{len(clusters)}", **kwargs
        )
        process_tracker.add(cluster)
        clusters.append(cluster)
        cluster.wait_for_members(num_workers)
        return cluster

    yield _make
    for cluster in clusters:
        cluster.shutdown()


def _now_ms() -> int:
    return int(SystemClock().now_ms())


def _window(now_ms: int) -> TimeRange:
    return TimeRange.absolute(now_ms - 60_000, now_ms + 60_000)


def _write(client, profile_id: int, now_ms: int, count: int = 1) -> None:
    client.add_profiles(
        profile_id, now_ms, 0, 1, [500 + profile_id % 7], [(count, 0, 0)]
    )


def _read_ok(client, profile_ids, window) -> dict[int, list]:
    """profile_id -> rows for every key that read back non-empty."""
    outcome = client.multi_get_topk(list(profile_ids), 0, 1, window, k=10)
    return {
        result.profile_id: result.value
        for result in outcome.results
        if result.ok and result.value
    }


def _poll(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {what}")


class TestEndToEnd:
    def test_writes_read_back_across_real_processes(self, make_cluster):
        cluster = make_cluster(2)
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(40):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        served = _read_ok(client, range(40), _window(now))
        assert sorted(served) == list(range(40))
        stats = cluster.fleet_stats()
        assert sorted(stats) == ["w00", "w01"]
        # Distinct pids: these are real processes, not threads.
        assert stats["w00"]["pid"] != stats["w01"]["pid"]
        # The ring actually spread the writes across both processes.
        assert stats["w00"]["writes"] > 0 and stats["w01"]["writes"] > 0
        summary = fleet_summary(stats)
        assert summary["workers"] == 2
        assert summary["writes"] == 40
        report = format_fleet_report(stats)
        assert "2 worker processes" in report and "w01" in report


class TestShutdownDurability:
    def test_sigterm_loses_zero_acked_writes(self, make_cluster):
        """Satellite contract: graceful = checkpoint + WAL flush, then exit."""
        cluster = make_cluster(1)
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(30):
            _write(client, profile_id, now, count=profile_id + 1)
        # No merge wait on purpose: the acked writes may still be sitting
        # in the isolation write table when SIGTERM lands.
        assert cluster.terminate_worker("w00") == 0  # clean exit
        cluster.restart_worker("w00")
        cluster.wait_for_members(1)
        served = _read_ok(cluster.client(), range(30), _window(now))
        assert sorted(served) == list(range(30))
        # Counts too — the writes survived whole, not just the keys.
        assert all(
            rows[0].counts[0] == profile_id + 1
            for profile_id, rows in served.items()
        )

    def test_sigkill_recovers_acked_writes_from_wal(self, make_cluster):
        cluster = make_cluster(1)
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(20):
            _write(client, profile_id, now, count=7)
        registry = cluster.registry_server.registry
        old_port = registry.members()["members"][0]["port"]
        cluster.kill_worker("w00")  # no flush, no checkpoint
        cluster.restart_worker("w00")
        # SIGKILL leaves the stale registration in place until the TTL
        # fires; wait for the *new* process's registration (fresh port),
        # not merely for a member row to exist.
        _poll(
            lambda: any(
                m["port"] != old_port
                for m in registry.members()["members"]
            ),
            15.0, "the restarted worker to re-register",
        )
        served = _read_ok(cluster.client(), range(20), _window(now))
        assert sorted(served) == list(range(20))
        assert all(rows[0].counts[0] == 7 for rows in served.values())


class TestMembershipChurn:
    def test_join_expands_the_ring(self, make_cluster):
        cluster = make_cluster(1)
        region = cluster.region(refresh_interval_ms=0.0)
        assert set(region.nodes) == {"w00"}
        cluster.spawn_worker("w01")
        cluster.wait_for_members(2)
        _poll(
            lambda: region.refresh() or set(region.nodes) == {"w00", "w01"},
            5.0, "region to see the joined worker",
        )
        owners = {region.node_for(pid).node_id for pid in range(300)}
        assert owners == {"w00", "w01"}
        # The grown topology serves writes and reads end to end.
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(20):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        assert sorted(_read_ok(client, range(20), _window(now))) == list(range(20))

    def test_graceful_leave_deregisters_immediately(self, make_cluster):
        cluster = make_cluster(2, ttl_ms=30_000.0)  # TTL can't save this test
        assert cluster.terminate_worker("w01") == 0
        # Deregistration is part of the graceful sequence — membership
        # shrinks right away, long before any heartbeat TTL could fire.
        members = cluster.registry_server.registry.members()
        assert [m["node_id"] for m in members["members"]] == ["w00"]

    def test_heartbeat_timeout_evicts_killed_worker(self, make_cluster):
        cluster = make_cluster(2)  # ttl 1.5s, heartbeat 200ms
        registry = cluster.registry_server.registry
        cluster.kill_worker("w01")  # SIGKILL: no deregistration happens
        _poll(
            lambda: [m["node_id"] for m in registry.members()["members"]]
            == ["w00"],
            10.0, "TTL eviction of the killed worker",
        )
        assert registry.evictions >= 1
        # Traffic keeps flowing on the survivor via rerouting.
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(10):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        assert sorted(_read_ok(client, range(10), _window(now))) == list(range(10))

    def test_master_reelection_after_master_kill(self, make_cluster):
        cluster = make_cluster(3)
        registry = cluster.registry_server.registry
        assert registry.members()["master"] == "w00"
        cluster.kill_worker("w00")  # the master dies ungracefully
        _poll(
            lambda: registry.members()["master"] == "w01",
            10.0, "master re-election after the master died",
        )
        # Deterministic: the next-lowest live node id, on every observer.
        assert registry.master() == "w01"
        region = cluster.region()
        assert region.master == "w01"


class TestChaosFailover:
    def test_sigkill_mid_traffic_stays_under_one_percent_errors(
        self, make_cluster
    ):
        cluster = make_cluster(2)
        client = cluster.client(
            resilience=ResilienceConfig(deadline_ms=4_000.0)
        )
        now = _now_ms()
        for profile_id in range(60):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)

        chaos = ProcessChaosEngine(cluster)
        chaos.schedule(
            ChaosEvent(
                start_ms=300, duration_ms=1_200,
                kind="node_crash", target="w01",
            )
        )
        chaos.start()
        keys = errors = 0
        window = _window(now)
        while chaos.elapsed_ms < 1_800:
            chaos.tick()
            outcome = client.multi_get_topk(
                [k % 60 for k in range(keys, keys + 16)], 0, 1, window, k=5
            )
            for result in outcome.results:
                keys += 1
                if not result.ok:
                    errors += 1
        chaos.finish()  # restarts the victim
        assert chaos.fault_counts()["node_crash"] == 1
        assert keys > 0
        assert errors / keys < 0.01, f"{errors}/{keys} errors"
        cluster.wait_for_members(2)  # the restarted worker re-registers

    def test_other_fault_kinds_are_rejected(self, make_cluster):
        cluster = make_cluster(1)
        chaos = ProcessChaosEngine(cluster)
        with pytest.raises(ValueError, match="node_crash"):
            chaos.schedule(
                ChaosEvent(
                    start_ms=0, duration_ms=10,
                    kind="rpc_latency", target="w00", magnitude=5.0,
                )
            )
        with pytest.raises(ValueError, match="target"):
            chaos.schedule(
                ChaosEvent(
                    start_ms=0, duration_ms=10,
                    kind="node_crash", target=None,
                )
            )


def _converge(cluster: ProcessCluster, max_sweeps: int = 20) -> int:
    """Drain delta queues, then repair until two peer sweeps ship zero.

    ``repair_round`` round-robins over live peers, so one zero-byte round
    only proves the peer *polled that round* was in sync.  A sweep of
    ``live - 1`` rounds covers every peer, and two clean sweeps in a row
    (the background repair loop can interleave and skew the rotation)
    mean the fleet is converged.
    """
    cluster.wait_for_replication_drain(20.0)
    total = 0
    clean = 0
    for _ in range(max_sweeps):
        live = len(cluster.replication_stats())
        shipped = sum(
            sweep_stats.get("bytes", 0)
            for sweep_stats in cluster.repair_now(max(1, live - 1)).values()
        )
        total += shipped
        clean = clean + 1 if shipped == 0 else 0
        if clean >= 2:
            return total
    raise AssertionError(
        f"repair did not converge in {max_sweeps} sweeps ({total} bytes)"
    )


class TestReplicatedFailover:
    """``replication_factor=2``: §III-G stale-but-available over real processes.

    The roster ring (live members plus tombstones) places one primary and
    one replica per key; the live ring routes clients, so the failover
    successor of a dead primary *is* its replica and promotion is pure
    registry bookkeeping.  These tests pin the layers the failover bench
    exercises end to end: stable per-node data dirs, replica reads while
    the primary corpse is still cold, hinted handoff on rejoin, and
    anti-entropy bootstrap of a fresh joiner.
    """

    def test_restart_reuses_stable_data_dir(self, make_cluster):
        """Satellite contract: data dirs are keyed by node id, not spawn order."""
        cluster = make_cluster(2, replication_factor=2)
        client = cluster.client()
        now = _now_ms()
        for profile_id in range(20):
            _write(client, profile_id, now, count=3)
        registry = cluster.registry_server.registry
        old_port = {
            m["node_id"]: m["port"] for m in registry.members()["members"]
        }["w01"]
        cluster.kill_worker("w01")
        before = set(p.name for p in (cluster.data_root / "w01").iterdir())
        cluster.restart_worker("w01")
        _poll(
            lambda: any(
                m["node_id"] == "w01" and m["port"] != old_port
                for m in registry.members()["members"]
            ),
            15.0, "the restarted worker to re-register",
        )
        # The restart reopened the same dir — no second dir was minted and
        # the WAL/state files written by the first incarnation are intact.
        worker_dirs = sorted(
            p.name for p in cluster.data_root.iterdir()
            if p.is_dir() and p.name.startswith("w")
        )
        assert worker_dirs == ["w00", "w01"]
        after = set(p.name for p in (cluster.data_root / "w01").iterdir())
        assert before <= after
        served = _read_ok(cluster.client(), range(20), _window(now))
        assert sorted(served) == list(range(20))

    def test_add_worker_never_reuses_a_dead_workers_id(self, make_cluster):
        cluster = make_cluster(2)
        registry = cluster.registry_server.registry
        cluster.kill_worker("w01")
        # The corpse might still rejoin over its own data dir, so the
        # joiner must be allocated *past* it, never in its place.
        assert cluster.add_worker() == "w02"
        _poll(
            lambda: "w02" in [
                m["node_id"] for m in registry.members()["members"]
            ],
            10.0, "the joiner to register",
        )
        assert (cluster.data_root / "w01").is_dir()
        assert (cluster.data_root / "w02").is_dir()

    def test_replica_serves_victims_range_while_primary_dead(
        self, make_cluster
    ):
        """No restart, no repair: the replica alone must keep every key lit."""
        cluster = make_cluster(3, replication_factor=2)
        client = cluster.client(
            resilience=ResilienceConfig(deadline_ms=4_000.0)
        )
        now = _now_ms()
        for profile_id in range(40):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        _converge(cluster)
        registry = cluster.registry_server.registry
        promotions_before = registry.promotions
        cluster.kill_worker(cluster.primary_for(0))
        _poll(
            lambda: len(registry.members()["members"]) == 2,
            10.0, "TTL eviction of the dead primary",
        )
        served = _read_ok(client, range(40), _window(now))
        assert sorted(served) == list(range(40))
        # Eviction with live replicas is a promotion, not an outage.
        assert registry.promotions > promotions_before

    def test_hinted_handoff_drains_into_the_rejoining_worker(
        self, make_cluster
    ):
        cluster = make_cluster(2, replication_factor=2)
        client = cluster.client(
            resilience=ResilienceConfig(deadline_ms=4_000.0)
        )
        registry = cluster.registry_server.registry
        cluster.kill_worker("w01")
        _poll(
            lambda: [m["node_id"] for m in registry.members()["members"]]
            == ["w00"],
            10.0, "TTL eviction of the killed worker",
        )
        time.sleep(MERGE_WAIT_S)  # survivor's roster view catches up
        now = _now_ms()
        for profile_id in range(10):
            _write(client, profile_id, now)
        # The dead peer still owns the keys on the roster ring, so its
        # deltas queue as hints instead of being dropped.
        _poll(
            lambda: cluster.replication_stats()["w00"]["handoff_depth"] >= 10,
            10.0, "writes to queue as hints for the dead peer",
        )
        cluster.restart_worker("w01")
        cluster.wait_for_members(2)
        cluster.wait_for_replication_drain(20.0)

        def drained():
            stats = cluster.replication_stats()
            return (
                stats["w00"]["handoff_depth"] == 0
                and stats["w00"]["hints_drained"] >= 10
                and stats.get("w01", {}).get("applies", 0) >= 10
            )

        _poll(drained, 15.0, "hinted handoff to drain into the rejoiner")

    def test_join_then_crash_keeps_every_key_lit(self, make_cluster):
        """Anti-entropy bootstraps the joiner, so a crash right after a
        rebalance still leaves every range with a live data holder."""
        cluster = make_cluster(2, replication_factor=2)
        client = cluster.client(
            resilience=ResilienceConfig(deadline_ms=4_000.0)
        )
        now = _now_ms()
        for profile_id in range(40):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        _converge(cluster)
        joiner = cluster.add_worker()
        cluster.wait_for_members(3)
        time.sleep(MERGE_WAIT_S)  # membership reaches every worker
        _converge(cluster)  # bootstrap the joiner's share of moved ranges
        installs = cluster.replication_stats()[joiner]["installs"]
        assert installs > 0, "repair never bootstrapped the joiner"
        # Mid-churn traffic keeps flowing and replicating.
        for profile_id in range(40, 50):
            _write(client, profile_id, now)
        time.sleep(MERGE_WAIT_S)
        _converge(cluster)
        registry = cluster.registry_server.registry
        cluster.kill_worker("w00")
        _poll(
            lambda: len(registry.members()["members"]) == 2,
            10.0, "TTL eviction of the crashed worker",
        )
        served = _read_ok(client, range(50), _window(now))
        assert sorted(served) == list(range(50))
