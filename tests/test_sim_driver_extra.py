"""Extra coverage for the cluster simulator's secondary paths."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.sim import ClusterSimulator, ServiceProfile
from repro.sim.driver import SimulationResult, StepMetrics
from repro.workload import DiurnalTrafficModel, spring_festival_curve


@pytest.fixture(scope="module")
def small_simulator():
    return ClusterSimulator(num_nodes=100, seed=3, samples_per_step=800)


@pytest.fixture(scope="module")
def small_reads():
    return DiurnalTrafficModel(base_qps=3e6, peak_qps=4e6, seed=3)


class TestClientSideMode:
    def test_client_side_adds_network_cost(self, small_simulator, small_reads):
        server = small_simulator.simulate_queries(
            small_reads, 0, 6 * MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR,
            client_side=False,
        )
        client = small_simulator.simulate_queries(
            small_reads, 0, 6 * MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR,
            client_side=True,
        )
        # Every client-side p50 carries the ~3 ms network base on top.
        assert client.mean("p50_ms") > server.mean("p50_ms") + 2.5

    def test_client_side_writes(self, small_simulator, small_reads):
        writes = DiurnalTrafficModel(base_qps=3e5, peak_qps=4e5, seed=3)
        result = small_simulator.simulate_writes(
            writes, 0, 4 * MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR,
            isolation=True, client_side=True,
        )
        assert result.mean("p50_ms") > 3.0


class TestSimulationResult:
    def _result(self):
        result = SimulationResult()
        for index in range(4):
            result.steps.append(
                StepMetrics(
                    time_ms=index * 1000,
                    offered_qps=100.0 * (index + 1),
                    utilization=0.1 * index,
                    p50_ms=1.0,
                    p99_ms=float(index),
                    mean_ms=1.5,
                    error_rate=0.0,
                    hit_ratio=0.9,
                    memory_ratio=0.8,
                )
            )
        return result

    def test_series_helpers(self):
        result = self._result()
        assert result.series("offered_qps") == [
            (0, 100.0), (1000, 200.0), (2000, 300.0), (3000, 400.0)
        ]
        assert result.peak("offered_qps") == 400.0
        assert result.trough("offered_qps") == 100.0
        assert result.mean("offered_qps") == 250.0
        assert result.peak("p99_ms") == 3.0


class TestServiceProfile:
    def test_from_calibration_overrides(self):
        from repro.sim import calibrate_service_times

        calibration = calibrate_service_times(repeats=5)
        profile = ServiceProfile.from_calibration(
            calibration, node_capacity_qps=99_999.0
        )
        assert profile.node_capacity_qps == 99_999.0
        assert profile.miss_penalty_ms == calibration.miss_penalty_ms

    def test_defaults_match_paper_anchors(self):
        profile = ServiceProfile()
        assert profile.server_hit_p50_ms == 1.0
        assert profile.network_base_ms == 3.0
        assert profile.write_p50_ms == 0.5
        assert profile.cache_hit_ratio > 0.9


class TestWorkloadEdgeCases:
    def test_write_curve_without_read_model_uses_default_utilisation(
        self, small_simulator
    ):
        writes = DiurnalTrafficModel(base_qps=3e5, peak_qps=4e5, seed=1)
        result = small_simulator.simulate_writes(
            writes, 0, 4 * MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR,
            isolation=False, read_traffic_model=None,
        )
        # Contention still applies through the default read utilisation.
        assert result.mean("p99_ms") > result.mean("p50_ms")

    def test_memory_band_holds_over_long_horizon(self, small_simulator):
        reads = spring_festival_curve(read_traffic=True, seed=9)
        result = small_simulator.simulate_queries(
            reads, 0, MILLIS_PER_DAY, MILLIS_PER_HOUR
        )
        assert 0.78 <= result.trough("memory_ratio")
        assert result.peak("memory_ratio") <= 0.87
