"""Tests for feature assembly (training-serving skew avoidance, §I)."""

import pytest

from repro.assembly import AssembledFeatures, FeatureAssembler, FeatureSpec
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.errors import ConfigError
from repro.ingest import Topic

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def setup():
    config = TableConfig(
        name="feed", attributes=("impression", "click", "like", "share")
    )
    cluster = IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))
    client = cluster.client("ranker")
    client.add_profile(7, NOW, 1, 0, 10, {"click": 5, "impression": 9})
    client.add_profile(7, NOW, 1, 0, 20, {"click": 2, "share": 1})
    client.add_profile(7, NOW - 2 * MILLIS_PER_HOUR, 1, 0, 30, {"click": 7})
    cluster.run_background_cycle()
    return cluster, client


SPECS = [
    FeatureSpec(name="clicks_24h", slot=1, window_ms=MILLIS_PER_DAY,
                type_id=0, attribute="click", k=4),
    FeatureSpec(name="hot_now", slot=1, window_ms=6 * MILLIS_PER_HOUR,
                type_id=0, kind="decay", half_life_ms=MILLIS_PER_HOUR,
                attribute="click", k=2),
    FeatureSpec(name="engagement", slot=1, window_ms=MILLIS_PER_DAY,
                type_id=0, weights={"share": 5.0, "click": 1.0}, k=2),
]


class TestSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            FeatureSpec(name="", slot=1, window_ms=1000)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            FeatureSpec(name="x", slot=1, window_ms=1000, k=0)

    def test_rejects_bad_kind(self):
        with pytest.raises(ConfigError):
            FeatureSpec(name="x", slot=1, window_ms=1000, kind="magic")

    def test_rejects_weights_on_decay(self):
        with pytest.raises(ConfigError):
            FeatureSpec(name="x", slot=1, window_ms=1000, kind="decay",
                        weights={"click": 1.0})

    def test_assembler_rejects_duplicate_names(self, setup):
        _, client = setup
        spec = FeatureSpec(name="a", slot=1, window_ms=1000)
        with pytest.raises(ConfigError):
            FeatureAssembler(client, [spec, spec], ("click",))

    def test_assembler_rejects_unknown_attribute(self, setup):
        _, client = setup
        spec = FeatureSpec(name="a", slot=1, window_ms=1000, attribute="bogus")
        with pytest.raises(ConfigError):
            FeatureAssembler(client, [spec], ("click",))

    def test_assembler_requires_specs(self, setup):
        _, client = setup
        with pytest.raises(ConfigError):
            FeatureAssembler(client, [], ("click",))


class TestAssembly:
    def test_fixed_width_vector(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        record = assembler.assemble(7, NOW)
        expected_width = sum(spec.width for spec in SPECS)
        assert assembler.vector_width == expected_width
        assert len(record.vector()) == expected_width

    def test_padding_for_sparse_users(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        empty_user = assembler.assemble(999, NOW)
        assert len(empty_user.vector()) == assembler.vector_width
        assert all(value == 0 for value in empty_user.vector())

    def test_topk_values_use_named_attribute(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        record = assembler.assemble(7, NOW)
        clicks = dict(record.features["clicks_24h"])
        assert clicks[30] == 7  # click counter, not totals.
        assert clicks[10] == 5

    def test_weighted_spec_ranks_by_weights(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        record = assembler.assemble(7, NOW)
        engagement = record.features["engagement"]
        # fid 30: 7 clicks = 7; fid 20: 1 share x5 + 2 clicks = 7 (tie,
        # broken by recency toward 20); fid 10: 5 clicks = 5 loses.
        assert {engagement[0][0], engagement[1][0]} == {20, 30}
        assert engagement[0][0] == 20  # Newer timestamp wins the tie.

    def test_decay_spec_prefers_recent(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        record = assembler.assemble(7, NOW)
        hot = record.features["hot_now"]
        assert hot[0][0] in (10, 20)  # The "now" writes beat the 2h-old 7.

    def test_deterministic_across_calls(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        first = assembler.assemble(7, NOW)
        second = assembler.assemble(7, NOW)
        assert first.vector() == second.vector()


class TestTrainingSkewAvoidance:
    def test_training_topic_receives_identical_record(self, setup):
        cluster, client = setup
        topic = Topic("training")
        assembler = FeatureAssembler(
            client, SPECS, cluster.config.attributes, training_topic=topic
        )
        served = assembler.assemble(7, NOW)
        messages = topic.poll("trainer")
        assert len(messages) == 1
        trained: AssembledFeatures = messages[0].value
        # The exact same object/record: serving and training cannot skew.
        assert trained is served
        assert trained.vector() == served.vector()
        assert assembler.stats.training_records_published == 1

    def test_no_topic_no_publication(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        assembler.assemble(7, NOW)
        assert assembler.stats.training_records_published == 0

    def test_stats_count_specs(self, setup):
        cluster, client = setup
        assembler = FeatureAssembler(client, SPECS, cluster.config.attributes)
        assembler.assemble(7, NOW)
        assembler.assemble(8, NOW)
        assert assembler.stats.requests == 2
        assert assembler.stats.specs_evaluated == 2 * len(SPECS)
