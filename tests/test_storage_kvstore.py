"""Tests for the versioned KV store and failure injection."""

import threading

import pytest

from repro.errors import StorageError, VersionConflictError
from repro.storage import FailureInjector, InMemoryKVStore


class TestPlainAPI:
    def test_set_get_roundtrip(self):
        store = InMemoryKVStore()
        store.set(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing_is_none(self):
        assert InMemoryKVStore().get(b"nope") is None

    def test_overwrite(self):
        store = InMemoryKVStore()
        store.set(b"k", b"v1")
        store.set(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self):
        store = InMemoryKVStore()
        store.set(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        store.delete(b"k")  # Deleting absent key is fine.

    def test_len_contains_and_bytes(self):
        store = InMemoryKVStore()
        store.set(b"a", b"12345")
        store.set(b"b", b"1")
        assert len(store) == 2
        assert b"a" in store
        assert store.total_value_bytes() == 6

    def test_read_write_counters(self):
        store = InMemoryKVStore()
        store.set(b"a", b"1")
        store.get(b"a")
        store.get(b"b")
        assert store.write_count == 1
        assert store.read_count == 2


class TestVersionedAPI:
    def test_versions_start_at_one_and_increment(self):
        store = InMemoryKVStore()
        store.set(b"k", b"v1")
        assert store.xget(b"k").version == 1
        store.set(b"k", b"v2")
        assert store.xget(b"k").version == 2

    def test_xset_insert_requires_absent_key(self):
        store = InMemoryKVStore()
        version = store.xset(b"k", b"v", held_version=None)
        assert version == 1
        with pytest.raises(VersionConflictError):
            store.xset(b"k", b"v2", held_version=None)

    def test_xset_update_requires_current_version(self):
        store = InMemoryKVStore()
        version = store.xset(b"k", b"v1", None)
        new_version = store.xset(b"k", b"v2", version)
        assert new_version == version + 1

    def test_stale_version_conflicts(self):
        """The Fig. 14 fence: losing a race forces a reload."""
        store = InMemoryKVStore()
        version = store.xset(b"k", b"v1", None)
        store.xset(b"k", b"v2", version)  # Someone else updated.
        with pytest.raises(VersionConflictError) as exc_info:
            store.xset(b"k", b"v3", version)
        assert exc_info.value.held == version
        assert exc_info.value.current == version + 1
        # The store still has the winner's value.
        assert store.get(b"k") == b"v2"

    def test_xget_missing_is_none(self):
        assert InMemoryKVStore().xget(b"nope") is None

    def test_concurrent_xset_exactly_one_winner_per_round(self):
        store = InMemoryKVStore()
        store.xset(b"k", b"v0", None)
        wins = []

        def contender(name):
            current = store.xget(b"k")
            try:
                store.xset(b"k", name.encode(), current.version)
                wins.append(name)
            except VersionConflictError:
                pass

        threads = [
            threading.Thread(target=contender, args=(f"t{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) >= 1
        # Version advanced exactly once per winner.
        assert store.xget(b"k").version == 1 + len(wins)


class TestFailureInjection:
    def test_forced_failures_raise(self):
        injector = FailureInjector()
        store = InMemoryKVStore(failure_injector=injector)
        injector.fail_next(2)
        with pytest.raises(StorageError):
            store.get(b"k")
        with pytest.raises(StorageError):
            store.set(b"k", b"v")
        store.set(b"k", b"v")  # Third op succeeds.

    def test_random_failure_rate(self):
        injector = FailureInjector(failure_rate=1.0, seed=1)
        store = InMemoryKVStore(failure_injector=injector)
        with pytest.raises(StorageError):
            store.get(b"k")

    def test_zero_rate_never_fails(self):
        injector = FailureInjector(failure_rate=0.0)
        store = InMemoryKVStore(failure_injector=injector)
        for _ in range(100):
            store.set(b"k", b"v")

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            FailureInjector(failure_rate=1.5)
