"""Tests for the windowed impression/action/feature stream join."""

import pytest

from repro.ingest.events import ActionEvent, FeatureEvent, ImpressionEvent
from repro.ingest.join import InstanceJoiner


def impression(request_id="r1", timestamp=1000, user=1, item=10):
    return ImpressionEvent(request_id, user, item, timestamp)


def action(request_id="r1", timestamp=2000, name="click", value=1):
    return ActionEvent(request_id, 1, 10, timestamp, name, value)


def feature(request_id="r1", timestamp=1000, signals=None):
    return FeatureEvent(request_id, 10, timestamp, signals or {"slot": 3})


class TestJoining:
    def test_positive_sample_joins_all_parts(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression())
        joiner.on_action(action())
        joiner.on_feature(feature())
        records = joiner.advance_watermark(10_000)
        assert len(records) == 1
        record = records[0]
        assert record.is_positive
        assert record.actions == {"click": 1}
        assert record.signals == {"slot": 3}
        assert record.user_id == 1 and record.item_id == 10

    def test_negative_sample_without_actions(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression())
        records = joiner.advance_watermark(10_000)
        assert len(records) == 1
        assert not records[0].is_positive

    def test_actions_accumulate(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression())
        joiner.on_action(action(name="click"))
        joiner.on_action(action(name="click"))
        joiner.on_action(action(name="like"))
        records = joiner.advance_watermark(10_000)
        assert records[0].actions == {"click": 2, "like": 1}

    def test_out_of_order_action_before_impression(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_action(action(timestamp=900))
        joiner.on_impression(impression(timestamp=1000))
        records = joiner.advance_watermark(10_000)
        assert len(records) == 1
        assert records[0].is_positive

    def test_orphan_actions_dropped(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_action(action(request_id="ghost"))
        records = joiner.advance_watermark(10_000)
        assert records == []
        assert joiner.stats.orphans_dropped == 1

    def test_window_not_expired_stays_pending(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression(timestamp=1000))
        assert joiner.advance_watermark(3000) == []
        assert joiner.pending_count == 1

    def test_late_action_within_window_joins(self):
        joiner = InstanceJoiner(window_ms=60_000)
        joiner.on_impression(impression(timestamp=1000))
        joiner.on_action(action(timestamp=50_000))
        records = joiner.advance_watermark(61_001)
        assert records[0].is_positive
        assert records[0].timestamp_ms == 50_000

    def test_separate_requests_do_not_mix(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression(request_id="a", user=1))
        joiner.on_impression(impression(request_id="b", user=2))
        joiner.on_action(action(request_id="a"))
        records = {r.request_id: r for r in joiner.advance_watermark(10_000)}
        assert records["a"].is_positive
        assert not records["b"].is_positive

    def test_flush_emits_everything(self):
        joiner = InstanceJoiner(window_ms=1_000_000)
        joiner.on_impression(impression(request_id="a"))
        joiner.on_impression(impression(request_id="b"))
        assert len(joiner.flush()) == 2
        assert joiner.pending_count == 0

    def test_stats_track_events(self):
        joiner = InstanceJoiner(window_ms=5000)
        joiner.on_impression(impression())
        joiner.on_action(action())
        joiner.on_feature(feature())
        joiner.advance_watermark(10_000)
        assert joiner.stats.impressions == 1
        assert joiner.stats.actions == 1
        assert joiner.stats.features == 1
        assert joiner.stats.emitted == 1
        assert joiner.stats.positives == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            InstanceJoiner(window_ms=0)
