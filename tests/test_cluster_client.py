"""Tests for the unified IPS client over a single-region cluster."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import NoHealthyNodeError

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    clock = SimulatedClock(NOW)
    config = TableConfig(name="t", attributes=("click", "like"))
    return IPSCluster(config, num_nodes=4, clock=clock)


class TestRoutingAndBasics:
    def test_write_then_read_roundtrip(self, cluster):
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 3})
        cluster.run_background_cycle()
        results = client.get_profile_topk(7, 1, 1, WINDOW)
        assert results[0].fid == 42

    def test_profiles_shard_across_nodes(self, cluster):
        client = cluster.client("app")
        for profile_id in range(200):
            client.add_profile(profile_id, NOW, 1, 1, 1, {"click": 1})
        cluster.run_background_cycle()
        populated = sum(
            1 for node in cluster.region.nodes.values()
            if node.cache.resident_count() > 0
        )
        assert populated == 4

    def test_routing_is_sticky(self, cluster):
        """The same profile always lands on the same node."""
        client = cluster.client("app")
        for _ in range(5):
            client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        cluster.run_background_cycle()
        holders = [
            node.node_id for node in cluster.region.nodes.values()
            if node.cache.get_resident(7) is not None
        ]
        assert len(holders) == 1

    def test_filter_and_decay_roundtrip(self, cluster):
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 1, {"click": 1})
        client.add_profile(7, NOW, 1, 1, 2, {"click": 5})
        cluster.run_background_cycle()
        filtered = client.get_profile_filter(
            7, 1, 1, WINDOW, lambda stat: stat.count_at(0) > 2
        )
        assert [r.fid for r in filtered] == [2]
        decayed = client.get_profile_decay(
            7, 1, 1, WINDOW, "exponential", MILLIS_PER_DAY
        )
        assert len(decayed) == 2

    def test_batched_write(self, cluster):
        client = cluster.client("app")
        client.add_profiles(7, NOW, 1, 1, [1, 2, 3], [{"click": 1}] * 3)
        cluster.run_background_cycle()
        assert len(client.get_profile_topk(7, 1, 1, WINDOW)) == 3

    def test_read_of_unknown_profile_is_empty(self, cluster):
        client = cluster.client("app")
        assert client.get_profile_topk(999, 1, 1, WINDOW) == []


class TestNodeFailureHandling:
    def test_reads_reroute_around_failed_node(self, cluster):
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        cluster.run_background_cycle()
        owner = cluster.region.node_for(7).node_id
        cluster.region.fail_node(owner)
        # The replacement node loads the profile from the shared KV store.
        results = client.get_profile_topk(7, 1, 1, WINDOW)
        assert results and results[0].fid == 42

    def test_recovery_restores_routing(self, cluster):
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        cluster.run_background_cycle()
        owner = cluster.region.node_for(7).node_id
        cluster.region.fail_node(owner)
        client.get_profile_topk(7, 1, 1, WINDOW)
        cluster.region.recover_node(owner)
        assert cluster.region.node_for(7).node_id == owner

    def test_all_nodes_failed_read_errors(self, cluster):
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        for node_id in list(cluster.region.nodes):
            cluster.region.fail_node(node_id)
        with pytest.raises(NoHealthyNodeError):
            client.get_profile_topk(7, 1, 1, WINDOW)
        assert client.stats.read_errors == 1

    def test_healthy_node_count(self, cluster):
        assert cluster.region.healthy_node_count == 4
        cluster.region.fail_node("local-node-0")
        assert cluster.region.healthy_node_count == 3


class TestStats:
    def test_error_rate_computation(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 1, 1, {"click": 1})
        client.get_profile_topk(1, 1, 1, WINDOW)
        assert client.stats.error_rate == 0.0
        assert client.stats.reads == 1
        assert client.stats.writes == 1

    def test_empty_stats_error_rate_zero(self, cluster):
        assert cluster.client("x").stats.error_rate == 0.0
