"""Replication primitives: deltas, logs, cursors, digests, placement.

Everything here is in-process — the two ``WorkerReplication`` peers are
wired together with loopback stub transports that call straight into the
other side's handlers, so delta shipping, hinted handoff and anti-entropy
repair are exercised without sockets or subprocesses (the real-process
failover lives in ``tests/test_net_cluster.py`` and
``benchmarks/bench_failover.py``).
"""

from __future__ import annotations

import pytest

from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.net import wire
from repro.net.replication import (
    SEQ_RESERVE_BLOCK,
    ReplicaApplier,
    ReplicationLog,
    WorkerReplication,
    _StateFile,
    block_digest,
    diff_blocks,
    digest_table,
    install_blocks,
)
from repro.net.wire import WriteDelta, write_delta_wire_bytes
from repro.net.worker import build_durable_node

NOW = 1_000_000
WINDOW = TimeRange.absolute(NOW - 10_000, NOW + 10_000)


def _delta(seq: int, profile_id: int = 7, fid: int = 101) -> WriteDelta:
    return WriteDelta(seq, profile_id, NOW, 0, 1, fid, (1, 0, 0))


class TestWriteDeltaCodec:
    def test_roundtrip_over_the_wire(self):
        delta = WriteDelta(12345, 1 << 40, NOW, 3, 2, 999, (4, -1, 2))
        out = bytearray()
        wire.encode_value(out, delta)
        decoded, pos = wire.decode_value(bytes(out), 0)
        assert pos == len(out)
        assert decoded == delta
        assert isinstance(decoded, WriteDelta)

    def test_wire_bytes_accounting_matches_encoding(self):
        delta = _delta(42)
        out = bytearray()
        wire.encode_value(out, delta)
        assert write_delta_wire_bytes(delta) == len(out)

    def test_delta_is_tens_of_bytes_not_a_profile_image(self):
        # The proportionality claim of the failover bench: replication
        # ships the logical write, never the (multi-KB) profile.
        assert write_delta_wire_bytes(_delta(1)) < 40


class TestReplicationLog:
    def test_sequences_are_monotonic_and_shared_across_peers(self):
        log = ReplicationLog("w0")
        first = log.append(["a", "b"], 1, NOW, 0, 1, 100, (1, 0, 0))
        second = log.append(["a"], 2, NOW, 0, 1, 101, (1, 0, 0))
        assert second == first + 1
        assert [d.seq for d in log.batch_for("a", 10)] == [first, second]
        assert [d.seq for d in log.batch_for("b", 10)] == [first]

    def test_batch_peeks_and_ack_pops(self):
        log = ReplicationLog("w0")
        for fid in range(5):
            log.append(["a"], 1, NOW, 0, 1, 100 + fid, (1, 0, 0))
        batch = log.batch_for("a", 3)
        assert len(batch) == 3
        assert log.pending("a") == 5  # peeked, not popped
        assert log.ack("a", batch[-1].seq) == 3
        assert log.pending("a") == 2

    def test_overflow_drops_oldest_and_counts(self):
        log = ReplicationLog("w0", max_queue=3)
        seqs = [
            log.append(["a"], 1, NOW, 0, 1, fid, (1, 0, 0))
            for fid in range(5)
        ]
        assert log.overflows == 2
        kept = [d.seq for d in log.batch_for("a", 10)]
        assert kept == seqs[2:]  # the two oldest fell off the front

    def test_crash_skips_a_seq_block_but_never_reuses(self, tmp_path):
        state = _StateFile(tmp_path / "replication.state")
        log = ReplicationLog("w0", state)
        seq = log.append(["a"], 1, NOW, 0, 1, 100, (1, 0, 0))
        assert seq == 1
        # "Crash": reopen from the persisted reservation.  The new
        # incarnation starts past the whole reserved block.
        reopened = ReplicationLog(
            "w0", _StateFile(tmp_path / "replication.state")
        )
        seq2 = reopened.append(["a"], 1, NOW, 0, 1, 101, (1, 0, 0))
        assert seq2 == SEQ_RESERVE_BLOCK + 1
        assert seq2 > seq


class TestReplicaApplier:
    def test_duplicates_below_cursor_are_skipped(self):
        applied = []
        applier = ReplicaApplier(applied.append)
        applier.apply("w1", [_delta(1), _delta(2)])
        applier.apply("w1", [_delta(1), _delta(2), _delta(3)])
        assert [d.seq for d in applied] == [1, 2, 3]
        assert applier.duplicates == 2
        assert applier.cursor("w1") == 3

    def test_origins_keep_independent_cursors(self):
        applier = ReplicaApplier(lambda d: None)
        applier.apply("w1", [_delta(5)])
        applier.apply("w2", [_delta(2)])
        assert applier.cursor("w1") == 5
        assert applier.cursor("w2") == 2

    def test_cursors_survive_reopen(self, tmp_path):
        path = tmp_path / "replication.state"
        applier = ReplicaApplier(lambda d: None, _StateFile(path))
        applier.apply("w1", [_delta(9)])
        reopened = ReplicaApplier(lambda d: None, _StateFile(path))
        assert reopened.cursor("w1") == 9
        reopened.apply("w1", [_delta(9)])
        assert reopened.duplicates == 1


class TestContentAddressedRepair:
    def _profile_with_writes(self, tmp_path, name, writes):
        node = build_durable_node(name, tmp_path / name)
        for profile_id, fid in writes:
            node.add_profile(profile_id, NOW, 0, 1, fid, (1, 0, 0))
        node.merge_write_table()
        return node

    def test_identical_profiles_ship_nothing(self, tmp_path):
        node = self._profile_with_writes(tmp_path, "a", [(1, 100), (1, 101)])
        profile = node._resident_profile(1)
        table = digest_table(profile)
        blobs, matched, matched_bytes = diff_blocks(profile, table)
        assert blobs == []
        assert matched == len(profile.slices)
        assert matched_bytes > 0

    def test_diff_ships_only_missing_blocks_and_install_converges(
        self, tmp_path
    ):
        primary = self._profile_with_writes(
            tmp_path, "a", [(1, 100), (1, 101)]
        )
        replica = self._profile_with_writes(tmp_path, "b", [(1, 100)])
        source = primary._resident_profile(1)
        target = replica._resident_profile(1)
        blobs, _, _ = diff_blocks(source, digest_table(target))
        assert blobs  # the fid-101 slice differs
        installed = install_blocks(target, blobs)
        assert installed == sum(len(b) for b in blobs)
        # Content addressing converged the replica: tables now identical
        # and a second diff ships nothing.
        assert digest_table(target) == digest_table(source)
        assert diff_blocks(source, digest_table(target))[0] == []

    def test_digest_is_content_addressed(self):
        assert block_digest(b"abc") == block_digest(b"abc")
        assert block_digest(b"abc") != block_digest(b"abd")


class _LoopbackTransport:
    """Calls straight into a peer ``WorkerReplication``'s handlers."""

    def __init__(self, peer: WorkerReplication, node_id: str) -> None:
        self._peer = peer
        self.node_id = node_id
        self.calls: list[str] = []

    def call(self, method, *args, **kwargs):
        self.calls.append(method)
        if method == "replicate_apply":
            return self._peer.apply_remote(*args)
        if method == "repair_digests":
            return self._peer.repair_digests(*args)
        if method == "repair_install":
            return self._peer.repair_install(*args)
        raise AssertionError(f"unexpected method {method}")

    def close(self) -> None:
        pass


def _snapshot(live: dict[str, bool], factor: int = 2) -> dict:
    return {
        "replication_factor": factor,
        "roster": [
            {"node_id": node_id, "host": "h", "port": 1, "live": alive}
            for node_id, alive in live.items()
        ],
    }


@pytest.fixture
def pair(tmp_path):
    """Two nodes whose replication layers ship to each other in-process."""
    node_a = build_durable_node("a0", tmp_path / "a0")
    node_b = build_durable_node("b0", tmp_path / "b0")
    repl: dict[str, WorkerReplication] = {}

    def factory_for(me):
        def factory(node_id, host, port):
            return _LoopbackTransport(repl[node_id], node_id)
        return factory

    repl["a0"] = WorkerReplication(
        node_a, factor=2, data_dir=tmp_path / "a0",
        transport_factory=factory_for("a0"),
    )
    repl["b0"] = WorkerReplication(
        node_b, factor=2, data_dir=tmp_path / "b0",
        transport_factory=factory_for("b0"),
    )
    snapshot = _snapshot({"a0": True, "b0": True})
    repl["a0"].update_membership(snapshot)
    repl["b0"].update_membership(snapshot)
    return repl


class TestWorkerReplication:
    def test_placement_uses_roster_not_liveness(self, pair):
        owners_before = {pid: pair["a0"].owners(pid) for pid in range(32)}
        # b0 dies: the roster keeps its tombstone, so placement is stable.
        pair["a0"].update_membership(
            _snapshot({"a0": True, "b0": False})
        )
        for pid in range(32):
            assert pair["a0"].owners(pid) == owners_before[pid]
        # But the acting primary skips the corpse.
        for pid in range(32):
            assert pair["a0"].acting_primary(pid) == "a0"

    def test_write_ships_to_replica_and_applies(self, pair):
        pair["a0"].on_client_write(1, NOW, 0, 1, 500, (3, 0, 0))
        assert pair["a0"].ship_once() == 1
        pair["b0"].node.merge_write_table()
        rows = pair["b0"].node.get_profile_topk(
            1, 0, 1, WINDOW, SortType.TOTAL, 10
        )
        assert [(row.fid, row.counts[0]) for row in rows] == [(500, 3)]
        assert pair["b0"].applier.applied == 1

    def test_reshipped_batch_is_idempotent(self, pair):
        pair["a0"].on_client_write(1, NOW, 0, 1, 500, (3, 0, 0))
        batch = pair["a0"].log.batch_for("b0", 10)
        pair["b0"].apply_remote("a0", batch)
        pair["b0"].apply_remote("a0", batch)  # retransmit after lost ack
        assert pair["a0"].ship_once() == 1   # origin still drains its queue
        pair["b0"].node.merge_write_table()
        rows = pair["b0"].node.get_profile_topk(
            1, 0, 1, WINDOW, SortType.TOTAL, 10
        )
        assert rows[0].counts[0] == 3  # applied once, not three times
        assert pair["b0"].applier.duplicates == 2

    def test_hinted_handoff_holds_then_drains(self, pair):
        dead = _snapshot({"a0": True, "b0": False})
        pair["a0"].update_membership(dead)
        pair["a0"].on_client_write(1, NOW, 0, 1, 600, (1, 0, 0))
        # Dead peer: nothing ships, the delta is hinted and waits.
        assert pair["a0"].ship_once() == 0
        assert pair["a0"].handoff_depth() == 1
        # Rejoin: the queue drains and the hint accounting records it.
        pair["a0"].update_membership(_snapshot({"a0": True, "b0": True}))
        assert pair["a0"].ship_once() == 1
        assert pair["a0"].hints_drained == 1
        assert pair["a0"].handoff_depth() == 0
        assert pair["b0"].applier.applied == 1

    def test_replication_delta_is_not_re_replicated(self, pair):
        # b0 applying a0's delta must not enqueue it for a0 again —
        # the worker skips caller="replication" writes; here the layer
        # itself never sees them because only the worker's write path
        # calls on_client_write.
        pair["a0"].on_client_write(1, NOW, 0, 1, 500, (3, 0, 0))
        pair["a0"].ship_once()
        assert pair["b0"].log.last_seq == 0
        assert pair["b0"].log.lag() == {}

    def test_repair_round_ships_only_diffs(self, pair):
        # Writes applied locally on a0 only — as if the delta stream to
        # b0 was lost (queue overflow): repair must close the hole.
        for pid in range(8):
            pair["a0"].node.add_profile(pid, NOW, 0, 1, 700, (2, 0, 0))
        pair["a0"].node.merge_write_table()
        stats = pair["a0"].repair_round()
        assert stats["peer"] == "b0"
        # Only keys where a0 is acting primary are pushed.
        assert 0 < stats["keys"] <= 8
        assert stats["shipped"] > 0
        second = pair["a0"].repair_round()
        # Convergence: the immediate next round over the same keys ships
        # nothing — every block digest now matches.
        assert second["bytes"] == 0
        assert pair["a0"].repair_blocks_matched > 0

    def test_stats_shape_matches_fleet_rollup(self, pair):
        from repro.monitoring import fleet_summary

        pair["a0"].on_client_write(1, NOW, 0, 1, 500, (1, 0, 0))
        pair["a0"].ship_once()
        fleet = {
            "a0": {"replication": pair["a0"].stats(), "pid": 1},
            "b0": {"replication": pair["b0"].stats(), "pid": 2},
        }
        summary = fleet_summary(fleet)
        assert summary["replication"]["applies"] == 1
        assert summary["replication"]["pending"] == 0
        assert summary["replication"]["delta_bytes"] > 0

    def test_factor_adopted_from_registry_when_not_fixed(self, tmp_path):
        node = build_durable_node("c0", tmp_path / "c0")
        layer = WorkerReplication(node, factor=0)
        assert not layer.enabled
        layer.update_membership(_snapshot({"c0": True}, factor=3))
        assert layer.factor == 3 and layer.enabled
