"""A full simulated production day on a real cluster.

This is the capstone integration test: one IPS cluster lives through a
compressed day of operations with every subsystem engaged —

* diurnal ingestion through the §III-A streaming template;
* serving traffic with feature assembly (serving + training records);
* the maintenance pool compacting off the serving path;
* the auto-scaler reacting to the traffic curve;
* the monitor sampling cluster rollups each "hour";
* a node crash and recovery mid-day.

At the end the test asserts the global invariants the paper's operations
depend on: no data loss, bounded profiles, a consistent monitor ledger
and a healthy cache.
"""

import pytest

from repro.assembly import FeatureAssembler, FeatureSpec
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.cluster.autoscaler import AutoScaler, ScalingPolicy
from repro.config import ShrinkConfig, TableConfig
from repro.core.timerange import TimeRange
from repro.errors import IPSError
from repro.ingest import Topic, content_feed_pipeline
from repro.monitoring import ClusterMonitor
from repro.workload import EventStreamGenerator, WorkloadConfig

START = 400 * MILLIS_PER_DAY
HOURS = 24
EVENTS_PER_HOUR = 400
QUERIES_PER_HOUR = 300


@pytest.fixture(scope="module")
def day_run():
    clock = SimulatedClock(START)
    config = TableConfig(
        name="feed",
        attributes=("impression", "click", "like"),
        shrink=ShrinkConfig.from_mapping({}, default_retain=100),
    )
    cluster = IPSCluster(config, num_nodes=2, clock=clock)
    pipeline = content_feed_pipeline(
        cluster.client("ingest"), config.attributes
    )
    generator = EventStreamGenerator(
        WorkloadConfig(num_users=300, num_items=1500, seed=77)
    )
    training_topic = Topic("training")
    assembler = FeatureAssembler(
        cluster.client("ranker"),
        [
            FeatureSpec(name=f"clicks_6h_slot{slot}", slot=slot,
                        window_ms=6 * MILLIS_PER_HOUR, attribute="click", k=4)
            for slot in range(4)
        ],
        config.attributes,
        training_topic=training_topic,
    )
    scaler = AutoScaler(
        cluster.region,
        ScalingPolicy(node_capacity_qps=900, min_nodes=2, max_nodes=6,
                      cooldown_ticks=1),
    )
    monitor = ClusterMonitor(cluster)
    monitor.sample()

    crash_hour, recover_hour = 9, 11
    victim = "local-node-0"
    read_errors = 0
    reads_issued = 0

    for hour in range(HOURS):
        # Traffic shape: quiet at night, busy evenings.
        intensity = 0.4 if hour < 7 else (1.0 if hour < 19 else 1.5)
        events = int(EVENTS_PER_HOUR * intensity)
        queries = int(QUERIES_PER_HOUR * intensity)

        if hour == crash_hour:
            cluster.region.fail_node(victim)
        if hour == recover_hour:
            cluster.region.recover_node(victim)

        hour_start = clock.now_ms()
        for triple in generator.impressions(events, hour_start, MILLIS_PER_HOUR):
            pipeline.feed_events(*triple)
        pipeline.drain()

        client = cluster.client("ranker")
        for query in generator.queries(queries):
            reads_issued += 1
            try:
                assembler.assemble(query.user_id, clock.now_ms())
            except IPSError:
                read_errors += 1

        cluster.run_background_cycle()
        for node in cluster.region.nodes.values():
            node.run_maintenance(max_profiles=50)
        scaler.tick(observed_qps=(events + queries) / 3600.0 * 4000)
        monitor.sample()
        clock.advance(MILLIS_PER_HOUR)

    return {
        "cluster": cluster,
        "pipeline": pipeline,
        "assembler": assembler,
        "monitor": monitor,
        "scaler": scaler,
        "training_topic": training_topic,
        "read_errors": read_errors,
        "reads_issued": reads_issued,
    }


class TestProductionDay:
    def test_no_read_errors_despite_crash(self, day_run):
        assert day_run["read_errors"] == 0
        assert day_run["reads_issued"] > 5000

    def test_ingestion_was_lossless(self, day_run):
        stats = day_run["pipeline"].stats
        assert stats.instances_joined == stats.instances_ingested
        assert day_run["pipeline"].job.stats.write_failures == 0

    def test_training_records_match_serving_requests(self, day_run):
        assembler = day_run["assembler"]
        assert (
            assembler.stats.training_records_published
            == assembler.stats.requests
            == day_run["reads_issued"]
        )
        assert day_run["training_topic"].total_messages() == day_run["reads_issued"]

    def test_monitor_ledger_is_consistent(self, day_run):
        monitor = day_run["monitor"]
        snapshot = monitor.snapshot()
        assert snapshot.reads > 0 and snapshot.writes > 0
        assert len(monitor.series["read_qps"]) == HOURS
        # Rates are non-negative everywhere.
        assert all(value >= 0 for value in monitor.series["read_qps"].values())

    def test_profiles_remain_bounded(self, day_run):
        cluster = day_run["cluster"]
        worst = max(
            profile.slice_count()
            for node in cluster.region.nodes.values()
            for profile in node.engine.table.profiles()
        )
        assert worst < 500  # A day of activity, compacted.
        for node in cluster.region.nodes.values():
            for profile in node.engine.table.profiles():
                profile.invariant_check()

    def test_cache_hit_ratio_healthy(self, day_run):
        snapshot = day_run["monitor"].snapshot()
        assert snapshot.hit_ratio > 0.8

    def test_scaler_responded_to_the_curve(self, day_run):
        # With the evening surge the scaler had reason to act at least once.
        stats = day_run["scaler"].stats
        assert stats.ticks == HOURS

    def test_everything_flushes_clean_at_end_of_day(self, day_run):
        cluster = day_run["cluster"]
        cluster.shutdown()
        for node in cluster.region.nodes.values():
            assert node.cache.dirty.total_entries() == 0
            assert node.write_table.pending_count == 0
