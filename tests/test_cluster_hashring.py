"""Tests for consistent hashing (load balance and minimal remapping)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hashring import ConsistentHashRing
from repro.errors import NoHealthyNodeError


def ring_with_nodes(count, virtual_nodes=128):
    ring = ConsistentHashRing(virtual_nodes)
    for index in range(count):
        ring.add_node(f"node-{index}")
    return ring


class TestBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(NoHealthyNodeError):
            ConsistentHashRing().node_for(1)

    def test_single_node_owns_everything(self):
        ring = ring_with_nodes(1)
        assert all(ring.node_for(key) == "node-0" for key in range(100))

    def test_deterministic_routing(self):
        ring = ring_with_nodes(5)
        assert ring.node_for(12345) == ring.node_for(12345)

    def test_routing_stable_across_instances(self):
        """blake2b-based points: two identical rings agree exactly."""
        a, b = ring_with_nodes(5), ring_with_nodes(5)
        assert all(a.node_for(key) == b.node_for(key) for key in range(500))

    def test_add_remove_membership(self):
        ring = ring_with_nodes(3)
        assert len(ring) == 3
        ring.remove_node("node-1")
        assert len(ring) == 2
        assert "node-1" not in ring
        assert all(ring.node_for(key) != "node-1" for key in range(200))

    def test_duplicate_add_is_idempotent(self):
        ring = ring_with_nodes(2)
        ring.add_node("node-0")
        assert len(ring) == 2

    def test_remove_unknown_is_noop(self):
        ring = ring_with_nodes(2)
        ring.remove_node("ghost")
        assert len(ring) == 2

    def test_rejects_bad_virtual_node_count(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)


class TestBalanceAndStability:
    def test_load_is_roughly_balanced(self):
        ring = ring_with_nodes(8)
        distribution = ring.load_distribution(list(range(20_000)))
        expected = 20_000 / 8
        for count in distribution.values():
            assert 0.5 * expected < count < 1.7 * expected

    def test_node_removal_only_remaps_its_keys(self):
        """The consistent-hashing property: removing one node moves only
        the keys it owned."""
        ring = ring_with_nodes(8)
        keys = list(range(5000))
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("node-3")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "node-3":
                assert after == before[key]
            else:
                assert after != "node-3"

    def test_node_addition_steals_a_fair_share(self):
        ring = ring_with_nodes(7)
        keys = list(range(5000))
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("node-7")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Roughly 1/8 of keys should move; allow generous slack.
        assert 0.04 * len(keys) < moved < 0.30 * len(keys)


class TestExclusion:
    def test_exclude_routes_to_next_owner(self):
        ring = ring_with_nodes(4)
        primary = ring.node_for(42)
        fallback = ring.node_for(42, exclude={primary})
        assert fallback != primary

    def test_all_excluded_raises(self):
        ring = ring_with_nodes(3)
        with pytest.raises(NoHealthyNodeError):
            ring.node_for(42, exclude={"node-0", "node-1", "node-2"})

    def test_fallback_is_deterministic(self):
        ring = ring_with_nodes(5)
        primary = ring.node_for(42)
        assert ring.node_for(42, exclude={primary}) == ring.node_for(
            42, exclude={primary}
        )

    @given(st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=100, deadline=None)
    def test_any_key_routes_somewhere(self, key):
        ring = ring_with_nodes(4)
        assert ring.node_for(key) in ring.nodes
