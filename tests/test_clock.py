"""Tests for clock abstractions."""

import threading
import time

import pytest

from repro.clock import (
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
    Clock,
    SimulatedClock,
    SystemClock,
)


class TestConstants:
    def test_unit_relationships(self):
        assert MILLIS_PER_SECOND == 1000
        assert MILLIS_PER_MINUTE == 60 * MILLIS_PER_SECOND
        assert MILLIS_PER_HOUR == 60 * MILLIS_PER_MINUTE
        assert MILLIS_PER_DAY == 24 * MILLIS_PER_HOUR


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = SystemClock()
        before = time.time() * 1000
        now = clock.now_ms()
        after = time.time() * 1000
        assert before - 5 <= now <= after + 5

    def test_satisfies_protocol(self):
        assert isinstance(SystemClock(), Clock)


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(1234).now_ms() == 1234

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1)

    def test_advance_moves_forward(self):
        clock = SimulatedClock(100)
        assert clock.advance(50) == 150
        assert clock.now_ms() == 150

    def test_advance_zero_is_noop(self):
        clock = SimulatedClock(100)
        clock.advance(0)
        assert clock.now_ms() == 100

    def test_advance_rejects_negative(self):
        clock = SimulatedClock(100)
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_set_time_forward(self):
        clock = SimulatedClock(100)
        clock.set_time(500)
        assert clock.now_ms() == 500

    def test_set_time_rejects_backwards(self):
        clock = SimulatedClock(100)
        with pytest.raises(ValueError):
            clock.set_time(99)

    def test_set_time_same_instant_allowed(self):
        clock = SimulatedClock(100)
        clock.set_time(100)
        assert clock.now_ms() == 100

    def test_thread_safety_of_advance(self):
        clock = SimulatedClock(0)

        def advance_many():
            for _ in range(1000):
                clock.advance(1)

        threads = [threading.Thread(target=advance_many) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now_ms() == 8000

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), Clock)
