"""Fine-grained persistence exercised through the full cluster path.

Tables holding very large profiles enable ``fine_grained_persistence``;
this module checks the slice-split mode behaves identically to bulk mode
through every layer above it: cluster writes/reads, eviction + reload,
node failure recovery, and the documented snapshot limitation.
"""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.storage.persistence import FineGrainedPersistence

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    config = TableConfig(
        name="big",
        attributes=("click", "like"),
        fine_grained_persistence=True,
    )
    return IPSCluster(
        config, num_nodes=2, clock=SimulatedClock(NOW),
        cache_capacity_bytes=64 * 1024,
    )


def populate(cluster, profile_id=7, hours=100):
    client = cluster.client("app")
    for hour in range(hours):
        client.add_profile(
            profile_id, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour % 12,
            {"click": 1},
        )
    cluster.run_background_cycle()
    return client


class TestFineGrainedThroughCluster:
    def test_nodes_use_fine_grained_mode(self, cluster):
        for node in cluster.region.nodes.values():
            assert isinstance(node.persistence, FineGrainedPersistence)

    def test_write_read_roundtrip(self, cluster):
        client = populate(cluster)
        results = client.get_profile_topk(
            7, 1, 0, WINDOW, SortType.ATTRIBUTE, k=3, sort_attribute="click"
        )
        assert len(results) == 3
        assert all(row.counts[0] >= 8 for row in results)  # ~100/12 each.

    def test_eviction_and_reload(self, cluster):
        client = populate(cluster)
        owner = cluster.region.node_for(7)
        before = client.get_profile_topk(7, 1, 0, WINDOW, k=12)
        owner.cache.flush_all()
        owner.cache._evict(7)
        assert owner.cache.get_resident(7) is None
        after = client.get_profile_topk(7, 1, 0, WINDOW, k=12)
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }
        # The reload pulled slice values, not one bulk blob.
        assert owner.persistence.stats.slices_loaded > 1

    def test_node_failure_recovery(self, cluster):
        client = populate(cluster)
        for node in cluster.region.nodes.values():
            node.cache.flush_all()
        owner = cluster.region.node_for(7)
        before = client.get_profile_topk(7, 1, 0, WINDOW, k=12)
        cluster.region.fail_node(owner.node_id)
        after = client.get_profile_topk(7, 1, 0, WINDOW, k=12)
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }

    def test_maintenance_then_flush_updates_slice_layout(self, cluster):
        client = populate(cluster)
        owner = cluster.region.node_for(7)
        owner.cache.flush_all()
        keys_before = sum(1 for _ in owner.persistence._store.keys())
        # Maintain the profile directly (it is below the pending-marking
        # threshold, so run_maintenance would be a no-op here).
        report = owner.engine.maintain_profile(7)
        assert report.compaction.merges > 0
        owner.cache.mark_dirty(7)
        owner.cache.flush_all()
        keys_after = sum(1 for _ in owner.persistence._store.keys())
        # Compaction shrank the slice list; the re-flush garbage-collected
        # the orphaned slice values (fewer keys).
        assert keys_after < keys_before

    def test_snapshot_export_skips_fine_grained_tables(self, cluster):
        """Documented limitation: snapshots cover bulk key space only."""
        from repro.storage.snapshot import export_table

        populate(cluster)
        for node in cluster.region.nodes.values():
            node.cache.flush_all()
        exported = export_table(cluster.store, "big", "/tmp/fg.snapshot")
        assert exported == 0  # No bulk keys exist for this table.
