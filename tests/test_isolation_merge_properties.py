"""Property test: write-table isolation is observationally equivalent.

Whatever interleaving of buffered writes and merge passes occurs, once
the write table is drained the node must answer queries exactly like a
reference node that applied every write directly (§III-F's correctness
requirement — isolation trades *freshness*, never *content*).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.server.node import IPSNode
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)

#: (age_hours, slot, fid, clicks) plus a merge marker interleaved.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.integers(min_value=0, max_value=200),  # age hours
            st.integers(min_value=0, max_value=3),  # slot
            st.integers(min_value=0, max_value=10),  # fid
            st.integers(min_value=1, max_value=9),  # clicks
        ),
        st.just("merge"),
    ),
    min_size=1,
    max_size=60,
)


def make_node(isolation: bool) -> IPSNode:
    config = TableConfig(name="t", attributes=("click",))
    return IPSNode(
        f"node-{isolation}", config, InMemoryKVStore(),
        clock=SimulatedClock(NOW), isolation_enabled=isolation,
    )


class TestIsolationEquivalence:
    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_drained_isolated_node_equals_direct_node(self, ops):
        isolated = make_node(isolation=True)
        direct = make_node(isolation=False)
        for op in ops:
            if op == "merge":
                isolated.merge_write_table()
                continue
            age_hours, slot, fid, clicks = op
            timestamp = NOW - age_hours * MILLIS_PER_HOUR
            isolated.add_profile(1, timestamp, slot, 0, fid, {"click": clicks})
            direct.add_profile(1, timestamp, slot, 0, fid, {"click": clicks})
        isolated.merge_write_table()  # Final drain.
        for slot in range(4):
            expected = direct.get_profile_topk(
                1, slot, 0, WINDOW, SortType.ATTRIBUTE, k=100,
                sort_attribute="click",
            )
            actual = isolated.get_profile_topk(
                1, slot, 0, WINDOW, SortType.ATTRIBUTE, k=100,
                sort_attribute="click",
            )
            assert {(r.fid, r.counts) for r in actual} == {
                (r.fid, r.counts) for r in expected
            }

    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_hot_switch_mid_stream_loses_nothing(self, ops):
        """Toggling isolation while writes stream in preserves all data."""
        node = make_node(isolation=True)
        reference = make_node(isolation=False)
        toggle_every = 7
        for index, op in enumerate(ops):
            if op == "merge":
                node.merge_write_table()
                continue
            if index % toggle_every == toggle_every - 1:
                node.set_isolation(not node.isolation_enabled)
            age_hours, slot, fid, clicks = op
            timestamp = NOW - age_hours * MILLIS_PER_HOUR
            node.add_profile(1, timestamp, slot, 0, fid, {"click": clicks})
            reference.add_profile(1, timestamp, slot, 0, fid, {"click": clicks})
        node.set_isolation(False)  # Drains any remainder.
        total_node = sum(
            row.counts[0]
            for slot in range(4)
            for row in node.get_profile_topk(
                1, slot, 0, WINDOW, SortType.ATTRIBUTE, k=100,
                sort_attribute="click",
            )
        )
        total_reference = sum(
            row.counts[0]
            for slot in range(4)
            for row in reference.get_profile_topk(
                1, slot, 0, WINDOW, SortType.ATTRIBUTE, k=100,
                sort_attribute="click",
            )
        )
        assert total_node == total_reference
