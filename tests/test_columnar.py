"""Unit tests for the columnar-native representation (ROADMAP item #2).

The differential oracles prove the *query* surface is byte-identical to
the reference; this file covers the :class:`ColumnGroup` mechanics the
oracles reach only indirectly — legacy demotion, stride growth, bulk
replacement, copy isolation, memory accounting — plus the profile-level
batch-gather memo, whose identity revalidation must observe mutations
made between two ``top_k_batch`` calls.
"""

from array import array

import pytest

from repro.config import TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.columnar import INT64_TYPECODE, ColumnGroup
from repro.core.engine import QueryEngine
from repro.core.feature import INT64_MAX, FeatureStat
from repro.core.profile import ProfileData
from repro.core.query import SortType
from repro.core.timerange import TimeRange

SUM = get_aggregate("sum")


def make_group(rows):
    group = ColumnGroup()
    for fid, counts, ts in rows:
        group.add(fid, counts, ts, SUM)
    return group


class TestColumnarMechanics:
    def test_add_merges_like_merge_counts(self):
        group = make_group([(7, [1, 2], 100), (7, [3, 4], 90)])
        stat = group.get(7)
        assert stat.counts == [4, 6]
        assert stat.last_timestamp_ms == 100  # max, not last write
        assert group.is_columnar

    def test_stride_growth_pads_existing_rows(self):
        group = make_group([(1, [5], 10), (2, [1, 2, 3], 20)])
        assert group.stride == 3
        # The narrow row keeps its native width through the re-layout.
        assert group.get(1).counts == [5]
        assert group.get(2).counts == [1, 2, 3]
        assert group.row_width(0) == 1
        assert group.row_width(1) == 3

    def test_replace_duplicate_fids_last_value_wins(self):
        group = ColumnGroup()
        group.replace(
            [
                FeatureStat(1, [1], 10),
                FeatureStat(2, [2], 20),
                FeatureStat(1, [9], 30),
            ]
        )
        assert len(group) == 2
        assert group.get(1).counts == [9]
        # First occurrence fixed the position: fid 1 is still row 0.
        assert [stat.fid for stat in group.iter_stats()] == [1, 2]


class TestDemotion:
    def test_oversize_fid_demotes_and_preserves_rows(self):
        group = make_group([(1, [1, 2], 10)])
        group.add(INT64_MAX + 1, [3], 20, SUM)
        assert not group.is_columnar
        assert group.get(1).counts == [1, 2]
        assert group.get(INT64_MAX + 1).counts == [3]
        # Further writes keep the old dict semantics.
        group.add(1, [1, 1], 30, SUM)
        assert group.get(1).counts == [2, 3]

    def test_float_udaf_demotes(self):
        def mean_ish(a, b):
            return (a + b) / 2

        group = make_group([(5, [4], 10)])
        group.add(5, [2], 20, mean_ish)
        assert not group.is_columnar
        assert group.get(5).counts == [3.0]


class TestCopyAndAccounting:
    def test_copy_isolation_columnar(self):
        original = make_group([(1, [1, 2], 10)])
        duplicate = original.copy()
        duplicate.add(1, [10, 10], 20, SUM)
        duplicate.add(2, [7], 20, SUM)
        assert original.get(1).counts == [1, 2]
        assert original.get(2) is None

    def test_copy_isolation_legacy(self):
        original = make_group([(INT64_MAX + 1, [1], 10)])
        duplicate = original.copy()
        duplicate.add(INT64_MAX + 1, [5], 20, SUM)
        assert original.get(INT64_MAX + 1).counts == [1]

    def test_memory_accounting_ignores_mutation_order(self):
        # Same logical contents, one built wide-first, one narrow-first
        # (the latter allocates a widths column it no longer needs).
        wide_first = make_group([(1, [1, 2, 3], 10), (2, [4, 5, 6], 20)])
        narrow_first = make_group([(2, [4], 20), (1, [1, 2, 3], 10)])
        narrow_first.add(2, [0, 5, 6], 20, SUM)
        assert wide_first.memory_bytes() == narrow_first.memory_bytes()

    def test_from_columns_rejects_inconsistent_shapes(self):
        fids = array(INT64_TYPECODE, [1, 2])
        ts = array(INT64_TYPECODE, [10, 20])
        counts = array(INT64_TYPECODE, [1, 2, 3, 4])
        with pytest.raises(ValueError):
            ColumnGroup.from_columns(2, fids, array(INT64_TYPECODE, [10]), counts, None)
        with pytest.raises(ValueError):
            ColumnGroup.from_columns(
                2, array(INT64_TYPECODE, [1, 1]), ts, counts, None
            )
        with pytest.raises(ValueError):
            ColumnGroup.from_columns(
                2, fids, ts, counts, array(INT64_TYPECODE, [3, 1])
            )


class TestBatchMemoInvalidation:
    """The profile-level gather memo must never serve stale rows."""

    WINDOW = TimeRange.current(10_000)
    NOW_MS = 50_000

    def _engine(self):
        config = TableConfig(name="columnar_memo", attributes=("like", "share"))
        return QueryEngine(config, SUM)

    def _profile(self, pid):
        profile = ProfileData(pid, write_granularity_ms=1000)
        for i in range(8):
            profile.add(
                self.NOW_MS - i * 900, 1, 1, fid=100 + i, counts=[i + 1, 1],
                aggregate=SUM,
            )
        return profile

    def _batch(self, engine, profiles):
        return engine.top_k_batch(
            profiles, 1, 1, self.WINDOW, SortType.ATTRIBUTE, k=5,
            now_ms=self.NOW_MS, sort_attribute="like",
        )

    def test_repeat_batch_is_stable(self):
        engine = self._engine()
        profiles = [self._profile(pid) for pid in range(4)]
        first = self._batch(engine, profiles)
        assert self._batch(engine, profiles) == first  # memo-hit path

    def test_mutation_between_batches_is_visible(self):
        engine = self._engine()
        profiles = [self._profile(pid) for pid in range(4)]
        self._batch(engine, profiles)  # populate the memo
        # Mutate one profile: a new write that must dominate the sort.
        profiles[2].add(
            self.NOW_MS - 10, 1, 1, fid=999, counts=[1000, 1], aggregate=SUM
        )
        results = self._batch(engine, profiles)
        assert results[2][0].fid == 999
        # Untouched profiles still serve from the (validated) memo.
        singles = [
            engine.top_k(
                profile, 1, 1, self.WINDOW, SortType.ATTRIBUTE, k=5,
                now_ms=self.NOW_MS, sort_attribute="like",
            )
            for profile in profiles
        ]
        assert results == singles

    def test_new_slice_between_batches_is_visible(self):
        engine = self._engine()
        profiles = [self._profile(pid) for pid in range(3)]
        self._batch(engine, profiles)
        # A write newer than the head slice prepends a fresh slice, which
        # changes the window's slice list rather than an existing slice.
        profiles[0].add(
            self.NOW_MS + 2000, 1, 1, fid=777, counts=[500, 1], aggregate=SUM
        )
        results = engine.top_k_batch(
            profiles, 1, 1, self.WINDOW, SortType.ATTRIBUTE, k=5,
            now_ms=self.NOW_MS + 2500, sort_attribute="like",
        )
        assert results[0][0].fid == 777
