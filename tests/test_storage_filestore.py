"""Tests for the disk-backed KV store (crash recovery, log compaction)."""

import threading

import pytest

from repro.errors import StorageError, VersionConflictError
from repro.storage import FileKVStore


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "kv" / "store.log"


class TestBasicOperations:
    def test_set_get_roundtrip(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"k", b"v")
        assert store.get(b"k") == b"v"
        store.close()

    def test_get_missing_is_none(self, store_path):
        store = FileKVStore(store_path)
        assert store.get(b"nope") is None
        store.close()

    def test_delete(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        assert len(store) == 0
        store.close()

    def test_rejects_bad_durability(self, store_path):
        with pytest.raises(StorageError):
            FileKVStore(store_path, durability="sometimes")


class TestDurability:
    def test_survives_reopen(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"a", b"1")
        store.set(b"b", b"22")
        store.set(b"a", b"111")  # Overwrite.
        store.delete(b"b")
        store.close()
        reopened = FileKVStore(store_path)
        assert reopened.get(b"a") == b"111"
        assert reopened.get(b"b") is None
        assert len(reopened) == 1
        reopened.close()

    def test_versions_survive_reopen(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"k", b"v1")
        store.set(b"k", b"v2")
        store.close()
        reopened = FileKVStore(store_path)
        assert reopened.xget(b"k").version == 2
        reopened.close()

    def test_torn_tail_ignored(self, store_path):
        """A crash mid-append leaves a torn record; replay drops it."""
        store = FileKVStore(store_path)
        store.set(b"committed", b"yes")
        store.close()
        with open(store_path, "ab") as log:
            log.write(b"\x01\x02\x03")  # Garbage partial header.
        reopened = FileKVStore(store_path)
        assert reopened.get(b"committed") == b"yes"
        assert len(reopened) == 1
        reopened.close()

    def test_batch_durability_needs_sync(self, store_path):
        store = FileKVStore(store_path, durability="batch")
        store.set(b"k", b"v")
        store.sync()
        store.close()
        reopened = FileKVStore(store_path)
        assert reopened.get(b"k") == b"v"
        reopened.close()


class TestChecksummedLog:
    def test_bit_flip_truncates_from_corrupt_record(self, store_path):
        """Rot in record 2 of 3: record 1 survives, the rest is cut off."""
        store = FileKVStore(store_path)
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        store.set(b"c", b"3")
        store.close()
        data = bytearray(store_path.read_bytes())
        record_len = len(data) // 3
        data[record_len + record_len // 2] ^= 0x20
        store_path.write_bytes(bytes(data))
        reopened = FileKVStore(store_path)
        assert reopened.get(b"a") == b"1"
        assert reopened.get(b"b") is None
        assert reopened.get(b"c") is None
        assert reopened.replay_corrupt_records == 1
        assert reopened.replay_truncated_bytes == 2 * record_len
        # The file was physically truncated, so appends can't hide
        # behind garbage.
        assert store_path.stat().st_size == record_len
        reopened.set(b"d", b"4")
        reopened.close()
        again = FileKVStore(store_path)
        assert again.get(b"a") == b"1"
        assert again.get(b"d") == b"4"
        assert again.replay_corrupt_records == 0
        again.close()

    def test_unknown_lead_byte_truncates(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"a", b"1")
        store.close()
        with open(store_path, "ab") as log:
            log.write(b"\x7fjunk-from-another-format")
        reopened = FileKVStore(store_path)
        assert reopened.get(b"a") == b"1"
        assert reopened.replay_corrupt_records == 1
        reopened.close()

    def test_legacy_uncrc_records_still_readable(self, store_path):
        """Logs written before the checksum existed replay unchanged."""
        import struct

        legacy_header = struct.Struct("<BQII")

        def legacy(op, key, value, version):
            return (
                legacy_header.pack(op, version, len(key), len(value))
                + key
                + value
            )

        store_path.parent.mkdir(parents=True, exist_ok=True)
        store_path.write_bytes(
            legacy(1, b"old", b"value", 1)
            + legacy(1, b"old", b"value2", 2)
            + legacy(2, b"gone", b"", 0)
        )
        store = FileKVStore(store_path)
        assert store.get(b"old") == b"value2"
        assert store.xget(b"old").version == 2
        assert store.replay_corrupt_records == 0
        # New writes append in the checksummed format to the same log.
        store.set(b"new", b"n")
        store.close()
        reopened = FileKVStore(store_path)
        assert reopened.get(b"old") == b"value2"
        assert reopened.get(b"new") == b"n"
        reopened.close()

    def test_compaction_upgrades_legacy_records(self, store_path):
        import struct

        legacy_header = struct.Struct("<BQII")
        store_path.parent.mkdir(parents=True, exist_ok=True)
        store_path.write_bytes(
            legacy_header.pack(1, 1, 1, 1) + b"k" + b"v"
        )
        store = FileKVStore(store_path)
        store.compact_log()
        store.close()
        assert store_path.read_bytes()[0] == 0xC3
        reopened = FileKVStore(store_path)
        assert reopened.get(b"k") == b"v"
        reopened.close()


class TestVersionedAPI:
    def test_xset_fencing(self, store_path):
        store = FileKVStore(store_path)
        version = store.xset(b"k", b"v1", None)
        store.xset(b"k", b"v2", version)
        with pytest.raises(VersionConflictError):
            store.xset(b"k", b"v3", version)
        store.close()

    def test_insert_fence(self, store_path):
        store = FileKVStore(store_path)
        store.xset(b"k", b"v", None)
        with pytest.raises(VersionConflictError):
            store.xset(b"k", b"v2", None)
        store.close()


class TestLogCompaction:
    def test_compaction_reclaims_dead_records(self, store_path):
        store = FileKVStore(store_path)
        for round_index in range(20):
            store.set(b"hot-key", f"value-{round_index}".encode() * 10)
        before = store.log_bytes()
        reclaimed = store.compact_log()
        assert reclaimed > 0
        assert store.log_bytes() < before
        assert store.get(b"hot-key") == b"value-19" * 10
        store.close()
        # Compaction preserved durability.
        reopened = FileKVStore(store_path)
        assert reopened.get(b"hot-key") == b"value-19" * 10
        reopened.close()

    def test_store_usable_after_compaction(self, store_path):
        store = FileKVStore(store_path)
        store.set(b"a", b"1")
        store.compact_log()
        store.set(b"b", b"2")
        store.close()
        reopened = FileKVStore(store_path)
        assert reopened.get(b"a") == b"1"
        assert reopened.get(b"b") == b"2"
        reopened.close()


class TestIntegrationWithPersistence:
    def test_node_recovers_after_restart(self, store_path):
        """Full crash-recovery: node writes, 'crashes', a new node over the
        same file store serves the data."""
        from repro.clock import MILLIS_PER_DAY, SimulatedClock
        from repro.config import TableConfig
        from repro.core.timerange import TimeRange
        from repro.server.node import IPSNode

        now = 400 * MILLIS_PER_DAY
        config = TableConfig(name="t", attributes=("click",))
        store = FileKVStore(store_path)
        node = IPSNode("n0", config, store, clock=SimulatedClock(now))
        for fid in range(10):
            node.add_profile(1, now, 1, 0, fid, {"click": fid + 1})
        node.shutdown()
        store.close()

        recovered_store = FileKVStore(store_path)
        fresh = IPSNode("n1", config, recovered_store, clock=SimulatedClock(now))
        results = fresh.get_profile_topk(
            1, 1, 0, TimeRange.current(MILLIS_PER_DAY), k=3
        )
        assert [r.fid for r in results] == [9, 8, 7]
        recovered_store.close()

    def test_concurrent_writers(self, store_path):
        store = FileKVStore(store_path)

        def writer(base):
            for index in range(100):
                store.set(f"k-{base}-{index}".encode(), b"v")

        threads = [threading.Thread(target=writer, args=(b,)) for b in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 400
        store.close()
        reopened = FileKVStore(store_path)
        assert len(reopened) == 400
        reopened.close()
