"""Tests for the cluster monitoring rollups."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.monitoring import ClusterMonitor

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    config = TableConfig(name="t", attributes=("click",))
    return IPSCluster(config, num_nodes=3, clock=SimulatedClock(NOW))


class TestSnapshots:
    def test_snapshot_covers_every_node(self, cluster):
        monitor = ClusterMonitor(cluster)
        snapshot = monitor.snapshot()
        assert len(snapshot.nodes) == 3
        assert {node.region for node in snapshot.nodes} == {"local"}

    def test_counters_roll_up(self, cluster):
        client = cluster.client("app")
        for profile_id in range(30):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        for profile_id in range(30):
            client.get_profile_topk(profile_id, 1, 0, WINDOW, k=1)
        monitor = ClusterMonitor(cluster)
        snapshot = monitor.snapshot()
        assert snapshot.writes == 30
        assert snapshot.reads == 30
        assert snapshot.resident_profiles == 30
        assert 0.0 <= snapshot.memory_ratio < 1.0

    def test_hit_ratio_rollup(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        for _ in range(10):
            client.get_profile_topk(1, 1, 0, WINDOW, k=1)
        snapshot = ClusterMonitor(cluster).snapshot()
        assert snapshot.hit_ratio > 0.5

    def test_quota_rejections_surface(self, cluster):
        from repro.errors import QuotaExceededError

        node = next(iter(cluster.region.nodes.values()))
        node.quota.set_quota("greedy", qps=10, burst=1)
        client = cluster.client("greedy")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        rejections = 0
        for _ in range(20):
            try:
                client.get_profile_topk(1, 1, 0, WINDOW, k=1)
            except QuotaExceededError:
                rejections += 1
        snapshot = ClusterMonitor(cluster).snapshot()
        if rejections:
            assert snapshot.quota_rejections > 0

    def test_durability_counters_surface(self, cluster):
        from repro.server.recovery import attach_memory_durability

        for node in cluster.region.nodes.values():
            attach_memory_durability(node)
        client = cluster.client("app")
        for profile_id in range(12):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        for node in cluster.region.nodes.values():
            node.crash()
            node.recover()
        snapshot = ClusterMonitor(cluster).snapshot()
        assert sum(node.wal_appends for node in snapshot.nodes) == 12
        assert snapshot.wal_replay_lag == 12  # Nothing checkpointed yet.
        assert snapshot.recoveries == 3
        assert "durability:" in ClusterMonitor(cluster).report()

    def test_durability_counters_default_zero(self, cluster):
        snapshot = ClusterMonitor(cluster).snapshot()
        assert snapshot.wal_replay_lag == 0
        assert snapshot.recoveries == 0
        assert "durability:" not in ClusterMonitor(cluster).report()


class TestSeries:
    def test_sample_builds_rate_series(self, cluster):
        client = cluster.client("app")
        monitor = ClusterMonitor(cluster)
        monitor.sample()  # Baseline.
        for step in range(5):
            for profile_id in range(10):
                client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
            cluster.clock.advance(1000)
            monitor.sample()
        qps = monitor.series["write_qps"]
        assert len(qps) == 5
        assert all(value == pytest.approx(10.0) for value in qps.values())

    def test_gauge_series_always_appended(self, cluster):
        monitor = ClusterMonitor(cluster)
        monitor.sample()
        monitor.sample()
        assert len(monitor.series["memory_ratio"]) == 2
        assert len(monitor.series["hit_ratio"]) == 2

    def test_report_is_renderable(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        report = ClusterMonitor(cluster).report()
        assert "cluster @" in report
        assert "local-node-0" in report

    def test_rates_survive_membership_changes(self, cluster):
        """Removing a node (scale-down) must not produce negative rates."""
        from repro.cluster.autoscaler import AutoScaler, ScalingPolicy

        client = cluster.client("app")
        monitor = ClusterMonitor(cluster)
        for profile_id in range(30):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        for profile_id in range(30):
            client.get_profile_topk(profile_id, 1, 0, WINDOW, k=1)
        monitor.sample()  # Baseline with 3 nodes.
        scaler = AutoScaler(
            cluster.region,
            ScalingPolicy(node_capacity_qps=1000, min_nodes=1,
                          max_nodes=8, cooldown_ticks=0),
        )
        scaler.tick(observed_qps=1)  # Scale down: one node's counters vanish.
        cluster.clock.advance(1000)
        monitor.sample()
        assert all(value >= 0 for value in monitor.series["read_qps"].values())
        assert all(value >= 0 for value in monitor.series["write_qps"].values())

    def test_new_node_counts_from_zero(self, cluster):
        from repro.cluster.autoscaler import AutoScaler, ScalingPolicy

        client = cluster.client("app")
        monitor = ClusterMonitor(cluster)
        monitor.sample()
        scaler = AutoScaler(
            cluster.region,
            ScalingPolicy(node_capacity_qps=10, min_nodes=1,
                          max_nodes=8, cooldown_ticks=0),
        )
        scaler.tick(observed_qps=10_000)  # Scale up.
        for profile_id in range(20):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.clock.advance(1000)
        monitor.sample()
        # Exactly 20 writes per second counted, including any landing on
        # the new node.
        assert monitor.series["write_qps"].values()[-1] == 20.0

    def test_rates_survive_join_and_leave_in_one_interval(self, cluster):
        """A node joining while another leaves still yields sane rates."""
        from repro.cluster.autoscaler import AutoScaler, ScalingPolicy

        client = cluster.client("app")
        monitor = ClusterMonitor(cluster)
        for profile_id in range(12):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        monitor.sample()  # Baseline: 3 nodes with counters.
        scaler = AutoScaler(
            cluster.region,
            ScalingPolicy(node_capacity_qps=1000, min_nodes=1,
                          max_nodes=8, cooldown_ticks=0),
        )
        scaler.tick(observed_qps=1)        # One node leaves...
        scaler.tick(observed_qps=10_000)   # ...and new ones join.
        for profile_id in range(12):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.clock.advance(1000)
        monitor.sample()
        values = monitor.series["write_qps"].values()
        assert all(value >= 0 for value in values)
        # The 12 new writes are counted at most once each (a leave must
        # not double-count and a join must not inflate).
        assert values[-1] <= 12.0


class TestNodeSnapshotRatios:
    def test_memory_ratio_with_zero_capacity(self):
        """capacity == 0 (test doubles, pre-sizing nodes) must not divide."""
        from repro.monitoring import NodeSnapshot

        snapshot = NodeSnapshot(
            node_id="n0", region="local", reads=0, writes=0,
            cache_hits=0, cache_misses=0, cache_swaps=0, flushes=0,
            flush_failures=0, memory_bytes=123, cache_capacity_bytes=0,
            resident_profiles=1, write_table_pending=0, quota_rejections=0,
        )
        assert snapshot.memory_ratio == 0.0

    def test_memory_ratio_normal(self):
        from repro.monitoring import NodeSnapshot

        snapshot = NodeSnapshot(
            node_id="n0", region="local", reads=0, writes=0,
            cache_hits=0, cache_misses=0, cache_swaps=0, flushes=0,
            flush_failures=0, memory_bytes=50, cache_capacity_bytes=200,
            resident_profiles=1, write_table_pending=0, quota_rejections=0,
        )
        assert snapshot.memory_ratio == 0.25


class TestBatchQueryMetricsRegistry:
    def test_histograms_register_in_registry(self):
        from repro.monitoring import BatchQueryMetrics
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        metrics = BatchQueryMetrics(registry)
        metrics.observe_batch(64, 48)
        metrics.observe_fanout(3)
        # Same objects: the registry's view reflects the client's records.
        assert registry.get("batch_size").count == 1
        assert registry.get("batch_fanout").count == 1
        assert metrics.batch_size_hist == {"<=128": 1}
        assert metrics.fanout_hist == {"<=4": 1}

    def test_standalone_without_registry(self):
        from repro.monitoring import BatchQueryMetrics

        metrics = BatchQueryMetrics()
        metrics.observe_batch(10, 5)
        assert metrics.dedup_ratio == 0.5
        assert sum(metrics.batch_size_hist.values()) == 1


class TestResilienceRollup:
    def test_watched_client_summary_appears_in_report(self):
        from repro.clock import MILLIS_PER_DAY, SimulatedClock
        from repro.cluster import IPSCluster, ResilienceConfig
        from repro.config import TableConfig
        from repro.core.query import SortType
        from repro.core.timerange import TimeRange
        from repro.monitoring import ClusterMonitor
        from repro.server.proxy import wrap_region_with_proxies

        now = 400 * MILLIS_PER_DAY
        clock = SimulatedClock(now)
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=3, clock=clock)
        wrap_region_with_proxies(cluster)
        client = cluster.client("rec-app", resilience=ResilienceConfig(seed=1))
        monitor = ClusterMonitor(cluster)
        monitor.watch_client(client)

        client.add_profile(1, now, 1, 1, 5, {"click": 1})
        cluster.run_background_cycle()
        client.get_profile_topk(
            1, 1, 1, TimeRange.current(MILLIS_PER_DAY), SortType.TOTAL, k=3
        )
        rollup = monitor.resilience_rollup()
        assert "rec-app" in rollup
        assert "retries" in rollup["rec-app"]
        assert "resilience[rec-app]" in monitor.report()

    def test_clients_without_resilience_contribute_nothing(self):
        from repro.clock import SimulatedClock
        from repro.cluster import IPSCluster
        from repro.config import TableConfig
        from repro.monitoring import ClusterMonitor

        cluster = IPSCluster(
            TableConfig(name="t", attributes=("click",)),
            num_nodes=2,
            clock=SimulatedClock(0),
        )
        monitor = ClusterMonitor(cluster)
        monitor.watch_client(cluster.client("plain"))
        assert monitor.resilience_rollup() == {}
        assert "resilience[" not in monitor.report()
