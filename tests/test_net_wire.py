"""Wire codec: framing, value round-trips, and the error taxonomy hop."""

from __future__ import annotations

import pytest

from repro import errors
from repro.core.query import FeatureResult, SortType
from repro.core.timerange import TimeRange
from repro.net import wire
from repro.server.batch import BatchKeyResult


def roundtrip(value):
    out = bytearray()
    wire.encode_value(out, value)
    decoded, pos = wire.decode_value(bytes(out), 0)
    assert pos == len(out)
    return decoded


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            42,
            -(1 << 62),
            (1 << 63) - 1,
            -(1 << 63),
            3.14159,
            float("inf"),
            "",
            "héllo wörld",
            b"",
            b"\x00\xff raw",
            [1, "two", None, [3.0]],
            (1, 2, "three"),
            {"a": 1, 2: "b", "nested": {"x": [1, 2]}},
        ],
    )
    def test_scalars_and_containers(self, value):
        assert roundtrip(value) == value

    def test_uint64_profile_ids(self):
        """Ids in [2**63, 2**64) must survive — they exist in real logs."""
        for value in ((1 << 63), (1 << 64) - 1, (1 << 63) + 12345):
            decoded = roundtrip(value)
            assert decoded == value and isinstance(decoded, int)

    def test_tuple_and_list_stay_distinct(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip([1, 2]) == [1, 2]
        assert isinstance(roundtrip((1,)), tuple)
        assert isinstance(roundtrip([1]), list)

    @pytest.mark.parametrize("sort_type", list(SortType))
    def test_sort_types(self, sort_type):
        assert roundtrip(sort_type) is sort_type

    def test_time_ranges(self):
        for time_range in (
            TimeRange.current(86_400_000),
            TimeRange.absolute(1_000, 2_000),
        ):
            assert roundtrip(time_range) == time_range

    def test_feature_result(self):
        result = FeatureResult(12345, (3, 0, 7), 999_000)
        assert roundtrip(result) == result

    def test_batch_key_result_success(self):
        rows = [FeatureResult(1, (1, 2), 10), FeatureResult(2, (0, 5), 20)]
        result = BatchKeyResult.success(77, rows)
        decoded = roundtrip(result)
        assert decoded.ok and decoded.profile_id == 77
        assert decoded.value == rows

    def test_batch_key_result_error(self):
        result = BatchKeyResult(
            profile_id=9,
            ok=False,
            error="NodeUnavailableError",
            error_message="node n1 unavailable",
        )
        decoded = roundtrip(result)
        assert not decoded.ok
        assert decoded.error == "NodeUnavailableError"
        assert decoded.error_message == "node n1 unavailable"

    def test_callable_rejected_with_guidance(self):
        with pytest.raises(wire.WireCodecError, match="filter predicates"):
            roundtrip(lambda row: True)

    def test_unknown_type_rejected(self):
        with pytest.raises(wire.WireCodecError):
            roundtrip(object())


class TestFraming:
    def test_frame_roundtrip(self):
        frame = wire.encode_frame(b"payload")
        length, crc = wire.decode_frame_header(frame[: wire.HEADER_SIZE])
        assert length == len(b"payload")
        payload = wire.check_frame_payload(frame[wire.HEADER_SIZE:], crc)
        assert payload == b"payload"

    def test_bad_magic(self):
        frame = bytearray(wire.encode_frame(b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(wire.WireCodecError, match="magic"):
            wire.decode_frame_header(bytes(frame[: wire.HEADER_SIZE]))

    def test_bit_flip_fails_crc(self):
        frame = bytearray(wire.encode_frame(b"important payload"))
        length, crc = wire.decode_frame_header(bytes(frame[: wire.HEADER_SIZE]))
        flipped = bytearray(frame[wire.HEADER_SIZE:])
        flipped[3] ^= 0x10
        with pytest.raises(wire.WireCodecError, match="CRC"):
            wire.check_frame_payload(bytes(flipped), crc)

    def test_truncated_header(self):
        with pytest.raises(wire.WireCodecError, match="truncated"):
            wire.decode_frame_header(b"\x01\x02")

    def test_oversized_length_is_corruption_not_allocation(self):
        import struct

        header = struct.pack(
            "<III", wire.FRAME_MAGIC, wire.MAX_FRAME_BYTES + 1, 0
        )
        with pytest.raises(wire.WireCodecError, match="cap"):
            wire.decode_frame_header(header)

    def test_truncated_value_payloads(self):
        out = bytearray()
        wire.encode_value(out, {"key": [1, 2, 3], "other": "text"})
        # Every proper prefix must fail loudly, never return garbage.
        for cut in range(len(out)):
            with pytest.raises(wire.WireCodecError):
                wire.decode_value(bytes(out[:cut]), 0)


class TestMessages:
    def test_request_roundtrip(self):
        request = wire.Request(
            7, "get_profile_topk",
            (123, 0, 1, TimeRange.current(1000)),
            {"k": 5, "sort_type": SortType.TOTAL},
        )
        frame = wire.encode_request(request)
        length, crc = wire.decode_frame_header(frame[: wire.HEADER_SIZE])
        payload = wire.check_frame_payload(frame[wire.HEADER_SIZE:], crc)
        decoded = wire.decode_message(payload)
        assert decoded == request

    def test_response_roundtrip_ok(self):
        response = wire.Response(
            9, True, value=[FeatureResult(1, (2,), 3)], server_ms=1.25
        )
        frame = wire.encode_response(response)
        payload = frame[wire.HEADER_SIZE:]
        decoded = wire.decode_message(payload)
        assert decoded == response

    def test_response_roundtrip_error(self):
        response = wire.Response(
            3, False,
            error_type="ProfileNotFoundError",
            error_message="profile 42 not found",
            error_args=(42,),
            server_ms=0.5,
        )
        decoded = wire.decode_message(wire.encode_response(response)[wire.HEADER_SIZE:])
        assert decoded == response


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "original",
        [
            errors.ProfileNotFoundError(42),
            errors.NodeUnavailableError("w03"),
            errors.CircuitOpenError("w01"),
            errors.RegionUnavailableError("east"),
            errors.QuotaExceededError("tenant-a", 100),
            errors.DeadlineExceededError("multi_get_topk", 250.0),
            errors.TableNotFoundError("user_profile"),
        ],
    )
    def test_rich_errors_rebuild_exact_type(self, original):
        rebuilt = wire.error_from_wire(*wire.error_to_wire(original))
        assert type(rebuilt) is type(original)
        assert errors.is_retryable(rebuilt) == errors.is_retryable(original)

    def test_profile_not_found_keeps_profile_id(self):
        rebuilt = wire.error_from_wire(
            *wire.error_to_wire(errors.ProfileNotFoundError(987))
        )
        assert rebuilt.profile_id == 987

    def test_retryability_survives_for_unknown_retryable_type(self):
        rebuilt = wire.error_from_wire(
            "RPCTimeoutError", "deadline blew", ()
        )
        assert errors.is_retryable(rebuilt)

    def test_unknown_type_degrades_to_remote_error(self):
        rebuilt = wire.error_from_wire("SomeWorkerOnlyError", "boom", ())
        assert isinstance(rebuilt, wire.RemoteError)
        assert not errors.is_retryable(rebuilt)
        assert "SomeWorkerOnlyError" in str(rebuilt)

    def test_region_fatal_stays_region_fatal(self):
        rebuilt = wire.error_from_wire(
            *wire.error_to_wire(errors.QuotaExceededError("t", 5))
        )
        assert isinstance(rebuilt, errors.REGION_FATAL_ERRORS)
