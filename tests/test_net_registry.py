"""Membership: heartbeat liveness, epochs, election, and ring rebalance.

The :class:`~repro.net.registry.NodeRegistry` core is clock-injected, so
eviction timelines and master re-election run on a
:class:`~repro.clock.SimulatedClock` — deterministic, no sleeps.  The
:class:`~repro.net.cluster.NetRegion` tests drive the same registry
object directly (it duck-types the ``members()`` surface of the socket
client) with a stub transport factory, proving the hash ring rebalances
on join/leave/eviction without opening a single socket.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.net.cluster import NetRegion
from repro.net.registry import NodeRegistry


@pytest.fixture
def registry(clock: SimulatedClock) -> NodeRegistry:
    return NodeRegistry(clock=clock, ttl_ms=1_000.0)


class TestLiveness:
    def test_register_and_members(self, registry):
        registry.register("w1", "127.0.0.1", 5001)
        registry.register("w0", "127.0.0.1", 5000)
        snapshot = registry.members()
        assert [m["node_id"] for m in snapshot["members"]] == ["w0", "w1"]
        assert snapshot["members"][0]["port"] == 5000

    def test_heartbeat_keeps_member_alive(self, registry, clock):
        generation = registry.register("w0", "h", 1)["generation"]
        for _ in range(5):
            clock.advance(800)  # each step < ttl, total far > ttl
            assert registry.heartbeat("w0", generation)
        assert [m.node_id for m in registry.live_members()] == ["w0"]

    def test_stale_member_evicted_after_ttl(self, registry, clock):
        registry.register("w0", "h", 1)
        generation = registry.register("w1", "h", 2)["generation"]
        clock.advance(999)
        registry.heartbeat("w1", generation)
        clock.advance(2)  # w0 now 1001ms stale, w1 fresh
        assert [m.node_id for m in registry.live_members()] == ["w1"]
        assert registry.evictions == 1

    def test_heartbeat_with_stale_generation_rejected(self, registry, clock):
        old = registry.register("w0", "h", 1)["generation"]
        clock.advance(2_000)
        registry.sweep()  # w0 evicted
        new = registry.register("w0", "h", 1)["generation"]
        assert new != old
        # The zombie's heartbeat must not shadow the re-registration.
        assert not registry.heartbeat("w0", old)
        assert registry.heartbeat("w0", new)

    def test_heartbeat_for_unknown_node_requests_reregistration(self, registry):
        assert not registry.heartbeat("ghost", 1)

    def test_deregister(self, registry):
        registry.register("w0", "h", 1)
        assert registry.deregister("w0")
        assert not registry.deregister("w0")
        assert registry.live_members() == []


class TestEpoch:
    def test_epoch_moves_only_on_membership_change(self, registry, clock):
        epoch0 = registry.epoch
        generation = registry.register("w0", "h", 1)["generation"]
        epoch1 = registry.epoch
        assert epoch1 > epoch0
        clock.advance(100)
        registry.heartbeat("w0", generation)
        registry.members()
        assert registry.epoch == epoch1  # steady state: no bump
        registry.register("w1", "h", 2)
        assert registry.epoch > epoch1

    def test_eviction_bumps_epoch(self, registry, clock):
        registry.register("w0", "h", 1)
        before = registry.epoch
        clock.advance(5_000)
        assert registry.sweep() == ["w0"]
        assert registry.epoch > before


class TestMasterElection:
    def test_lowest_live_node_id_is_master(self, registry):
        for node_id in ("w2", "w0", "w1"):
            registry.register(node_id, "h", 1)
        assert registry.master() == "w0"
        assert registry.members()["master"] == "w0"

    def test_master_reelection_after_master_death(self, registry, clock):
        generations = {
            node_id: registry.register(node_id, "h", 1)["generation"]
            for node_id in ("w0", "w1", "w2")
        }
        clock.advance(800)
        # Everyone but the master heartbeats; the master died silently.
        registry.heartbeat("w1", generations["w1"])
        registry.heartbeat("w2", generations["w2"])
        clock.advance(300)  # w0 crosses the TTL
        assert registry.master() == "w1"  # next-lowest survivor wins

    def test_master_reelection_is_deterministic(self, registry, clock):
        # Two observers of the same membership name the same master.
        for node_id in ("w3", "w1", "w4"):
            registry.register(node_id, "h", 1)
        assert registry.master() == registry.members()["master"] == "w1"
        registry.deregister("w1")
        assert registry.master() == registry.members()["master"] == "w3"

    def test_no_members_no_master(self, registry):
        assert registry.master() is None
        assert registry.members()["master"] is None


class _StubTransport:
    """Transport stand-in: records identity, never opens a socket."""

    def __init__(self, node_id, host, port):
        self.node_id = node_id
        self.host = host
        self.port = port
        self.closed = False
        self.stats = None

    def call(self, method, *args, **kwargs):  # pragma: no cover - unused
        raise AssertionError("stub transport should never be called")

    def close(self):
        self.closed = True


def _make_region(registry):
    return NetRegion(
        registry,
        refresh_interval_ms=0.0,  # poll every node_for in tests
        transport_factory=_StubTransport,
    )


class TestNetRegionRebalance:
    def test_ring_covers_initial_membership(self, registry):
        for node_id in ("w0", "w1", "w2"):
            registry.register(node_id, "h", 9000)
        region = _make_region(registry)
        owners = {region.node_for(pid).node_id for pid in range(200)}
        assert owners == {"w0", "w1", "w2"}

    def test_join_rebalances_ring(self, registry):
        registry.register("w0", "h", 1)
        region = _make_region(registry)
        assert {region.node_for(pid).node_id for pid in range(50)} == {"w0"}
        registry.register("w1", "h", 2)
        owners = {region.node_for(pid).node_id for pid in range(200)}
        assert owners == {"w0", "w1"}

    def test_leave_rebalances_and_closes_transport(self, registry):
        for node_id in ("w0", "w1"):
            registry.register(node_id, "h", 1)
        region = _make_region(registry)
        region.refresh(force=True)
        dropped = region.nodes["w1"].transport
        registry.deregister("w1")
        owners = {region.node_for(pid).node_id for pid in range(200)}
        assert owners == {"w0"}
        assert dropped.closed

    def test_heartbeat_timeout_eviction_reroutes(self, registry, clock):
        generations = {
            node_id: registry.register(node_id, "h", 1)["generation"]
            for node_id in ("w0", "w1")
        }
        region = _make_region(registry)
        # Find a profile id currently owned by w1, then let w1 go stale.
        victim_pid = next(
            pid for pid in range(1_000)
            if region.node_for(pid).node_id == "w1"
        )
        clock.advance(800)
        registry.heartbeat("w0", generations["w0"])
        clock.advance(300)  # w1 stale, w0 alive
        assert region.node_for(victim_pid).node_id == "w0"

    def test_unchanged_member_keeps_its_transport(self, registry):
        registry.register("w0", "h", 1)
        region = _make_region(registry)
        original = region.nodes["w0"].transport
        registry.register("w1", "h", 2)  # membership change, w0 unchanged
        region.refresh(force=True)
        assert region.nodes["w0"].transport is original
        assert not original.closed

    def test_reregistered_member_gets_fresh_transport(self, registry):
        registry.register("w0", "h", 1)
        region = _make_region(registry)
        original = region.nodes["w0"].transport
        registry.deregister("w0")
        registry.register("w0", "h", 2)  # same id, new port
        region.refresh(force=True)
        replacement = region.nodes["w0"].transport
        assert replacement is not original
        assert original.closed and replacement.port == 2

    def test_steady_state_does_not_rebuild(self, registry):
        registry.register("w0", "h", 1)
        region = _make_region(registry)
        refreshes = region.refreshes
        for pid in range(100):
            region.node_for(pid)
        assert region.refreshes == refreshes  # epoch never moved


@pytest.fixture
def replicated(clock: SimulatedClock) -> NodeRegistry:
    return NodeRegistry(
        clock=clock, ttl_ms=1_000.0, replication_factor=2,
        tombstone_ttl_ms=10_000.0,
    )


class TestRosterAndPromotion:
    def test_factor_validated_and_published(self, clock):
        with pytest.raises(ValueError, match="replication_factor"):
            NodeRegistry(clock=clock, replication_factor=0)
        registry = NodeRegistry(clock=clock, replication_factor=2)
        reply = registry.register("w0", "h", 1)
        assert reply["replication_factor"] == 2
        assert registry.members()["replication_factor"] == 2

    def test_eviction_tombstones_keep_the_roster_stable(
        self, replicated, clock
    ):
        replicated.register("w0", "h", 1)
        generation = replicated.register("w1", "h", 2)["generation"]
        clock.advance(800)
        replicated.heartbeat("w1", generation)
        clock.advance(300)  # w0 stale
        snapshot = replicated.members()
        assert [m["node_id"] for m in snapshot["members"]] == ["w1"]
        roster = {e["node_id"]: e["live"] for e in snapshot["roster"]}
        assert roster == {"w0": False, "w1": True}

    def test_eviction_with_survivors_counts_a_promotion(
        self, replicated, clock
    ):
        replicated.register("w0", "h", 1)
        generation = replicated.register("w1", "h", 2)["generation"]
        clock.advance(800)
        replicated.heartbeat("w1", generation)
        clock.advance(300)
        replicated.sweep()
        assert replicated.promotions == 1
        assert replicated.promotion_log[-1][0] == "w0"
        assert replicated.members()["promotions"] == 1

    def test_last_member_dying_is_an_outage_not_a_promotion(
        self, replicated, clock
    ):
        replicated.register("w0", "h", 1)
        clock.advance(2_000)
        replicated.sweep()
        assert replicated.evictions == 1
        assert replicated.promotions == 0

    def test_reregistration_clears_the_tombstone(self, replicated, clock):
        replicated.register("w0", "h", 1)
        replicated.register("w1", "h", 2)
        clock.advance(2_000)
        replicated.sweep()  # both evicted
        replicated.register("w0", "h", 1)
        roster = {
            e["node_id"]: e["live"]
            for e in replicated.members()["roster"]
        }
        assert roster == {"w0": True, "w1": False}

    def test_tombstone_expires_after_ttl_and_bumps_epoch(
        self, replicated, clock
    ):
        replicated.register("w0", "h", 1)
        generation = replicated.register("w1", "h", 2)["generation"]
        clock.advance(1_100)
        replicated.heartbeat("w1", generation)  # sweeps: w0 tombstoned
        assert any(
            e["node_id"] == "w0" and not e["live"]
            for e in replicated.members()["roster"]
        )
        epoch_before = replicated.epoch
        # Keep w1 alive in sub-TTL steps until the tombstone TTL (10s)
        # elapses; placement then finally forgets w0.
        for _ in range(14):
            clock.advance(800)
            replicated.heartbeat("w1", generation)
        assert all(
            e["node_id"] != "w0" for e in replicated.members()["roster"]
        )
        assert replicated.epoch > epoch_before

    def test_heartbeat_reports_republished_and_gauged(self, replicated):
        from repro.obs.registry import MetricsRegistry

        generation = replicated.register("w0", "h", 1)["generation"]
        replicated.register("w1", "h", 2)
        report = {
            "lag": {"w1": 7}, "handoff_depth": 3, "last_seq": 40,
            "delta_bytes": 900, "repair_bytes": 120,
        }
        assert replicated.heartbeat("w0", generation, report=report)
        assert replicated.members()["reports"]["w0"] == report
        assert replicated.replica_lag() == {"w0": {"w1": 7}}
        metrics = MetricsRegistry()
        replicated.publish_metrics(metrics)
        lag = metrics.gauge(
            "replication_lag_ops", layer="net", node="w0", peer="w1"
        )
        assert lag.value == 7
        assert metrics.gauge(
            "replication_handoff_depth", node="w0"
        ).value == 3


class TestChurnKeepsRangesCovered:
    """Membership churn with R=2: every range keeps >= 1 live holder."""

    def _owner_sets(self, registry, factor=2, keys=200):
        from repro.cluster.hashring import ConsistentHashRing

        snapshot = registry.members()
        ring = ConsistentHashRing(64)
        for entry in snapshot["roster"]:
            ring.add_node(entry["node_id"])
        live = {m["node_id"] for m in snapshot["members"]}
        return {
            pid: set(ring.nodes_for(pid, factor))
            for pid in range(keys)
        }, live

    def test_join_leave_mid_churn_never_drops_a_range_dark(
        self, replicated, clock
    ):
        generations = {
            node_id: replicated.register(node_id, "h", 1)["generation"]
            for node_id in ("w0", "w1", "w2")
        }
        previous, live = self._owner_sets(replicated)
        # Churn: a join, a crash-eviction, and a graceful leave, with the
        # owner sets recomputed after every step.
        def beat(*node_ids):
            for node_id in node_ids:
                replicated.heartbeat(node_id, generations[node_id])

        generations["w3"] = replicated.register("w3", "h", 4)["generation"]

        def crash_w0():
            # Survivors beat in sub-TTL steps; w0 falls silent and is
            # evicted once its last beat is > ttl old.
            for _ in range(2):
                clock.advance(600)
                beat("w1", "w2", "w3")

        steps = [
            crash_w0,
            lambda: replicated.deregister("w2"),
            lambda: (clock.advance(500), beat("w1", "w3")),
        ]
        for step in steps:
            step()
            owners, live = self._owner_sets(replicated)
            for pid, owner_set in owners.items():
                assert owner_set & live, (
                    f"key {pid} lost every live holder: {owner_set}"
                )
                # Placement moves gradually: consecutive owner sets always
                # overlap, so at least one holder carries the data across
                # the transition (no epoch where all copies are new).
                assert owner_set & previous[pid], (
                    f"key {pid} owner set fully replaced in one epoch"
                )
            previous = owners
