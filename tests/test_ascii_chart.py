"""Tests for the ASCII chart renderer and the figures tool."""

import pytest

from repro.sim.ascii_chart import Series, render_chart


class TestRenderChart:
    def test_empty_series(self):
        assert "(no data)" in render_chart("t", [Series("s", [])])

    def test_title_and_legend_present(self):
        chart = render_chart(
            "My Chart", [Series("alpha", [(0, 1), (1, 2)], "#")]
        )
        assert chart.startswith("My Chart")
        assert "# alpha" in chart

    def test_axis_labels(self):
        chart = render_chart(
            "t", [Series("s", [(0, 5), (10, 15)])],
            x_label="hours", y_label="ms",
        )
        assert "(hours)" in chart
        assert "y: ms" in chart
        assert "x: 0 .. 10" in chart

    def test_y_bounds_annotated(self):
        chart = render_chart("t", [Series("s", [(0, 5), (1, 15)])])
        assert "15" in chart and "5" in chart

    def test_explicit_y_range(self):
        chart = render_chart(
            "t", [Series("s", [(0, 85), (1, 86)])], y_min=0.0, y_max=100.0
        )
        assert "100" in chart and "0 |" in chart

    def test_markers_placed_for_each_series(self):
        chart = render_chart(
            "t",
            [
                Series("low", [(0, 0), (1, 0)], "."),
                Series("high", [(0, 10), (1, 10)], "#"),
            ],
        )
        lines = chart.splitlines()
        # '#' rows are above '.' rows.
        first_hash = next(i for i, line in enumerate(lines) if "#" in line and "|" in line)
        first_dot = next(i for i, line in enumerate(lines) if "." in line and "|" in line)
        assert first_hash < first_dot

    def test_flat_series_does_not_crash(self):
        chart = render_chart("t", [Series("s", [(0, 7), (5, 7)])])
        assert "7" in chart

    def test_dimensions_respected(self):
        chart = render_chart(
            "t", [Series("s", [(0, 0), (1, 1)])], width=20, height=5
        )
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 5
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) <= 20


class TestFiguresTool:
    def test_cli_runs_and_mentions_every_figure(self, capsys):
        from repro.tools.figures import main

        code = main(["--days", "1", "--nodes", "200"])
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Fig 16a", "Fig 16b", "Fig 17", "Fig 18", "Fig 19a", "Fig 19b"):
            assert figure in out
        assert "isolation" in out
