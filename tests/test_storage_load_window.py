"""Tests for window-scoped slice loading in fine-grained persistence."""

import pytest

from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.errors import StorageError
from repro.storage import FineGrainedPersistence, InMemoryKVStore

SUM = get_aggregate("sum")


@pytest.fixture
def stored_profile():
    """A 20-slice profile flushed through fine-grained persistence."""
    store = InMemoryKVStore()
    manager = FineGrainedPersistence(store, "t")
    profile = ProfileData(1, 1000)
    for hour in range(20):
        profile.add(hour * 3_600_000, 1, 0, hour, [hour + 1], SUM)
    manager.flush(profile)
    return manager, profile


class TestLoadWindow:
    def test_loads_only_overlapping_slices(self, stored_profile):
        manager, profile = stored_profile
        baseline_reads = manager.stats.slices_loaded
        window_start = 5 * 3_600_000
        window_end = 8 * 3_600_000
        partial = manager.load_window(1, window_start, window_end)
        assert partial is not None
        loaded = manager.stats.slices_loaded - baseline_reads
        assert loaded < profile.slice_count()
        # Every loaded slice overlaps the window.
        for profile_slice in partial.slices:
            assert profile_slice.overlaps(window_start, window_end)

    def test_window_data_matches_full_load(self, stored_profile):
        manager, _ = stored_profile
        window_start = 3 * 3_600_000
        window_end = 10 * 3_600_000
        partial = manager.load_window(1, window_start, window_end)
        full = manager.load(1)
        partial_fids = {
            stat.fid
            for s in partial.slices_in_window(window_start, window_end)
            for stat in s.features(1, 0)
        }
        full_fids = {
            stat.fid
            for s in full.slices_in_window(window_start, window_end)
            for stat in s.features(1, 0)
        }
        assert partial_fids == full_fids

    def test_bytes_read_scale_with_window(self, stored_profile):
        manager, _ = stored_profile
        small_manager_reads = manager.stats.bytes_read
        manager.load_window(1, 0, 2 * 3_600_000)
        small = manager.stats.bytes_read - small_manager_reads
        large_baseline = manager.stats.bytes_read
        manager.load(1)
        large = manager.stats.bytes_read - large_baseline
        assert small < large

    def test_missing_profile_is_none(self, stored_profile):
        manager, _ = stored_profile
        assert manager.load_window(999, 0, 1000) is None

    def test_empty_window_rejected(self, stored_profile):
        manager, _ = stored_profile
        with pytest.raises(StorageError):
            manager.load_window(1, 5000, 5000)

    def test_window_outside_history_is_empty_profile(self, stored_profile):
        manager, _ = stored_profile
        partial = manager.load_window(1, 10**12, 10**12 + 1000)
        assert partial is not None
        assert partial.slice_count() == 0
