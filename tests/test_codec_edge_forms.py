"""Targeted coverage of codec wire-format edge forms.

The compression framing has three literal-length encodings (inline,
1-byte extension, 2-byte extension) and copy splitting at 64 bytes; the
profile codec has the int64 zigzag corners.  These tests hit each form
explicitly so a framing regression cannot hide behind the random
round-trip property tests.
"""

import pytest

from repro.core.feature import INT64_MAX, INT64_MIN
from repro.storage.compression import compress, decompress


def incompressible(length: int, seed: int = 1234) -> bytes:
    """Pseudo-random bytes with no 4-byte repeats (forces literal runs)."""
    out = bytearray()
    state = seed
    while len(out) < length:
        state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
        out.extend(state.to_bytes(8, "little"))
    return bytes(out[:length])


class TestLiteralLengthForms:
    @pytest.mark.parametrize("length", [1, 59, 60, 61])
    def test_inline_form_boundaries(self, length):
        data = incompressible(length)
        assert decompress(compress(data)) == data

    @pytest.mark.parametrize("length", [62, 100, 316])
    def test_one_byte_extension_form(self, length):
        data = incompressible(length)
        assert decompress(compress(data)) == data

    @pytest.mark.parametrize("length", [317, 1000, 0xFFFF + 61])
    def test_two_byte_extension_form(self, length):
        data = incompressible(length)
        assert decompress(compress(data)) == data

    def test_run_longer_than_max_single_literal(self):
        length = (0xFFFF + 61) * 2 + 17
        data = incompressible(length)
        assert decompress(compress(data)) == data


class TestCopyForms:
    @pytest.mark.parametrize("run", [4, 63, 64, 65, 128, 1000])
    def test_copy_split_boundaries(self, run):
        """Match lengths around the 64-byte copy cap."""
        data = b"ABCD" + b"\x00" * run + b"ABCD" + b"\x00" * run
        assert decompress(compress(data)) == data

    def test_maximum_offset_match(self):
        """A repeat exactly at the 64 KiB offset window edge."""
        filler = incompressible(65536 - 8)
        data = b"NEEDLE!!" + filler + b"NEEDLE!!"
        assert decompress(compress(data)) == data

    def test_overlapping_copy_run(self):
        """Runs compress via self-overlapping copies (offset < length)."""
        data = b"x" * 5000
        blob = compress(data)
        assert len(blob) < 300
        assert decompress(blob) == data


class TestZigzagCorners:
    def test_int64_extremes_roundtrip_through_profile_codec(self):
        from repro.core.aggregate import get_aggregate
        from repro.core.profile import ProfileData
        from repro.storage.serialization import (
            deserialize_profile,
            serialize_profile,
        )

        profile = ProfileData(1, 1000)
        profile.add(1000, 1, 0, 1, [INT64_MAX, INT64_MIN], get_aggregate("sum"))
        decoded = deserialize_profile(serialize_profile(profile))
        stat = list(decoded.slices[0].features(1, 0))[0]
        assert stat.counts == [INT64_MAX, INT64_MIN]


class TestCatalogCollisions:
    def test_no_collisions_over_many_literals(self):
        """64-bit fids over 50k distinct literals: collisions would be a
        catalog-breaking bug at any realistic corpus size."""
        from repro.catalog import FeatureCatalog

        catalog = FeatureCatalog(salt="collision-check")
        fids = {catalog.fid(f"feature-{index}") for index in range(50_000)}
        assert len(fids) == 50_000

    def test_bucket_space_handles_realistic_slot_counts(self):
        from repro.catalog import FeatureCatalog

        catalog = FeatureCatalog()
        slots = {catalog.slot(f"slot-{index}") for index in range(1000)}
        assert len(slots) == 1000
