"""Concurrency stress and failure-injection tests.

These exercise the whole node stack — serving threads, the GCache swap
and flush workers, and the maintenance pool — concurrently, and inject
storage failures mid-flight to check that retries and write-back
semantics hold up under fire.
"""

import threading
import time

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import StorageError
from repro.server.node import IPSNode
from repro.storage import FailureInjector, InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


class TestConcurrentServing:
    def test_readers_writers_and_background_workers(self):
        """No exceptions, no lost dirty data under full concurrency."""
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode(
            "n0", config, InMemoryKVStore(), clock=clock,
            cache_capacity_bytes=512 * 1024,
            isolation_enabled=True,
        )
        node.start_background(num_swap_threads=1, interval_s=0.005)
        pool = node.maintenance_pool(max_parallelism=2)
        pool.start(interval_s=0.005)
        errors: list[Exception] = []
        stop = threading.Event()

        def writer(base: int) -> None:
            try:
                index = 0
                while not stop.is_set():
                    node.add_profile(
                        base + index % 50, NOW - (index % 100) * MILLIS_PER_HOUR,
                        1, 0, index % 20, {"click": 1},
                    )
                    index += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def reader(base: int) -> None:
            try:
                index = 0
                while not stop.is_set():
                    node.get_profile_topk(
                        base + index % 50, 1, 0, WINDOW,
                        SortType.ATTRIBUTE, 5, sort_attribute="click",
                    )
                    index += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def merger() -> None:
            try:
                while not stop.is_set():
                    node.merge_write_table()
                    time.sleep(0.002)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = (
            [threading.Thread(target=writer, args=(base * 100,)) for base in range(2)]
            + [threading.Thread(target=reader, args=(base * 100,)) for base in range(2)]
            + [threading.Thread(target=merger)]
        )
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        pool.stop()
        node.stop_background()
        node.shutdown()
        assert not errors
        # Write-back completeness: everything dirty was flushed.
        assert node.cache.dirty.total_entries() == 0
        assert node.stats.writes > 0 and node.stats.reads > 0

    def test_merge_concurrent_with_reload_config(self):
        """Hot reload racing with writes/merges must not corrupt profiles."""
        from repro.config import TimeDimensionConfig

        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode("n0", config, InMemoryKVStore(), clock=clock)
        errors: list[Exception] = []
        stop = threading.Event()

        def churner() -> None:
            try:
                index = 0
                while not stop.is_set():
                    node.add_profile(
                        index % 10, NOW - index % 1000, 1, 0, index % 5,
                        {"click": 1},
                    )
                    node.merge_write_table()
                    index += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        coarse = TimeDimensionConfig.from_mapping(
            {"1m": ("0s", "1h"), "1d": ("1h", "365d")}
        )
        fine = TimeDimensionConfig.production_default()
        thread = threading.Thread(target=churner)
        thread.start()
        for round_index in range(20):
            node.reload_config(
                time_dimension=coarse if round_index % 2 else fine
            )
            node.run_maintenance()
            time.sleep(0.005)
        stop.set()
        thread.join(timeout=5.0)
        assert not errors
        for profile in node.engine.table.profiles():
            profile.invariant_check()


class TestFailureInjection:
    def test_storage_outage_then_recovery(self):
        """During an outage dirty data stays cached; it drains afterwards."""
        clock = SimulatedClock(NOW)
        injector = FailureInjector()
        store = InMemoryKVStore(failure_injector=injector)
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode(
            "n0", config, store, clock=clock, isolation_enabled=False
        )
        for profile_id in range(20):
            node.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        injector.fail_next(1_000)
        flushed_during_outage = node.cache.run_flush_once()
        assert flushed_during_outage == 0
        assert node.cache.dirty.total_entries() == 20
        injector.fail_next(0)
        # Burn any remaining forced failures deterministically.
        while True:
            try:
                store.set(b"probe", b"x")
                break
            except StorageError:
                continue
        assert node.cache.flush_all() == 20
        assert len(store) >= 20

    def test_cache_miss_during_outage_propagates_then_recovers(self):
        clock = SimulatedClock(NOW)
        injector = FailureInjector()
        store = InMemoryKVStore(failure_injector=injector)
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode("n0", config, store, clock=clock, isolation_enabled=False)
        node.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        node.shutdown()
        node.cache._evict(1)  # Force the next read through storage.
        injector.fail_next(1)
        with pytest.raises(StorageError):
            node.get_profile_topk(1, 1, 0, WINDOW)
        # Next attempt succeeds.
        assert node.get_profile_topk(1, 1, 0, WINDOW)

    def test_client_retries_mask_transient_storage_errors(self):
        """A single-node storage blip becomes a retry, not a client error."""
        from repro.cluster import IPSCluster

        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        client = cluster.client("app", )
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        # Evict so the read must touch storage, then make storage flaky
        # for exactly one operation.
        owner = cluster.region.node_for(1)
        owner.cache._evict(1)
        flaky = FailureInjector()
        original_store = owner.persistence._store
        owner.persistence._store = InMemoryKVStore(failure_injector=flaky)
        # Copy the data across so the retry target has it.
        for key in original_store.keys():
            owner.persistence._store.set(key, original_store.get(key))
        flaky.fail_next(1)
        results = client.get_profile_topk(1, 1, 0, WINDOW)
        # The retry hit the same node again (storage recovered) or the
        # ring's next owner; either way the client saw success.
        assert results and results[0].fid == 1
        assert client.stats.retries >= 1
        assert client.stats.read_errors == 0
