"""End-to-end tracing: one traced request yields the full span tree.

The acceptance scenario from the observability issue: a traced
``multi_get_topk`` through the :class:`~repro.cluster.client.IPSClient`
over RPC-proxied nodes produces a span tree with at least client,
per-shard RPC, node, cache, and (on miss) storage spans, with durations
summing consistently.
"""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.server.proxy import RPCNodeProxy
from repro.server.rpc import LatencyModel

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)
NUM_NODES = 3
POPULATION = 24


@pytest.fixture
def traced_cluster():
    clock = SimulatedClock(NOW)
    registry = MetricsRegistry()
    tracer = Tracer(clock=clock, registry=registry)
    config = TableConfig(name="t", attributes=("click",))
    cluster = IPSCluster(
        config, num_nodes=NUM_NODES, clock=clock,
        tracer=tracer, registry=registry,
    )
    for node_id in list(cluster.region.nodes):
        cluster.region.nodes[node_id] = RPCNodeProxy(
            cluster.region.nodes[node_id],
            clock,
            LatencyModel(jitter_ms=0.0),
            tracer=tracer,
            registry=registry,
        )
    client = cluster.client("app")
    for profile_id in range(POPULATION):
        client.add_profile(profile_id, NOW - 1000, 1, 1, 7, {"click": 2})
    cluster.run_background_cycle()
    return cluster, client, tracer, registry


class TestTracedMultiGet:
    def test_span_tree_covers_every_layer(self, traced_cluster):
        cluster, client, tracer, _ = traced_cluster
        tracer.take_roots()
        outcome = client.multi_get_topk(
            list(range(POPULATION)), 1, 1, WINDOW, SortType.TOTAL, k=5
        )
        assert all(result.ok for result in outcome)

        roots = tracer.take_roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "client.multi_get_topk"
        assert root.tags["keys"] == POPULATION

        # One rpc.call child per shard the batch fanned out to.
        rpc_spans = root.find("rpc.call")
        assert len(rpc_spans) == root.tags["shard_calls"]
        assert 1 < len(rpc_spans) <= NUM_NODES
        assert {span.tags["node"] for span in rpc_spans} <= set(
            cluster.region.nodes
        )

        # Every hop carries a node-dispatch span with a cache probe inside.
        node_spans = root.find("node.multi_get_topk")
        assert len(node_spans) == len(rpc_spans)
        assert sum(span.tags["keys"] for span in node_spans) == POPULATION
        cache_spans = root.find("cache.get_many")
        assert len(cache_spans) == len(rpc_spans)
        assert sum(span.tags["hits"] for span in cache_spans) == POPULATION

    def test_storage_span_on_cache_miss(self, traced_cluster):
        cluster, client, tracer, _ = traced_cluster
        # Replace every node with a cold-cache twin over the same store
        # (same node ids, so ring routing is unchanged): the batch read
        # must fetch everything from storage.
        from repro.server.node import IPSNode

        clock = cluster.clock
        for node_id in list(cluster.region.nodes):
            cold = IPSNode(
                node_id, cluster.config, cluster.store, clock=clock,
                tracer=tracer,
            )
            cluster.region.nodes[node_id] = RPCNodeProxy(
                cold, clock, LatencyModel(jitter_ms=0.0), tracer=tracer
            )
        tracer.take_roots()
        outcome = client.multi_get_topk(
            list(range(POPULATION)), 1, 1, WINDOW, SortType.TOTAL, k=5
        )
        assert all(result.ok for result in outcome)
        root = tracer.take_roots()[0]
        storage_spans = root.find("storage.load")
        assert len(storage_spans) == POPULATION
        # Misses are visible on the cache span and the loads hang below it.
        cache_spans = root.find("cache.get_many")
        assert sum(span.tags["misses"] for span in cache_spans) == POPULATION
        for span in cache_spans:
            assert len(span.find("storage.load")) == span.tags["misses"]

    def test_durations_sum_consistently(self, traced_cluster):
        _, client, tracer, _ = traced_cluster
        tracer.take_roots()
        client.multi_get_topk(
            list(range(POPULATION)), 1, 1, WINDOW, SortType.TOTAL, k=5
        )
        root = tracer.take_roots()[0]
        # Every parent's perf duration bounds the sum of its children's.
        for span in root.iter_spans():
            if span.children:
                assert span.duration_ms >= sum(
                    child.duration_ms for child in span.children
                ) * (1 - 1e-6)

    def test_rpc_spans_carry_modelled_latency_tags(self, traced_cluster):
        _, client, tracer, _ = traced_cluster
        tracer.take_roots()
        client.multi_get_topk(
            list(range(POPULATION)), 1, 1, WINDOW, SortType.TOTAL, k=5
        )
        root = tracer.take_roots()[0]
        for span in root.find("rpc.call"):
            # Modelled client latency = 3 ms network base + server time.
            assert span.tags["client_ms"] >= 3.0
            assert span.tags["client_ms"] >= span.tags["server_ms"]

    def test_registry_sees_read_and_write_paths(self, traced_cluster):
        _, client, _, registry = traced_cluster
        client.get_profile_topk(1, 1, 1, WINDOW, SortType.TOTAL, k=5)
        client.multi_get_topk([1, 2, 3], 1, 1, WINDOW, SortType.TOTAL, k=5)
        assert registry.get("client_write_ms", caller="app").count == POPULATION
        assert registry.get("client_read_ms", caller="app").count == 1
        assert registry.get("client_multi_get_ms", caller="app").count >= 1
        for node_id in ("local-node-0", "local-node-1", "local-node-2"):
            assert registry.get("rpc_client_ms", node=node_id) is not None

    def test_single_read_has_engine_span(self, traced_cluster):
        _, client, tracer, _ = traced_cluster
        tracer.take_roots()
        client.get_profile_topk(1, 1, 1, WINDOW, SortType.TOTAL, k=5)
        root = tracer.take_roots()[0]
        assert root.name == "client.get_profile_topk"
        assert root.find("node.get_profile_topk")
        assert root.find("cache.get")
        assert root.find("engine.execute")
