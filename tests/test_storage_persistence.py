"""Tests for bulk and fine-grained persistence (Figs. 12-14)."""

import threading

import pytest

from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.errors import VersionConflictError
from repro.storage import (
    BulkPersistence,
    FineGrainedPersistence,
    InMemoryKVStore,
)

SUM = get_aggregate("sum")


def make_profile(profile_id=1, writes=50):
    profile = ProfileData(profile_id, 1000)
    for index in range(writes):
        profile.add(
            1_000_000 + index * 2000, index % 3, index % 2, index % 11,
            [1, index], SUM,
        )
    return profile


@pytest.fixture(params=["bulk", "fine"])
def persistence(request):
    store = InMemoryKVStore()
    if request.param == "bulk":
        return BulkPersistence(store, "t"), store
    return FineGrainedPersistence(store, "t"), store


class TestCommonBehaviour:
    def test_flush_load_roundtrip(self, persistence):
        manager, _ = persistence
        original = make_profile()
        manager.flush(original)
        loaded = manager.load(1)
        assert loaded.profile_id == 1
        assert loaded.feature_count() == original.feature_count()
        assert loaded.slice_count() == original.slice_count()

    def test_load_missing_is_none(self, persistence):
        manager, _ = persistence
        assert manager.load(42) is None

    def test_reflush_overwrites(self, persistence):
        manager, _ = persistence
        profile = make_profile(writes=5)
        manager.flush(profile)
        profile.add(9_999_999, 1, 1, 77, [3, 0], SUM)
        manager.flush(profile)
        loaded = manager.load(1)
        assert loaded.feature_count() == profile.feature_count()

    def test_delete_removes_everything(self, persistence):
        manager, store = persistence
        manager.flush(make_profile())
        manager.delete(1)
        assert manager.load(1) is None
        assert len(store) == 0

    def test_delete_missing_is_noop(self, persistence):
        manager, _ = persistence
        manager.delete(999)

    def test_multiple_profiles_are_isolated(self, persistence):
        manager, _ = persistence
        manager.flush(make_profile(1, writes=5))
        manager.flush(make_profile(2, writes=10))
        assert manager.load(1).feature_count() == 5
        assert manager.load(2).feature_count() == 10

    def test_stats_track_traffic(self, persistence):
        manager, _ = persistence
        manager.flush(make_profile())
        manager.load(1)
        assert manager.stats.profiles_flushed == 1
        assert manager.stats.profiles_loaded == 1
        assert manager.stats.bytes_written > 0
        assert manager.stats.bytes_read > 0


class TestBulkSpecifics:
    def test_single_key_per_profile(self):
        store = InMemoryKVStore()
        manager = BulkPersistence(store, "t")
        manager.flush(make_profile())
        assert len(store) == 1

    def test_serialized_size_under_paper_bound(self):
        """§III-E: a typical serialized+compressed profile is < 40 KB."""
        store = InMemoryKVStore()
        manager = BulkPersistence(store, "t")
        profile = make_profile(writes=500)
        assert manager.serialized_size(profile) < 40 * 1024


class TestFineGrainedSpecifics:
    def test_meta_plus_slice_keys(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        profile = make_profile(writes=20)
        manager.flush(profile)
        # One meta record + one key per slice.
        assert len(store) == 1 + profile.slice_count()

    def test_reflush_garbage_collects_old_slices(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        profile = make_profile(writes=20)
        manager.flush(profile)
        first_keys = len(store)
        manager.flush(profile)
        # Orphaned slice values from flush #1 were deleted.
        assert len(store) == first_keys

    def test_meta_version_advances_per_flush(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        profile = make_profile(writes=5)
        manager.flush(profile)
        version_1 = store.xget(b"t/m/1").version
        manager.flush(profile)
        assert store.xget(b"t/m/1").version == version_1 + 1

    def test_concurrent_flushers_converge(self):
        """Fig. 14: racing flushes retry on version conflict; the final
        state is one complete flush, never an interleaving."""
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        profile = make_profile(writes=30)
        errors = []

        def flusher():
            try:
                for _ in range(5):
                    manager.flush(profile)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=flusher) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        loaded = manager.load(1)
        assert loaded.feature_count() == profile.feature_count()

    def test_conflict_counted_in_stats(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        profile = make_profile(writes=3)
        manager.flush(profile)
        # Sabotage: bump the meta version behind the manager's back between
        # its xget and xset by pre-writing with the plain API.
        meta = store.xget(b"t/m/1")
        store.set(b"t/m/1", meta.value)

        # The next flush reads version N, another bump happens, conflict.
        class RacingStore:
            def __init__(self, inner):
                self._inner = inner
                self._raced = False

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def xset(self, key, value, held):
                if not self._raced and key == b"t/m/1":
                    self._raced = True
                    current = self._inner.xget(key)
                    self._inner.set(key, current.value)  # Version bump.
                return self._inner.xset(key, value, held)

        racing_manager = FineGrainedPersistence(RacingStore(store), "t")
        racing_manager.flush(profile)
        assert racing_manager.stats.version_conflicts == 1
        assert racing_manager.load(1).feature_count() == profile.feature_count()

    def test_gives_up_after_max_retries(self):
        store = InMemoryKVStore()
        # Seed a valid meta record so the conflicting rewrites stay
        # decodable.
        FineGrainedPersistence(store, "t").flush(make_profile(writes=2))

        class AlwaysConflicting:
            def __getattr__(self, name):
                return getattr(store, name)

            def xset(self, key, value, held):
                # Bump the version right before every fenced write so the
                # held version is always stale.
                current = store.xget(key)
                store.set(key, current.value)
                return store.xset(key, value, held)

        manager = FineGrainedPersistence(AlwaysConflicting(), "t", max_retries=2)
        with pytest.raises(VersionConflictError):
            manager.flush(make_profile(writes=2))
        assert manager.stats.version_conflicts == 2


class TestStoredProfileIds:
    def test_enumerates_flushed_profiles(self, persistence):
        manager, _ = persistence
        for profile_id in (3, 7, 11):
            manager.flush(make_profile(profile_id, writes=4))
        assert manager.stored_profile_ids() == {3, 7, 11}

    def test_empty_store(self, persistence):
        manager, _ = persistence
        assert manager.stored_profile_ids() == set()

    def test_ignores_other_tables(self):
        store = InMemoryKVStore()
        BulkPersistence(store, "t").flush(make_profile(1, writes=2))
        BulkPersistence(store, "other").flush(make_profile(2, writes=2))
        assert BulkPersistence(store, "t").stored_profile_ids() == {1}


class TestOrphanSweep:
    def test_mid_flush_failure_leaks_slices_and_sweep_reclaims(self):
        """Regression: a flush dying between the slice writes and the meta
        fence used to leak the fresh slice keys forever."""
        from repro.errors import StorageError

        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        manager.flush(make_profile(1, writes=6))
        keys_after_clean_flush = len(list(store.keys()))

        class MetaFenceFails:
            def __init__(self, inner):
                self._inner = inner
                self.armed = True

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def xset(self, key, value, held):
                if self.armed and key.startswith(b"t/m/"):
                    self.armed = False
                    raise StorageError("injected death before meta fence")
                return self._inner.xset(key, value, held)

        failing = FineGrainedPersistence(MetaFenceFails(store), "t")
        # Keep slice-id allocation disjoint from the first manager's.
        failing._next_slice_id = 1000
        with pytest.raises(StorageError):
            failing.flush(make_profile(2, writes=6))

        leaked = len(list(store.keys())) - keys_after_clean_flush
        assert leaked > 0  # Slices written, meta never published.
        assert manager.load(2) is None

        swept = manager.sweep_orphans()
        assert swept == leaked
        assert manager.stats.orphan_slices_swept == leaked
        assert len(list(store.keys())) == keys_after_clean_flush
        # The surviving profile is untouched.
        assert manager.load(1).feature_count() > 0

    def test_sweep_on_clean_store_is_noop(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        manager.flush(make_profile(1, writes=4))
        assert manager.sweep_orphans() == 0
        assert manager.load(1).feature_count() > 0

    def test_sweep_ignores_unparsable_slice_keys(self):
        store = InMemoryKVStore()
        manager = FineGrainedPersistence(store, "t")
        store.set(b"t/s/not-a-number", b"junk")
        assert manager.sweep_orphans() == 0
        assert store.get(b"t/s/not-a-number") == b"junk"
