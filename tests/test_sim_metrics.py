"""Tests for percentile/histogram/time-series metric primitives."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.metrics import LatencyHistogram, TimeSeries, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        data = [float(value) for value in range(100)]
        assert percentile(data, 0) == 0.0
        assert percentile(data, 100) == 99.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
        st.floats(min_value=0, max_value=100),
    )
    def test_result_within_sample_range(self, samples, q):
        result = percentile(samples, q)
        assert min(samples) <= result <= max(samples)


class TestLatencyHistogram:
    def test_quantiles_approximate_exact(self):
        rng = random.Random(0)
        samples = [rng.lognormvariate(0.0, 0.5) for _ in range(50_000)]
        histogram = LatencyHistogram()
        histogram.record_many(samples)
        exact_p50 = percentile(samples, 50)
        exact_p99 = percentile(samples, 99)
        # Log-bucketed: within the 5% bucket growth factor (plus slack).
        assert abs(histogram.p50 - exact_p50) / exact_p50 < 0.08
        assert abs(histogram.p99 - exact_p99) / exact_p99 < 0.08

    def test_mean_and_count(self):
        histogram = LatencyHistogram()
        histogram.record_many([1.0, 2.0, 3.0])
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.max == 3.0

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_out_of_range_values_clamp_to_edges(self):
        histogram = LatencyHistogram(min_ms=1.0, max_ms=100.0)
        histogram.record(0.0001)
        histogram.record(1e9)
        assert histogram.count == 2
        assert histogram.quantile(0.0) <= 1.0

    def test_quantile_never_exceeds_max_seen(self):
        histogram = LatencyHistogram()
        histogram.record_many([1.0, 1.0, 1.0])
        assert histogram.p99 <= 1.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many([1.0] * 100)
        b.record_many([10.0] * 100)
        a.merge(b)
        assert a.count == 200
        assert a.p50 <= 10.0 <= a.max

    def test_merge_incompatible_layouts_rejected(self):
        a = LatencyHistogram(growth=1.05)
        b = LatencyHistogram(growth=1.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_ms=10, max_ms=5)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e4), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone_in_q(self, samples):
        histogram = LatencyHistogram()
        histogram.record_many(samples)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert all(a <= b for a, b in zip(quantiles, quantiles[1:]))


class TestTimeSeries:
    def test_append_and_aggregate(self):
        series = TimeSeries("qps")
        series.append(0, 10.0)
        series.append(1000, 20.0)
        assert len(series) == 2
        assert series.min() == 10.0
        assert series.max() == 20.0
        assert series.mean() == 15.0
        assert series.values() == [10.0, 20.0]
