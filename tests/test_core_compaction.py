"""Tests for slice compaction (Fig. 10 and the time-dimension bands)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE
from repro.config import TimeDimensionConfig
from repro.core.aggregate import get_aggregate
from repro.core.compaction import Compactor
from repro.core.profile import ProfileData

NOW = 400 * MILLIS_PER_DAY
SUM = get_aggregate("sum")


def make_compactor(mapping=None):
    config = (
        TimeDimensionConfig.from_mapping(mapping)
        if mapping is not None
        else TimeDimensionConfig.production_default()
    )
    return Compactor(config, SUM)


def profile_with_writes(timestamps, granularity_ms=1000):
    profile = ProfileData(1, granularity_ms)
    for index, timestamp in enumerate(timestamps):
        profile.add(timestamp, 1, 1, index, [1], SUM)
    return profile


class TestCompaction:
    def test_old_fine_slices_merge_to_band_granularity(self):
        # Six 1-second slices, all ~1 hour old: the "1m" band applies, so
        # all writes within one minute granule collapse into one slice.
        base = NOW - MILLIS_PER_HOUR
        base -= base % MILLIS_PER_MINUTE  # Align to a minute granule.
        timestamps = [base + offset * 1000 for offset in range(6)]
        profile = profile_with_writes(timestamps)
        assert profile.slice_count() == 6
        stats = make_compactor().compact(profile, NOW)
        assert profile.slice_count() == 1
        assert stats.merges == 5
        assert stats.slices_saved == 5

    def test_fresh_slices_stay_fine(self):
        # Writes within the last minute sit in the 1s band: no merging.
        timestamps = [NOW - offset * 1000 for offset in range(5)]
        profile = profile_with_writes(timestamps)
        before = profile.slice_count()
        make_compactor().compact(profile, NOW)
        assert profile.slice_count() == before

    def test_merging_respects_granule_boundaries(self):
        # Two writes in *different* minute granules, both ~30 minutes old
        # (inside the 1m band), must not collapse into one slice.
        base = NOW - 30 * MILLIS_PER_MINUTE
        base -= base % MILLIS_PER_MINUTE
        profile = profile_with_writes([base + 1000, base + MILLIS_PER_MINUTE + 1000])
        make_compactor().compact(profile, NOW)
        assert profile.slice_count() == 2

    def test_coarser_band_merges_across_minutes(self):
        # The same two writes two hours old sit in the 1h band, where a
        # single one-hour granule holds both: they merge.
        base = NOW - 2 * MILLIS_PER_HOUR
        base -= base % MILLIS_PER_HOUR
        profile = profile_with_writes([base + 1000, base + MILLIS_PER_MINUTE + 1000])
        make_compactor().compact(profile, NOW)
        assert profile.slice_count() == 1

    def test_counts_aggregate_across_merged_slices(self):
        base = NOW - MILLIS_PER_HOUR
        base -= base % MILLIS_PER_MINUTE
        profile = ProfileData(1, 1000)
        profile.add(base + 1000, 1, 1, 42, [2], SUM)
        profile.add(base + 3000, 1, 1, 42, [3], SUM)
        make_compactor().compact(profile, NOW)
        assert profile.slice_count() == 1
        stat = list(profile.slices[0].features(1, 1))[0]
        assert stat.counts == [5]

    def test_no_data_dropped(self):
        timestamps = [NOW - day * MILLIS_PER_DAY for day in range(0, 29)]
        profile = profile_with_writes(timestamps)
        features_before = profile.feature_count()
        make_compactor().compact(profile, NOW)
        assert profile.feature_count() == features_before

    def test_beyond_horizon_slices_left_alone(self):
        # Data older than 365d is outside every band: compaction skips it
        # (truncation's job).
        old = NOW - 370 * MILLIS_PER_DAY
        profile = profile_with_writes([old, old + 1000])
        make_compactor().compact(profile, NOW)
        assert profile.slice_count() >= 1  # Not crashed; may stay split.

    def test_partial_budget_limits_work(self):
        base = NOW - MILLIS_PER_HOUR
        base -= base % MILLIS_PER_MINUTE
        timestamps = [base + offset * 1000 for offset in range(10)]
        profile = profile_with_writes(timestamps)
        stats = make_compactor().compact(profile, NOW, partial_budget=3)
        # Only the 3 oldest slices were considered: at most 2 merges.
        assert stats.merges <= 2
        assert profile.slice_count() >= 8

    def test_partial_budget_below_two_is_noop(self):
        base = NOW - MILLIS_PER_HOUR
        base -= base % MILLIS_PER_MINUTE
        profile = profile_with_writes([base, base + 1000])
        stats = make_compactor().compact(profile, NOW, partial_budget=1)
        assert stats.merges == 0

    def test_needs_compaction_detects_mergeable_pairs(self):
        base = NOW - MILLIS_PER_HOUR
        base -= base % MILLIS_PER_MINUTE
        profile = profile_with_writes([base + 1000, base + 2000])
        assert make_compactor().needs_compaction(profile, NOW)
        make_compactor().compact(profile, NOW)
        assert not make_compactor().needs_compaction(profile, NOW)

    def test_empty_and_single_slice_profiles(self):
        compactor = make_compactor()
        empty = ProfileData(1, 1000)
        stats = compactor.compact(empty, NOW)
        assert stats.slices_before == 0 and stats.merges == 0
        single = profile_with_writes([NOW - 1000])
        stats = compactor.compact(single, NOW)
        assert stats.merges == 0

    def test_figure10_shape_six_slices_to_three(self):
        """Fig. 10: six 10-minute-band slices merging pairwise into three."""
        mapping = {"10m": ("0s", "1h"), "1h": ("1h", "24h")}
        # Six 5-minute-apart writes in the last 30 minutes, aligned so each
        # 10-minute granule holds exactly two writes.
        base = NOW - 30 * MILLIS_PER_MINUTE
        base -= base % (10 * MILLIS_PER_MINUTE)
        timestamps = [base + offset * 5 * MILLIS_PER_MINUTE for offset in range(6)]
        profile = profile_with_writes(timestamps, granularity_ms=5 * MILLIS_PER_MINUTE)
        assert profile.slice_count() == 6
        make_compactor(mapping).compact(profile, NOW)
        assert profile.slice_count() == 3

    def test_idempotent(self):
        timestamps = [NOW - day * MILLIS_PER_DAY - hour * MILLIS_PER_HOUR
                      for day in range(5) for hour in range(3)]
        profile = profile_with_writes(timestamps)
        compactor = make_compactor()
        compactor.compact(profile, NOW)
        first = [(s.start_ms, s.end_ms) for s in profile.slices]
        compactor.compact(profile, NOW)
        second = [(s.start_ms, s.end_ms) for s in profile.slices]
        assert first == second

    @given(
        st.lists(
            st.integers(min_value=0, max_value=364 * MILLIS_PER_DAY),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_compaction_preserves_totals_and_invariants(self, ages):
        """Property: compaction never loses counts, never breaks ordering."""
        profile = ProfileData(1, 1000)
        for index, age in enumerate(ages):
            profile.add(NOW - age, 1, 1, index % 10, [1], SUM)
        total_before = sum(
            stat.total()
            for s in profile.slices
            for stat in s.features(1, 1)
        )
        make_compactor().compact(profile, NOW)
        profile.invariant_check()
        total_after = sum(
            stat.total()
            for s in profile.slices
            for stat in s.features(1, 1)
        )
        assert total_after == total_before
