"""Hypothesis stateful (model-based) tests for the stateful substrates.

Each RuleBasedStateMachine drives the real component through random
operation sequences while maintaining a trivially correct model, then
checks the component against the model as an invariant:

* GCache against a plain dict (write-back semantics: any profile ever
  put must be retrievable, from cache or through storage);
* FileKVStore against a dict (durability: a reopened store equals the
  model, including through log compaction).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache import GCache
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.storage import BulkPersistence, FileKVStore, InMemoryKVStore

SUM = get_aggregate("sum")


def _profile(profile_id: int, version: int) -> ProfileData:
    profile = ProfileData(profile_id, 1000)
    profile.add(1_000_000 + version, 1, 0, version, [1], SUM)
    return profile


class GCacheMachine(RuleBasedStateMachine):
    """Model: profile_id -> latest version number ever put/mutated."""

    @initialize()
    def setup(self) -> None:
        store = InMemoryKVStore()
        persistence = BulkPersistence(store, "t")
        self.cache = GCache(
            load_fn=persistence.load,
            flush_fn=persistence.flush,
            capacity_bytes=4000,  # Small: eviction happens constantly.
            swap_threshold=0.6,
            swap_target=0.4,
            lru_shards=4,
            dirty_shards=2,
        )
        self.model: dict[int, int] = {}
        self.version = 0

    @rule(profile_id=st.integers(min_value=0, max_value=30))
    def put_profile(self, profile_id: int) -> None:
        self.version += 1
        self.cache.put(_profile(profile_id, self.version))
        self.model[profile_id] = self.version

    @rule(profile_id=st.integers(min_value=0, max_value=30))
    def mutate_resident(self, profile_id: int) -> None:
        profile = self.cache.get_resident(profile_id)
        if profile is None:
            return
        self.version += 1
        profile.add(2_000_000 + self.version, 1, 0, self.version, [1], SUM)
        self.cache.mark_dirty(profile_id)
        self.model[profile_id] = self.version

    @rule()
    def swap(self) -> None:
        self.cache.run_swap_once()

    @rule()
    def flush(self) -> None:
        self.cache.run_flush_once()

    @rule(profile_id=st.integers(min_value=0, max_value=40))
    def read(self, profile_id: int) -> None:
        profile = self.cache.get(profile_id)
        if profile_id in self.model:
            assert profile is not None, f"profile {profile_id} lost"
            newest_fid = max(
                stat.fid
                for profile_slice in profile.slices
                for stat in profile_slice.features(1, 0)
            )
            assert newest_fid == self.model[profile_id], (
                f"profile {profile_id}: stale version {newest_fid} "
                f"!= {self.model[profile_id]}"
            )
        else:
            assert profile is None

    @invariant()
    def no_negative_accounting(self) -> None:
        assert self.cache.memory_bytes() >= 0
        assert self.cache.lru.total_entries() >= 0


TestGCacheStateful = GCacheMachine.TestCase
TestGCacheStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class FileKVStoreMachine(RuleBasedStateMachine):
    """Model: dict of key -> value, checked across reopen and compaction."""

    KEYS = [f"k{i}".encode() for i in range(12)]

    @initialize()
    def setup(self) -> None:
        import tempfile
        from pathlib import Path

        self._dir = tempfile.TemporaryDirectory()
        self.path = Path(self._dir.name) / "store.log"
        self.store = FileKVStore(self.path)
        self.model: dict[bytes, bytes] = {}

    def teardown(self) -> None:
        self.store.close()
        self._dir.cleanup()

    @rule(key=st.sampled_from(KEYS), value=st.binary(min_size=0, max_size=40))
    def set_value(self, key: bytes, value: bytes) -> None:
        self.store.set(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def delete_value(self, key: bytes) -> None:
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def reopen(self) -> None:
        """Simulated restart: close and replay the log."""
        self.store.close()
        self.store = FileKVStore(self.path)

    @rule()
    def compact(self) -> None:
        self.store.compact_log()

    @invariant()
    def store_matches_model(self) -> None:
        assert len(self.store) == len(self.model)
        for key, value in self.model.items():
            assert self.store.get(key) == value


TestFileKVStoreStateful = FileKVStoreMachine.TestCase
TestFileKVStoreStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
