"""Hypothesis stateful (model-based) tests for the stateful substrates.

Each RuleBasedStateMachine drives the real component through random
operation sequences while maintaining a trivially correct model, then
checks the component against the model as an invariant:

* GCache against a plain dict (write-back semantics: any profile ever
  put must be retrievable, from cache or through storage);
* FileKVStore against a dict (durability: a reopened store equals the
  model, including through log compaction).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache import GCache
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.storage import BulkPersistence, FileKVStore, InMemoryKVStore

SUM = get_aggregate("sum")


def _profile(profile_id: int, version: int) -> ProfileData:
    profile = ProfileData(profile_id, 1000)
    profile.add(1_000_000 + version, 1, 0, version, [1], SUM)
    return profile


class GCacheMachine(RuleBasedStateMachine):
    """Model: profile_id -> latest version number ever put/mutated."""

    @initialize()
    def setup(self) -> None:
        store = InMemoryKVStore()
        persistence = BulkPersistence(store, "t")
        self.cache = GCache(
            load_fn=persistence.load,
            flush_fn=persistence.flush,
            capacity_bytes=4000,  # Small: eviction happens constantly.
            swap_threshold=0.6,
            swap_target=0.4,
            lru_shards=4,
            dirty_shards=2,
        )
        self.model: dict[int, int] = {}
        self.version = 0

    @rule(profile_id=st.integers(min_value=0, max_value=30))
    def put_profile(self, profile_id: int) -> None:
        self.version += 1
        self.cache.put(_profile(profile_id, self.version))
        self.model[profile_id] = self.version

    @rule(profile_id=st.integers(min_value=0, max_value=30))
    def mutate_resident(self, profile_id: int) -> None:
        profile = self.cache.get_resident(profile_id)
        if profile is None:
            return
        self.version += 1
        profile.add(2_000_000 + self.version, 1, 0, self.version, [1], SUM)
        self.cache.mark_dirty(profile_id)
        self.model[profile_id] = self.version

    @rule()
    def swap(self) -> None:
        self.cache.run_swap_once()

    @rule()
    def flush(self) -> None:
        self.cache.run_flush_once()

    @rule(profile_id=st.integers(min_value=0, max_value=40))
    def read(self, profile_id: int) -> None:
        profile = self.cache.get(profile_id)
        if profile_id in self.model:
            assert profile is not None, f"profile {profile_id} lost"
            newest_fid = max(
                stat.fid
                for profile_slice in profile.slices
                for stat in profile_slice.features(1, 0)
            )
            assert newest_fid == self.model[profile_id], (
                f"profile {profile_id}: stale version {newest_fid} "
                f"!= {self.model[profile_id]}"
            )
        else:
            assert profile is None

    @invariant()
    def no_negative_accounting(self) -> None:
        assert self.cache.memory_bytes() >= 0
        assert self.cache.lru.total_entries() >= 0


TestGCacheStateful = GCacheMachine.TestCase
TestGCacheStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class FileKVStoreMachine(RuleBasedStateMachine):
    """Model: dict of key -> value, checked across reopen and compaction."""

    KEYS = [f"k{i}".encode() for i in range(12)]

    @initialize()
    def setup(self) -> None:
        import tempfile
        from pathlib import Path

        self._dir = tempfile.TemporaryDirectory()
        self.path = Path(self._dir.name) / "store.log"
        self.store = FileKVStore(self.path)
        self.model: dict[bytes, bytes] = {}

    def teardown(self) -> None:
        self.store.close()
        self._dir.cleanup()

    @rule(key=st.sampled_from(KEYS), value=st.binary(min_size=0, max_size=40))
    def set_value(self, key: bytes, value: bytes) -> None:
        self.store.set(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def delete_value(self, key: bytes) -> None:
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def reopen(self) -> None:
        """Simulated restart: close and replay the log."""
        self.store.close()
        self.store = FileKVStore(self.path)

    @rule()
    def compact(self) -> None:
        self.store.compact_log()

    @invariant()
    def store_matches_model(self) -> None:
        assert len(self.store) == len(self.model)
        for key, value in self.model.items():
            assert self.store.get(key) == value


TestFileKVStoreStateful = FileKVStoreMachine.TestCase
TestFileKVStoreStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


class ResultCacheNodeMachine(RuleBasedStateMachine):
    """A hot-read node against a dict model of its merged writes.

    Model: ``profile_id -> fid -> [per-attribute sums]`` of every write
    *visible* to reads (merged or recovered; buffered writes stay in a
    separate pending list until a merge makes them visible).  The node
    runs the full hot-read path — result cache (tiny, so LRU eviction is
    constant), singleflight, invalidation hooks — and every read must
    match the model exactly: a read served from the result cache that
    survived a write, merge, maintenance pass, cache cycle or crash
    recovery would diverge immediately.

    Sum aggregation over the full-history window makes the expected
    answer compaction-invariant, so maintenance must *not* change reads
    while writes must.
    """

    ATTRS = ("a", "b")

    @initialize()
    def setup(self) -> None:
        from repro.clock import MILLIS_PER_DAY, SimulatedClock
        from repro.config import TableConfig
        from repro.core.query import SortType
        from repro.core.timerange import TimeRange
        from repro.server import (
            CoalesceConfig,
            IPSNode,
            attach_memory_durability,
        )
        from repro.storage import InMemoryKVStore

        self.SortType = SortType
        self.now_ms = 400 * MILLIS_PER_DAY
        self.day_ms = MILLIS_PER_DAY
        self.window = TimeRange.absolute(0, self.now_ms + 1)
        self.node = IPSNode(
            "stateful",
            TableConfig(name="stateful", attributes=self.ATTRS),
            InMemoryKVStore(),
            clock=SimulatedClock(start_ms=self.now_ms),
            cache_capacity_bytes=64 * 1024,  # Small: GCache churns.
            result_cache=8,  # Tiny: result-cache eviction is constant.
            coalesce=CoalesceConfig(window_ms=0.0),
        )
        attach_memory_durability(self.node, checkpoint_interval_records=32)
        #: Visible state: profile -> fid -> [sum per attribute].
        self.model: dict[int, dict[int, list[int]]] = {}
        #: Writes buffered in the write table, invisible until merged.
        self.pending: list[tuple[int, int, dict[str, int]]] = []

    def _absorb_pending(self) -> None:
        for profile_id, fid, counts in self.pending:
            sums = self.model.setdefault(profile_id, {}).setdefault(
                fid, [0] * len(self.ATTRS)
            )
            for index, attr in enumerate(self.ATTRS):
                sums[index] += counts.get(attr, 0)
        self.pending.clear()

    @rule(
        profile_id=st.integers(min_value=0, max_value=5),
        fid=st.integers(min_value=0, max_value=9),
        day=st.integers(min_value=0, max_value=5),
        count=st.integers(min_value=1, max_value=4),
    )
    def write(self, profile_id: int, fid: int, day: int, count: int) -> None:
        counts = {self.ATTRS[fid % 2]: count}
        self.node.add_profile(
            profile_id, self.now_ms - day * self.day_ms, 1, 0, fid, counts
        )
        self.pending.append((profile_id, fid, counts))

    @rule()
    def merge(self) -> None:
        self.node.merge_write_table()
        self._absorb_pending()

    @rule()
    def maintain(self) -> None:
        """Compaction: must not change full-window sum reads."""
        self.node.run_maintenance(full=True)

    @rule()
    def cache_cycle(self) -> None:
        self.node.run_cache_cycle()

    @rule()
    def invalidate_all(self) -> None:
        """Spurious invalidation is always safe (never wrong, only slow)."""
        self.node.result_cache.invalidate_all()

    @rule()
    def crash_recover(self) -> None:
        """WAL-logged writes — buffered or merged — survive the crash."""
        self.node.crash()
        self.node.recover()
        self._absorb_pending()

    @rule(profile_id=st.integers(min_value=0, max_value=6))
    def read(self, profile_id: int) -> None:
        expected = {
            fid: tuple(sums)
            for fid, sums in self.model.get(profile_id, {}).items()
        }
        for _ in range(2):  # Second read exercises the cache-hit path.
            results = self.node.get_profile_topk(
                profile_id, 1, 0, self.window, self.SortType.FEATURE_ID, 64
            )
            got = {result.fid: result.counts for result in results}
            assert got == expected, (
                f"profile {profile_id}: cached node returned {got}, "
                f"model says {expected}"
            )

    @invariant()
    def cache_accounting_consistent(self) -> None:
        cache = self.node.result_cache
        assert len(cache) <= 8
        stats = cache.stats
        assert stats.hits + stats.misses >= stats.installs


TestResultCacheNodeStateful = ResultCacheNodeMachine.TestCase
TestResultCacheNodeStateful.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
