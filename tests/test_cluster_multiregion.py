"""Tests for the multi-region deployment (Fig. 15): write-all/read-local,
region failover, weak consistency through the replicated KV tier."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import MultiRegionDeployment
from repro.config import TableConfig
from repro.core.timerange import TimeRange

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def deployment():
    clock = SimulatedClock(NOW)
    config = TableConfig(name="t", attributes=("click",))
    return MultiRegionDeployment(
        config, ["us", "eu", "asia"], nodes_per_region=2,
        master_region="us", clock=clock,
    )


class TestWriteAllReadLocal:
    def test_write_reaches_every_region(self, deployment):
        client = deployment.client("eu")
        written = client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        assert written == 3
        deployment.run_background_cycle()
        for region_name in ("us", "eu", "asia"):
            local = deployment.client(region_name)
            results = local.get_profile_topk(7, 1, 1, WINDOW)
            assert results and results[0].fid == 42

    def test_reads_stay_local_when_healthy(self, deployment):
        client = deployment.client("eu")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        deployment.run_background_cycle()
        client.get_profile_topk(7, 1, 1, WINDOW)
        assert client.stats.region_failovers == 0

    def test_unknown_local_region_rejected(self, deployment):
        from repro.errors import NoHealthyNodeError

        with pytest.raises(NoHealthyNodeError):
            deployment.client("mars")


class TestRegionFailover:
    def test_read_fails_over_when_local_region_down(self, deployment):
        client = deployment.client("eu")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        deployment.run_background_cycle()
        deployment.fail_region("eu")
        results = client.get_profile_topk(7, 1, 1, WINDOW)
        assert results and results[0].fid == 42
        assert client.stats.region_failovers >= 1

    def test_writes_skip_failed_region(self, deployment):
        deployment.fail_region("asia")
        client = deployment.client("us")
        written = client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        assert written == 2
        assert client.stats.write_errors == 0

    def test_recovered_region_serves_again(self, deployment):
        client = deployment.client("eu")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        deployment.run_background_cycle()
        deployment.fail_region("eu")
        client.get_profile_topk(7, 1, 1, WINDOW)
        deployment.recover_region("eu")
        client.get_profile_topk(7, 1, 1, WINDOW)
        # Second read after recovery went local again: failover count did
        # not increase further.
        assert client.stats.region_failovers == 1

    def test_write_fails_only_when_all_regions_down(self, deployment):
        for name in ("us", "eu", "asia"):
            deployment.fail_region(name)
        client = deployment.client("us")
        written = client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        assert written == 0
        assert client.stats.write_errors == 1


class TestReplicationConsistency:
    def test_master_region_persists_through_master_store(self, deployment):
        client = deployment.client("us")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        for region in deployment.regions.values():
            region.merge_all_write_tables()
        # Flush only the us (master) region's caches.
        deployment.regions["us"].run_cache_cycles()
        for node in deployment.regions["us"].nodes.values():
            node.cache.flush_all()
        assert len(deployment.kv_cluster.master) > 0

    def test_slave_lag_gives_stale_then_fresh_reads(self, deployment):
        """Weak consistency (§III-G): a node recovering in a lagged region
        loads stale data; once replication catches up, fresh data."""
        client = deployment.client("us")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 5})
        deployment.regions["us"].merge_all_write_tables()
        for node in deployment.regions["us"].nodes.values():
            node.cache.flush_all()
        # eu never received the client write (simulate a miss by using a
        # fresh profile id that only exists in storage).
        assert deployment.kv_cluster.lag("eu") > 0
        deployment.replicate()
        assert deployment.kv_cluster.lag("eu") == 0

    def test_node_in_slave_region_recovers_from_local_replica(self, deployment):
        client = deployment.client("eu")
        client.add_profile(7, NOW, 1, 1, 42, {"click": 1})
        deployment.run_background_cycle()
        # Force the eu owner out and make the replacement load from the
        # slave store.
        region = deployment.regions["eu"]
        owner = region.node_for(7).node_id
        # Ensure the data is durable in the master and replicated.
        for node in deployment.regions["us"].nodes.values():
            node.cache.flush_all()
        deployment.replicate()
        region.fail_node(owner)
        results = client.get_profile_topk(7, 1, 1, WINDOW)
        assert results and results[0].fid == 42
