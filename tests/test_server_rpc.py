"""Tests for the simulated RPC transport and latency model."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import NodeUnavailableError
from repro.server.rpc import LatencyModel, RPCServer


class Target:
    node_id = "node-1"

    def echo(self, value):
        return value

    def boom(self):
        raise RuntimeError("handler exploded")

    def big(self):
        return list(range(1000))


class TestLatencyModel:
    def test_base_network_cost(self):
        model = LatencyModel(network_base_ms=3.0, per_kb_ms=0.0, jitter_ms=0.0)
        assert model.network_ms(0) == 3.0

    def test_cost_grows_with_payload(self):
        model = LatencyModel(network_base_ms=3.0, per_kb_ms=1.0, jitter_ms=0.0)
        assert model.network_ms(2048) == pytest.approx(5.0)

    def test_jitter_bounded(self):
        model = LatencyModel(network_base_ms=3.0, per_kb_ms=0.0, jitter_ms=0.5)
        for _ in range(100):
            cost = model.network_ms(0)
            assert 3.0 <= cost <= 3.5


class TestRPCServer:
    def test_dispatch_and_stats(self):
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock, LatencyModel(jitter_ms=0.0))
        assert server.call("echo", 42) == 42
        assert server.stats.calls == 1
        assert server.stats.client_hist.count == 1
        # Client latency includes the 3 ms network base.
        assert server.stats.last_client_ms >= 3.0

    def test_server_time_recorded(self):
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock)
        server.call("echo", 1, server_time_ms=2.5)
        assert server.stats.last_server_ms == 2.5
        assert server.stats.server_hist.count == 1
        assert server.stats.last_client_ms >= 5.5

    def test_measured_server_time(self):
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock)
        server.call("big", measure_server_time=True)
        assert server.stats.last_server_ms > 0.0

    def test_stats_bounded_memory(self):
        """The histograms keep O(buckets) state however many calls land."""
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock, LatencyModel(jitter_ms=0.0))
        buckets_before = len(server.stats.client_hist._counts)
        for _ in range(2000):
            server.call("echo", 1)
        assert server.stats.client_hist.count == 2000
        assert len(server.stats.client_hist._counts) == buckets_before
        assert server.stats.percentile(50, "client") >= 3.0
        with pytest.raises(ValueError):
            server.stats.percentile(50, "bogus")

    def test_unavailable_node_raises(self):
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock)
        server.set_available(False)
        with pytest.raises(NodeUnavailableError):
            server.call("echo", 1)
        assert server.stats.failures == 1
        server.set_available(True)
        assert server.call("echo", 1) == 1

    def test_handler_exception_counted_and_propagated(self):
        clock = SimulatedClock(0)
        server = RPCServer(Target(), clock)
        with pytest.raises(RuntimeError):
            server.call("boom")
        assert server.stats.failures == 1

    def test_response_size_inflates_latency(self):
        clock = SimulatedClock(0)
        model = LatencyModel(network_base_ms=3.0, per_kb_ms=1.0, jitter_ms=0.0)
        server = RPCServer(Target(), clock, model)
        server.call("echo", None, request_bytes=0)
        small = server.stats.last_client_ms
        server.call("big", request_bytes=0)
        large = server.stats.last_client_ms
        assert large > small

    def test_advance_clock_mode(self):
        clock = SimulatedClock(0)
        server = RPCServer(
            Target(), clock, LatencyModel(jitter_ms=0.0), advance_clock=True
        )
        server.call("echo", 1)
        assert clock.now_ms() >= 3
