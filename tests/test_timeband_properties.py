"""Property tests on the time-dimension band structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import MILLIS_PER_DAY
from repro.config import TimeDimensionConfig

PRODUCTION = TimeDimensionConfig.production_default()


class TestBandLookupProperties:
    @given(st.integers(min_value=0, max_value=364 * MILLIS_PER_DAY))
    @settings(max_examples=200, deadline=None)
    def test_every_in_horizon_age_has_a_granularity(self, age_ms):
        granularity = PRODUCTION.granularity_for_age(age_ms)
        assert granularity is not None
        assert granularity > 0

    @given(
        st.integers(min_value=0, max_value=364 * MILLIS_PER_DAY),
        st.integers(min_value=0, max_value=MILLIS_PER_DAY),
    )
    @settings(max_examples=200, deadline=None)
    def test_granularity_non_decreasing_with_age(self, age_ms, delta_ms):
        """Older data is never kept at finer granularity than newer data."""
        younger = PRODUCTION.granularity_for_age(age_ms)
        older = PRODUCTION.granularity_for_age(age_ms + delta_ms)
        if older is not None:
            assert older >= younger

    @given(st.integers(min_value=365 * MILLIS_PER_DAY, max_value=10**13))
    @settings(max_examples=50, deadline=None)
    def test_beyond_horizon_is_none(self, age_ms):
        assert PRODUCTION.granularity_for_age(age_ms) is None

    @given(st.integers(min_value=-10**10, max_value=-1))
    @settings(max_examples=50, deadline=None)
    def test_future_ages_use_finest_band(self, age_ms):
        assert (
            PRODUCTION.granularity_for_age(age_ms)
            == PRODUCTION.bands[0].granularity_ms
        )

    def test_band_edges_belong_to_the_newer_band(self):
        """At an exact band boundary, the older (coarser) band applies —
        contains_age is half-open on the end."""
        for earlier, later in zip(PRODUCTION.bands, PRODUCTION.bands[1:]):
            boundary = earlier.age_end_ms
            assert PRODUCTION.granularity_for_age(boundary) == (
                later.granularity_ms
            )
            assert PRODUCTION.granularity_for_age(boundary - 1) == (
                earlier.granularity_ms
            )

    @given(
        st.lists(
            st.integers(min_value=1, max_value=10**8),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_synthesised_configs_round_trip(self, durations):
        """Any contiguous non-decreasing-granularity config survives the
        to_mapping/from_mapping round trip."""
        # Duplicate granularities would collide as mapping keys, so the
        # synthesised config uses each distinct duration once.
        durations = sorted(set(durations))
        bands = {}
        start = 0
        for index, granularity in enumerate(durations):
            end = start + granularity * 10
            bands[f"{granularity}ms"] = (f"{start}ms", f"{end}ms")
            start = end
        config = TimeDimensionConfig.from_mapping(bands)
        rebuilt = TimeDimensionConfig.from_mapping(config.to_mapping())
        assert rebuilt.to_mapping() == config.to_mapping()
        assert rebuilt.horizon_ms == config.horizon_ms
