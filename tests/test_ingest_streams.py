"""Tests for the Kafka-substitute topic substrate."""

import pytest

from repro.ingest.streams import Topic


class TestProduceConsume:
    def test_produce_assigns_offsets_per_partition(self):
        topic = Topic("t", num_partitions=1)
        first = topic.produce(1, "a", 100)
        second = topic.produce(2, "b", 200)
        assert (first.offset, second.offset) == (0, 1)

    def test_key_determines_partition(self):
        topic = Topic("t", num_partitions=4)
        a = topic.produce(42, "x", 0)
        b = topic.produce(42, "y", 0)
        assert a.partition == b.partition

    def test_poll_returns_everything_once(self):
        topic = Topic("t", num_partitions=3)
        for index in range(10):
            topic.produce(index, index, 0)
        batch = topic.poll("g")
        assert len(batch) == 10
        assert topic.poll("g") == []

    def test_poll_respects_max_messages(self):
        topic = Topic("t", num_partitions=2)
        for index in range(10):
            topic.produce(index, index, 0)
        assert len(topic.poll("g", max_messages=4)) == 4
        assert topic.lag("g") == 6

    def test_consumer_groups_are_independent(self):
        topic = Topic("t")
        topic.produce(1, "a", 0)
        assert len(topic.poll("g1")) == 1
        assert len(topic.poll("g2")) == 1

    def test_lag_for_new_group_counts_all(self):
        topic = Topic("t")
        for index in range(5):
            topic.produce(index, index, 0)
        assert topic.lag("new-group") == 5

    def test_rejects_bad_partition_count(self):
        with pytest.raises(ValueError):
            Topic("t", num_partitions=0)

    def test_iter_all_snapshot(self):
        topic = Topic("t", num_partitions=2)
        for index in range(6):
            topic.produce(index, index, 0)
        assert len(list(topic.iter_all())) == 6
        assert topic.total_messages() == 6

    def test_ordering_preserved_within_partition(self):
        topic = Topic("t", num_partitions=1)
        for index in range(20):
            topic.produce(0, index, 0)
        values = [message.value for message in topic.poll("g", 100)]
        assert values == list(range(20))
