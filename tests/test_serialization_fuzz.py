"""Fuzz/property tests for the binary profile codec.

Three guarantees, over seeded-random profiles:

1. **Round-trip fidelity** — ``decode(encode(p))`` reconstructs the same
   slice/slot/type/feature structure, and re-encoding the decoded profile
   is *byte-identical* (the wire format is canonical).
2. **Truncation safety** — every proper prefix of a valid blob raises
   :class:`~repro.errors.SerializationError`; no prefix decodes silently.
3. **Corruption safety** — random byte flips/insertions either decode to
   some profile or raise a typed :class:`~repro.errors.IPSError` subclass;
   no ``IndexError``/``MemoryError``/garbage object ever escapes.

Seeding comes from the per-test ``rng`` fixture, so failures reproduce.
"""

from __future__ import annotations

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.errors import IPSError, SerializationError
from repro.storage.serialization import (
    ProfileCodec,
    deserialize_profile,
    read_varint,
    serialize_profile,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)

NOW = 400 * MILLIS_PER_DAY
SPAN = 60 * MILLIS_PER_DAY


def random_profile(rng, num_writes: int | None = None) -> ProfileData:
    aggregate = get_aggregate("sum")
    profile = ProfileData(
        rng.randrange(1, 1 << 40), write_granularity_ms=6 * MILLIS_PER_HOUR
    )
    if num_writes is None:
        num_writes = rng.randrange(0, 80)
    for _ in range(num_writes):
        profile.add(
            NOW - rng.randrange(SPAN),
            rng.choice((1, 2, 3)),
            rng.choice((1, 2)),
            rng.randrange(1, 200),
            [rng.randrange(0, 50) for _ in range(rng.choice((2, 3)))],
            aggregate,
        )
    return profile


def flatten(profile: ProfileData):
    """Canonical nested view: slice ranges down to individual feature stats."""
    out = []
    for profile_slice in profile.slices:
        slots = []
        for slot_id, instance_set in sorted(profile_slice.slots_items()):
            for type_id, features in sorted(instance_set.items()):
                for fid, stat in sorted(features.items()):
                    slots.append(
                        (slot_id, type_id, fid, tuple(stat.counts),
                         stat.last_timestamp_ms)
                    )
        out.append((profile_slice.start_ms, profile_slice.end_ms, tuple(slots)))
    return out


class TestRoundTrip:
    def test_structure_survives_round_trip(self, rng):
        for _ in range(30):
            profile = random_profile(rng)
            decoded = deserialize_profile(serialize_profile(profile))
            assert decoded.profile_id == profile.profile_id
            assert decoded.write_granularity_ms == profile.write_granularity_ms
            assert flatten(decoded) == flatten(profile)

    def test_reencode_is_byte_identical(self, rng):
        for _ in range(30):
            blob = serialize_profile(random_profile(rng))
            assert serialize_profile(deserialize_profile(blob)) == blob

    def test_empty_profile_round_trips(self):
        profile = ProfileData(7, write_granularity_ms=1000)
        blob = serialize_profile(profile)
        decoded = deserialize_profile(blob)
        assert decoded.profile_id == 7
        assert decoded.slices == []
        assert serialize_profile(decoded) == blob

    def test_slice_codec_round_trips(self, rng):
        for _ in range(20):
            profile = random_profile(rng, num_writes=rng.randrange(1, 40))
            for profile_slice in profile.slices:
                blob = ProfileCodec.encode_slice(profile_slice)
                decoded = ProfileCodec.decode_slice(blob)
                assert ProfileCodec.encode_slice(decoded) == blob

    def test_negative_counts_round_trip(self):
        """Zigzag path: aggregates may legitimately go negative."""
        profile = ProfileData(1, write_granularity_ms=1000)
        aggregate = get_aggregate("sum")
        profile.add(NOW, 1, 1, 5, [3, -4], aggregate)
        profile.add(NOW, 1, 1, 5, [-10, 2], aggregate)
        decoded = deserialize_profile(serialize_profile(profile))
        assert flatten(decoded) == flatten(profile)


class TestVarintPrimitives:
    def test_varint_round_trip_boundaries(self, rng):
        values = [0, 1, 127, 128, 16383, 16384, (1 << 64) - 1]
        values += [rng.randrange(1 << 63) for _ in range(50)]
        for value in values:
            out = bytearray()
            write_varint(out, value)
            got, pos = read_varint(bytes(out), 0)
            assert (got, pos) == (value, len(out))

    def test_varint_rejects_negative(self):
        with pytest.raises(SerializationError):
            write_varint(bytearray(), -1)

    def test_varint_rejects_overlong(self):
        with pytest.raises(SerializationError):
            read_varint(b"\x80" * 11 + b"\x01", 0)

    def test_zigzag_round_trip(self, rng):
        values = [0, -1, 1, -2, 2, 2**31, -(2**31)]
        values += [rng.randrange(-(1 << 40), 1 << 40) for _ in range(100)]
        for value in values:
            assert zigzag_decode(zigzag_encode(value)) == value


class TestTruncation:
    def test_every_proper_prefix_raises(self, rng):
        """No prefix of a valid blob may decode — truncation is always loud."""
        profile = random_profile(rng, num_writes=rng.randrange(5, 25))
        blob = serialize_profile(profile)
        assert len(blob) > 10
        for cut in range(len(blob)):
            with pytest.raises(SerializationError):
                deserialize_profile(blob[:cut])

    def test_trailing_garbage_raises(self, rng):
        blob = serialize_profile(random_profile(rng, num_writes=10))
        for suffix in (b"\x00", b"\xff", bytes(rng.randrange(256) for _ in range(5))):
            with pytest.raises(SerializationError):
                deserialize_profile(blob + suffix)

    def test_empty_and_tiny_buffers_raise(self):
        for blob in (b"", b"\x00", b"\x80", b"\xff\xff"):
            with pytest.raises(SerializationError):
                deserialize_profile(blob)


class TestCorruption:
    def test_bad_magic_rejected(self, rng):
        blob = bytearray(serialize_profile(random_profile(rng, num_writes=5)))
        blob[0] ^= 0x01  # perturb the magic varint
        with pytest.raises(SerializationError):
            deserialize_profile(bytes(blob))

    def test_unsupported_version_rejected(self):
        out = bytearray()
        write_varint(out, 0x49505331)  # valid magic
        write_varint(out, 99)  # future format version
        with pytest.raises(SerializationError) as excinfo:
            deserialize_profile(bytes(out))
        assert "version" in str(excinfo.value)

    def test_single_byte_flips_never_escape_typed_errors(self, rng):
        """Flip one byte anywhere: decode either succeeds or raises IPSError."""
        profile = random_profile(rng, num_writes=rng.randrange(5, 30))
        blob = serialize_profile(profile)
        for _ in range(300):
            position = rng.randrange(len(blob))
            flip = 1 << rng.randrange(8)
            mutated = bytearray(blob)
            mutated[position] ^= flip
            try:
                decoded = deserialize_profile(bytes(mutated))
            except IPSError:
                continue  # typed rejection is fine
            # A surviving decode must still be internally consistent:
            # re-encoding it round-trips without error.
            assert serialize_profile(decoded) is not None

    def test_random_noise_never_escapes_typed_errors(self, rng):
        """Pure noise buffers must never crash with an untyped exception."""
        for _ in range(300):
            noise = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
            try:
                deserialize_profile(noise)
            except IPSError:
                pass

    def test_implausible_feature_count_rejected(self):
        """A corrupted count-vector length fails fast, not with a huge alloc."""
        out = bytearray()
        write_varint(out, 1)  # fid
        write_varint(out, NOW)  # last_ts
        write_varint(out, 1_000_000)  # absurd n_counts
        with pytest.raises(SerializationError) as excinfo:
            ProfileCodec._read_feature(bytes(out), 0)
        assert "implausible" in str(excinfo.value)
