"""Tests for per-caller QPS quotas (token buckets, §V-b)."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import QuotaExceededError
from repro.server.quota import QuotaManager, TokenBucket


class TestTokenBucket:
    def test_burst_allows_initial_spike(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=10, burst=5, clock=clock)
        assert all(bucket.try_acquire() for _ in range(5))
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=10, burst=5, clock=clock)
        for _ in range(5):
            bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(200)  # 0.2 s -> 2 tokens at 10 qps.
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=1000, burst=3, clock=clock)
        clock.advance(60_000)
        assert bucket.available <= 3 + 1e-9 or True  # available refreshes on acquire
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0, None, SimulatedClock(0))


class TestQuotaManager:
    def test_unquota_caller_unlimited_by_default(self):
        manager = QuotaManager(SimulatedClock(0))
        for _ in range(10_000):
            manager.admit("anyone")
        assert manager.rejected == 0

    def test_quota_enforced_per_caller(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=10, burst=2)
        manager.admit("ads")
        manager.admit("ads")
        with pytest.raises(QuotaExceededError) as exc_info:
            manager.admit("ads")
        assert exc_info.value.caller == "ads"
        # Another caller is unaffected.
        manager.admit("feed")

    def test_recovery_after_backoff(self):
        """Rejected callers are admitted again once usage falls below quota."""
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=10, burst=1)
        manager.admit("ads")
        with pytest.raises(QuotaExceededError):
            manager.admit("ads")
        clock.advance(150)
        manager.admit("ads")

    def test_default_quota_applies_to_unknown_callers(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock, default_qps=5)
        bucket_quota = manager.quota_for("stranger")
        assert bucket_quota == 5
        for _ in range(5):
            manager.admit("stranger")
        with pytest.raises(QuotaExceededError):
            manager.admit("stranger")

    def test_hot_update_quota(self):
        """§V-b: quotas can be reconfigured live."""
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=1, burst=1)
        manager.admit("ads")
        with pytest.raises(QuotaExceededError):
            manager.admit("ads")
        manager.set_quota("ads", qps=100, burst=50)  # Live bump.
        for _ in range(50):
            manager.admit("ads")

    def test_remove_quota_restores_unlimited(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=1, burst=1)
        manager.admit("ads")
        manager.remove_quota("ads")
        for _ in range(100):
            manager.admit("ads")

    def test_counters(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("a", qps=10, burst=1)
        manager.admit("a")
        with pytest.raises(QuotaExceededError):
            manager.admit("a")
        assert manager.admitted == 1
        assert manager.rejected == 1
