"""Tests for per-caller QPS quotas (token buckets, §V-b)."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import QuotaExceededError
from repro.server.quota import QuotaManager, TokenBucket


class TestTokenBucket:
    def test_burst_allows_initial_spike(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=10, burst=5, clock=clock)
        assert all(bucket.try_acquire() for _ in range(5))
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=10, burst=5, clock=clock)
        for _ in range(5):
            bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(200)  # 0.2 s -> 2 tokens at 10 qps.
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=1000, burst=3, clock=clock)
        clock.advance(60_000)
        assert bucket.available <= 3 + 1e-9 or True  # available refreshes on acquire
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0, None, SimulatedClock(0))


class _SteppableClock:
    """Clock stub that, unlike SimulatedClock, can step backwards —
    the NTP-correction scenario a wall clock exposes a bucket to."""

    def __init__(self, now_ms: int = 0) -> None:
        self._now_ms = now_ms

    def now_ms(self) -> int:
        return self._now_ms

    def step(self, delta_ms: int) -> None:
        self._now_ms += delta_ms


class TestTokenBucketEdgeCases:
    def test_backwards_clock_step_grants_no_tokens(self):
        clock = _SteppableClock(10_000)
        bucket = TokenBucket(rate_qps=10, burst=5, clock=clock)
        for _ in range(5):
            assert bucket.try_acquire()
        clock.step(-5_000)  # NTP correction into the past.
        assert not bucket.try_acquire()

    def test_backwards_step_does_not_double_refill(self):
        """The refill watermark must not move backwards: after a backwards
        step, the same wall-time interval must not be credited twice."""
        clock = _SteppableClock(10_000)
        bucket = TokenBucket(rate_qps=10, burst=10, clock=clock)
        for _ in range(10):
            assert bucket.try_acquire()
        clock.step(-1_000)
        assert not bucket.try_acquire()  # Must not reset the watermark.
        clock.step(1_000)  # Back to the original time: zero net elapsed.
        assert not bucket.try_acquire()
        clock.step(100)  # 0.1 s of genuinely new time -> 1 token.
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_fractional_token_costs(self):
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=10, burst=1.0, clock=clock)
        assert bucket.try_acquire(0.25)
        assert bucket.try_acquire(0.25)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.25)
        clock.advance(25)  # 0.025 s -> 0.25 tokens at 10 qps.
        assert bucket.try_acquire(0.25)
        assert not bucket.try_acquire(0.25)

    def test_burst_smaller_than_rate(self):
        """A sub-second burst cap must bound spikes even when the per-second
        rate is larger: at most ``burst`` admits in any instant."""
        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=1000, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(60_000)  # A minute of refill still caps at burst.
        admitted = sum(1 for _ in range(10) if bucket.try_acquire())
        assert admitted == 2

    def test_concurrent_try_acquire_never_overspends(self):
        import threading

        clock = SimulatedClock(0)
        bucket = TokenBucket(rate_qps=1, burst=50, clock=clock)
        admitted = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            count = 0
            for _ in range(25):
                if bucket.try_acquire():
                    count += 1
            admitted.append(count)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 8 x 25 = 200 attempts against 50 tokens and no refill (the
        # simulated clock never moves): exactly the burst is admitted.
        assert sum(admitted) == 50
        assert not bucket.try_acquire()


class TestQuotaManager:
    def test_unquota_caller_unlimited_by_default(self):
        manager = QuotaManager(SimulatedClock(0))
        for _ in range(10_000):
            manager.admit("anyone")
        assert manager.rejected == 0

    def test_quota_enforced_per_caller(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=10, burst=2)
        manager.admit("ads")
        manager.admit("ads")
        with pytest.raises(QuotaExceededError) as exc_info:
            manager.admit("ads")
        assert exc_info.value.caller == "ads"
        # Another caller is unaffected.
        manager.admit("feed")

    def test_recovery_after_backoff(self):
        """Rejected callers are admitted again once usage falls below quota."""
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=10, burst=1)
        manager.admit("ads")
        with pytest.raises(QuotaExceededError):
            manager.admit("ads")
        clock.advance(150)
        manager.admit("ads")

    def test_default_quota_applies_to_unknown_callers(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock, default_qps=5)
        bucket_quota = manager.quota_for("stranger")
        assert bucket_quota == 5
        for _ in range(5):
            manager.admit("stranger")
        with pytest.raises(QuotaExceededError):
            manager.admit("stranger")

    def test_hot_update_quota(self):
        """§V-b: quotas can be reconfigured live."""
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=1, burst=1)
        manager.admit("ads")
        with pytest.raises(QuotaExceededError):
            manager.admit("ads")
        manager.set_quota("ads", qps=100, burst=50)  # Live bump.
        for _ in range(50):
            manager.admit("ads")

    def test_remove_quota_restores_unlimited(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("ads", qps=1, burst=1)
        manager.admit("ads")
        manager.remove_quota("ads")
        for _ in range(100):
            manager.admit("ads")

    def test_counters(self):
        clock = SimulatedClock(0)
        manager = QuotaManager(clock)
        manager.set_quota("a", qps=10, burst=1)
        manager.admit("a")
        with pytest.raises(QuotaExceededError):
            manager.admit("a")
        assert manager.admitted == 1
        assert manager.rejected == 1
