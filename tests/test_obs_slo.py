"""Tests for the SLO engine: objectives, burn rates, alert hysteresis."""

import json

import pytest

from repro.clock import SimulatedClock
from repro.config import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    TIMELINE_SCHEMA,
    BurnRateRule,
    SLObjective,
    SLOEngine,
    default_rules,
)

MIN = 60_000


def make_engine(registry=None, rules=None, **objective_kwargs):
    clock = SimulatedClock(0)
    objective = SLObjective(name="api", **objective_kwargs)
    engine = SLOEngine(clock, [objective], rules=rules, registry=registry)
    return clock, engine


class TestSLObjective:
    def test_defaults_and_matching(self):
        objective = SLObjective(name="any")
        assert objective.matches("someone", "read")
        scoped = SLObjective(name="scoped", caller="naive", op="read")
        assert scoped.matches("naive", "read")
        assert not scoped.matches("naive", "write")
        assert not scoped.matches("other", "read")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_target": 0.0},
            {"latency_target": 1.0},
            {"availability_target": 1.5},
            {"latency_threshold_ms": 0},
        ],
    )
    def test_rejects_bad_targets(self, kwargs):
        with pytest.raises(ConfigError):
            SLObjective(name="bad", **kwargs)

    def test_from_mapping_parses_durations(self):
        objective = SLObjective.from_mapping(
            {"name": "reads", "latency_threshold_ms": "250ms"}
        )
        assert objective.latency_threshold_ms == 250.0

    def test_from_mapping_rejects_unknown_keys_and_missing_name(self):
        with pytest.raises(ConfigError):
            SLObjective.from_mapping({"name": "x", "latencyy": 1})
        with pytest.raises(ConfigError):
            SLObjective.from_mapping({"caller": "x"})


class TestBurnRateRule:
    def test_rejects_inverted_windows(self):
        with pytest.raises(ConfigError):
            BurnRateRule("r", "page", short_window_ms=MIN * 60,
                         long_window_ms=MIN, burn_threshold=14.0)

    def test_rejects_bad_threshold_and_clear_after(self):
        with pytest.raises(ConfigError):
            BurnRateRule("r", "page", MIN, MIN, burn_threshold=0)
        with pytest.raises(ConfigError):
            BurnRateRule("r", "page", MIN, MIN, 1.0, clear_after=0)

    def test_from_mapping_requires_core_keys(self):
        with pytest.raises(ConfigError):
            BurnRateRule.from_mapping({"name": "r", "severity": "page"})
        rule = BurnRateRule.from_mapping({
            "name": "fast", "severity": "page", "short_window": "5m",
            "long_window": "1h", "burn_threshold": 14,
        })
        assert rule.short_window_ms == 5 * MIN
        assert rule.long_window_ms == 60 * MIN
        assert rule.clear_after == 3

    def test_default_rules_are_the_sre_pair(self):
        fast, slow = default_rules()
        assert (fast.severity, slow.severity) == ("page", "ticket")
        assert fast.burn_threshold > slow.burn_threshold
        assert fast.short_window_ms < slow.short_window_ms


class TestAccounting:
    def test_latency_and_availability_classified_separately(self):
        clock, engine = make_engine(
            latency_threshold_ms=50.0, latency_target=0.9,
            availability_target=0.9,
        )
        engine.observe("app", "read", 10.0, ok=True)    # good on both
        engine.observe("app", "read", 500.0, ok=True)   # slow but served
        engine.observe("app", "read", 10.0, ok=False)   # failed
        summary = engine.summary()["series"]
        assert summary["api:latency"] == {
            "target": 0.9, "good": 1, "bad": 2,
            "budget_remaining": summary["api:latency"]["budget_remaining"],
        }
        assert summary["api:availability"]["good"] == 2
        assert summary["api:availability"]["bad"] == 1

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock, engine = make_engine(availability_target=0.99)
        for index in range(100):
            engine.observe("app", "read", 1.0, ok=index >= 10)
        # 10% bad over a 1% budget -> burn 10.
        assert engine.burn_rate("api:availability", MIN) == pytest.approx(10.0)
        # Empty window -> burn 0, never a division error.
        assert engine.burn_rate(
            "api:availability", MIN, now_ms=10 * MIN
        ) == 0.0

    def test_budget_remaining_is_lifetime_and_can_overdraw(self):
        clock, engine = make_engine(availability_target=0.99)
        assert engine.budget_remaining("api:availability") == 1.0
        for index in range(100):
            engine.observe("app", "read", 1.0, ok=index >= 50)
        # 50% bad against a 1% budget: 50x overdrawn.
        assert engine.budget_remaining(
            "api:availability"
        ) == pytest.approx(1.0 - 50.0)

    def test_old_buckets_leave_the_window(self):
        clock, engine = make_engine(availability_target=0.99)
        engine.observe("app", "read", 1.0, ok=False)
        clock.advance(5 * MIN)
        engine.observe("app", "read", 1.0, ok=True)
        # A 2-bucket window sees only the good request now.
        assert engine.burn_rate("api:availability", 2 * MIN) == 0.0
        # A wide window still sees the failure.
        assert engine.burn_rate("api:availability", 10 * MIN) > 0.0

    def test_non_matching_ops_are_ignored(self):
        clock = SimulatedClock(0)
        engine = SLOEngine(
            clock, [SLObjective(name="reads", op="read")]
        )
        engine.observe("app", "write", 1.0, ok=False)
        assert engine.summary()["series"]["reads:availability"]["bad"] == 0

    def test_requires_objectives_and_unique_names(self):
        clock = SimulatedClock(0)
        with pytest.raises(ConfigError):
            SLOEngine(clock, [])
        with pytest.raises(ConfigError):
            SLOEngine(
                clock, [SLObjective(name="a"), SLObjective(name="a")]
            )


def fast_only():
    return [BurnRateRule("fast", "page", short_window_ms=2 * MIN,
                         long_window_ms=10 * MIN, burn_threshold=10.0,
                         clear_after=2)]


def drive_round(clock, engine, bad: int, good: int):
    for _ in range(bad):
        engine.observe("app", "read", 1.0, ok=False)
    for _ in range(good):
        engine.observe("app", "read", 1.0, ok=True)
    events = engine.evaluate()
    clock.advance(MIN)
    return events


class TestAlerting:
    def test_fires_only_when_both_windows_burn(self):
        clock, engine = make_engine(
            latency_target=0.9, availability_target=0.9, rules=fast_only()
        )
        # Long window dominated by good traffic recorded earlier: a fresh
        # short-window spike alone must not page.
        for _ in range(8):
            drive_round(clock, engine, bad=0, good=100)
        events = drive_round(clock, engine, bad=100, good=0)
        # A one-bucket window ending right after the spike isolates it.
        rates_short = engine.burn_rate(
            "api:availability", MIN, clock.now_ms()
        )
        rates_long = engine.burn_rate(
            "api:availability", 10 * MIN, clock.now_ms()
        )
        assert rates_short >= 10.0 > rates_long
        assert events == []
        # Sustained badness pushes the long window over too -> fire once.
        fired = []
        for _ in range(12):
            fired += drive_round(clock, engine, bad=100, good=0)
        fires = [
            e for e in fired
            if e["event"] == "fire" and e["slo"] == "api:availability"
        ]
        assert len(fires) == 1
        assert fires[0]["slo"] == "api:availability"
        assert fires[0]["severity"] == "page"
        assert fires[0]["burn_short"] >= 10.0
        assert fires[0]["burn_long"] >= 10.0

    def test_hysteresis_clears_after_consecutive_clean_rounds(self):
        clock, engine = make_engine(
            latency_target=0.9, availability_target=0.9, rules=fast_only()
        )
        for _ in range(4):
            drive_round(clock, engine, bad=100, good=0)
        assert [a["rule"] for a in engine.active_alerts()] == ["fast", "fast"]
        # One clean evaluation is not enough (clear_after=2)...
        clock.advance(10 * MIN)  # flush both windows
        events = drive_round(clock, engine, bad=0, good=100)
        assert events == []
        assert engine.active_alerts()
        # ...the second consecutive clean one clears.
        events = drive_round(clock, engine, bad=0, good=100)
        clears = [e for e in events if e["event"] == "clear"]
        assert len(clears) == 2  # latency + availability series
        assert engine.active_alerts() == []
        # A re-fire after clearing is a fresh timeline event.
        for _ in range(12):
            drive_round(clock, engine, bad=100, good=0)
        kinds = [(e["event"], e["slo"]) for e in engine.timeline]
        assert kinds.count(("fire", "api:availability")) == 2

    def test_timeline_json_is_deterministic(self):
        timelines = []
        for _ in range(2):
            clock, engine = make_engine(
                availability_target=0.9, rules=fast_only()
            )
            for round_index in range(20):
                bad = 80 if 5 <= round_index < 12 else 0
                drive_round(clock, engine, bad=bad, good=20)
            timelines.append(engine.timeline_json())
        assert timelines[0] == timelines[1]
        decoded = json.loads(timelines[0])
        assert decoded["schema"] == TIMELINE_SCHEMA
        assert decoded["events"], "expected at least one alert event"

    def test_registry_wiring(self):
        registry = MetricsRegistry()
        clock, engine = make_engine(
            availability_target=0.9, rules=fast_only(), registry=registry
        )
        for _ in range(4):
            drive_round(clock, engine, bad=100, good=0)
        assert registry.get(
            "slo_requests_total", slo="api:availability", result="bad"
        ).value == 400.0
        assert registry.get(
            "slo_alert_active", slo="api:availability", rule="fast",
            severity="page",
        ).value == 1.0
        assert registry.get("slo_alerts_fired_total").value == 2.0
        assert registry.get(
            "slo_error_budget_remaining", slo="api:availability"
        ).value < 0


class TestFromMapping:
    def test_full_config_round_trip(self):
        clock = SimulatedClock(0)
        registry = MetricsRegistry()
        engine = SLOEngine.from_mapping(
            {
                "objectives": [
                    {"name": "reads", "caller": "naive", "op": "read",
                     "latency_threshold_ms": "100ms",
                     "latency_target": 0.99,
                     "availability_target": 0.999},
                ],
                "rules": [
                    {"name": "fast", "severity": "page",
                     "short_window": "5m", "long_window": "1h",
                     "burn_threshold": 14},
                ],
                "bucket": "30s",
            },
            clock,
            registry=registry,
        )
        assert engine.series_keys() == (
            "reads:latency", "reads:availability"
        )
        assert [rule.name for rule in engine.rules] == ["fast"]
        assert engine._series["reads:latency"].bucket_ms == 30_000

    def test_rejects_unknown_keys_and_missing_objectives(self):
        clock = SimulatedClock(0)
        with pytest.raises(ConfigError):
            SLOEngine.from_mapping({"objective": []}, clock)
        with pytest.raises(ConfigError):
            SLOEngine.from_mapping({"rules": []}, clock)
