"""Tests for the write table and read-write isolation (§III-F)."""

import pytest

from repro.server.isolation import PendingWrite, WriteTable


def make_write(profile_id=1, fid=1):
    return PendingWrite(profile_id, 1000, 1, 1, fid, [1, 2])


class TestWriteTable:
    def test_append_buffers(self):
        table = WriteTable()
        assert table.append(make_write())
        assert table.pending_count == 1
        assert table.stats.buffered == 1

    def test_drain_takes_everything(self):
        table = WriteTable()
        for fid in range(5):
            table.append(make_write(fid=fid))
        batch = table.drain()
        assert len(batch) == 5
        assert table.pending_count == 0
        assert table.memory_bytes == 0
        assert table.stats.merged == 5
        assert table.stats.merge_passes == 1

    def test_drain_empty_is_noop(self):
        table = WriteTable()
        assert table.drain() == []
        assert table.stats.merge_passes == 0

    def test_memory_cap_triggers_overflow(self):
        """§III-F: the write table's memory is bounded; over-cap writes
        fall back to the synchronous path."""
        table = WriteTable(memory_limit_bytes=200)
        accepted = 0
        while table.append(make_write(fid=accepted)):
            accepted += 1
            if accepted > 100:
                pytest.fail("memory cap never enforced")
        assert accepted >= 1
        assert table.stats.overflow_syncs == 1
        # After a drain there is room again.
        table.drain()
        assert table.append(make_write())

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            WriteTable(memory_limit_bytes=0)

    def test_memory_accounting_tracks_counts_vector(self):
        table = WriteTable()
        small = PendingWrite(1, 0, 1, 1, 1, [1])
        large = PendingWrite(1, 0, 1, 1, 1, [1] * 50)
        assert large.memory_bytes() > small.memory_bytes()
        table.append(small)
        first = table.memory_bytes
        table.append(large)
        assert table.memory_bytes == first + large.memory_bytes()
