"""Tests for node durability: WAL-acked writes, checkpoints, recovery."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.errors import StorageError
from repro.server.node import IPSNode
from repro.server.recovery import (
    NodeDurability,
    attach_memory_durability,
    decode_write,
    encode_write,
)
from repro.storage import InMemoryKVStore
from repro.storage.kvstore import FailureInjector
from repro.storage.wal import FileLogFile, MemoryLogFile, WriteAheadLog

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(2 * MILLIS_PER_DAY)


def make_node(fine_grained=False, store=None, **kwargs):
    config = TableConfig(
        name="t", attributes=("click",), fine_grained_persistence=fine_grained
    )
    return IPSNode(
        "n0",
        config,
        store if store is not None else InMemoryKVStore(),
        clock=SimulatedClock(NOW),
        **kwargs,
    )


def topk(node, profile_id):
    return node.get_profile_topk(profile_id, 1, 0, WINDOW, k=64)


class TestWriteEncoding:
    def test_roundtrip(self):
        payload = encode_write(7, NOW, 1, 0, 42, (3, 9))
        assert decode_write(payload) == (7, NOW, 1, 0, 42, [3, 9])

    def test_roundtrip_large_values(self):
        payload = encode_write(2**62, NOW, 15, 255, 2**60, (2**40,))
        assert decode_write(payload) == (2**62, NOW, 15, 255, 2**60, [2**40])


class TestCrashRecovery:
    def test_acked_writes_survive_crash(self):
        node = make_node()
        attach_memory_durability(node)
        for fid in range(10):
            node.add_profile(1, NOW, 1, 0, fid, {"click": fid + 1})
        node.merge_write_table()
        before = topk(node, 1)
        node.crash()
        assert topk(node, 1) == []  # Volatile state really died.
        report = node.recover()
        assert report.records_replayed == 10
        assert topk(node, 1) == before

    def test_crash_without_durability_loses_unflushed(self):
        node = make_node()
        for fid in range(10):
            node.add_profile(1, NOW, 1, 0, fid, {"click": 1})
        node.merge_write_table()
        node.crash()
        assert node.recover() is None
        assert topk(node, 1) == []

    def test_recovery_is_idempotent(self):
        node = make_node()
        attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 5, {"click": 3})
        node.crash()
        node.recover()
        first = topk(node, 1)
        node.recover()  # Recovering again must not double-apply.
        assert topk(node, 1) == first

    def test_flushed_and_evicted_profiles_still_served(self):
        node = make_node()
        attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 5, {"click": 3})
        node.merge_write_table()
        node.cache.flush_all()
        before = topk(node, 1)
        node.crash()
        node.recover()
        assert topk(node, 1) == before

    def test_rebuilds_dirty_list_from_wal_replay(self):
        """Recovered profiles re-enter the ShardedDirtyList for flushing."""
        node = make_node()
        attach_memory_durability(node)
        for profile_id in (1, 2, 3):
            node.add_profile(profile_id, NOW, 1, 0, 9, {"click": 2})
        node.crash()
        assert node.cache.dirty.total_entries() == 0
        report = node.recover()
        assert report.dirty_rebuilt == 3
        assert node.cache.dirty.total_entries() == 3
        assert all(pid in node.cache.dirty for pid in (1, 2, 3))
        # The rebuilt entries flush normally...
        assert node.cache.flush_all() == 3
        # ... and the flushed state round-trips through the KV store.
        node.crash()
        node.recover()
        assert [r.fid for r in topk(node, 1)] == [9]

    def test_group_mode_batch_is_durable_after_ack(self):
        node = make_node()
        attach_memory_durability(node, sync="group")
        node.add_profiles(1, NOW, 1, 0, [1, 2, 3], [(1,), (2,), (3,)])
        node.durability.wal._file.crash()  # Machine death right after ack.
        node.crash()
        report = node.recover()
        assert report.records_replayed == 3
        assert {r.fid for r in topk(node, 1)} == {1, 2, 3}

    def test_batch_write_group_commits_once(self):
        """add_profiles routes through append_many: one commit per batch."""
        node = make_node()
        durability = attach_memory_durability(node, sync="group")
        node.add_profiles(1, NOW, 1, 0, [1, 2, 3], [(1,), (2,), (3,)])
        assert durability.wal.stats.appends == 3
        assert durability.wal.stats.commits == 1
        assert durability.stats.writes_logged == 3


class TestCheckpoint:
    def test_checkpoint_truncates_wal(self):
        node = make_node()
        durability = attach_memory_durability(node)
        for fid in range(8):
            node.add_profile(1, NOW, 1, 0, fid, {"click": 1})
        assert durability.wal.pending_records() == 8
        report = node.checkpoint()
        assert report.sequence == 8
        assert report.wal_records_truncated == 8
        assert durability.wal.pending_records() == 0

    def test_recovery_dedups_checkpointed_records(self):
        node = make_node()
        attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 1, {"click": 5})
        node.checkpoint()
        node.add_profile(1, NOW, 1, 0, 2, {"click": 7})
        before_counts = {
            r.fid: r.counts for r in (lambda: (node.merge_write_table(), topk(node, 1))[1])()
        }
        node.crash()
        report = node.recover()
        assert report.checkpoint_sequence == 1
        assert report.records_replayed == 1  # Only the post-checkpoint write.
        assert {r.fid: r.counts for r in topk(node, 1)} == before_counts

    def test_maybe_checkpoint_runs_from_cache_cycle(self):
        node = make_node()
        durability = attach_memory_durability(
            node, checkpoint_interval_records=4
        )
        for fid in range(5):
            node.add_profile(1, NOW, 1, 0, fid, {"click": 1})
        assert durability.stats.checkpoints == 0
        node.run_cache_cycle()
        assert durability.stats.checkpoints == 1
        assert durability.wal.pending_records() == 0

    def test_checkpoint_skipped_when_store_failing(self):
        """A checkpoint must never truncate records it could not flush."""
        injector = FailureInjector()
        node = make_node(store=InMemoryKVStore(injector))
        durability = attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        node.merge_write_table()
        injector.set_rate(1.0)  # Every KV op now fails.
        report = node.checkpoint()
        assert report.skipped
        assert durability.wal.pending_records() == 1  # Nothing truncated.
        injector.set_rate(0.0)
        assert not node.checkpoint().skipped

    def test_checkpoint_commits_despite_writes_during_flush(self):
        """Writes landing mid-flush must not starve the checkpoint.

        Only profiles dirty at the barrier gate truncation; a write that
        arrives during the flush keeps its WAL record (sequence > barrier
        survives truncation), so the checkpoint commits, leaves the new
        entry dirty for the normal flush loop, and the write still
        recovers from the tail after a crash.
        """
        node = make_node()
        durability = attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        node.merge_write_table()
        real_flush = node.cache._flush_fn

        def flush_then_write(profile):
            real_flush(profile)
            node.cache._flush_fn = real_flush  # Inject exactly once.
            node.add_profile(2, NOW, 1, 0, 9, {"click": 2})
            node.merge_write_table()

        node.cache._flush_fn = flush_then_write
        report = node.checkpoint()
        assert not report.skipped
        assert report.sequence == 1
        # The mid-flush write's record survived the truncation, and its
        # profile stays dirty for the regular flush loop (the checkpoint
        # did not chase it).
        assert durability.wal.pending_records() == 1
        assert node.cache.dirty.total_entries() == 1
        node.crash()
        node.recover()
        assert [r.fid for r in topk(node, 2)] == [9]
        assert [r.fid for r in topk(node, 1)] == [1]

    def test_file_backed_restart_preserves_sequence_space(self, tmp_path):
        """Writes acked after a restart must survive the next crash.

        Regression: a checkpoint truncates the WAL to empty, so a process
        restart used to rescan ``last_sequence = 0`` while the checkpoint
        barrier restored to 3; new acked writes then took sequences 1..2
        and the next recovery silently discarded them via the
        ``sequence <= checkpoint_sequence`` dedup.
        """

        def open_durability(node):
            durability = NodeDurability(
                WriteAheadLog(FileLogFile(tmp_path / "wal.log")),
                FileLogFile(tmp_path / "checkpoint.bin"),
                node_id=node.node_id,
            )
            node.durability = durability
            return durability

        store = InMemoryKVStore()  # The KV cluster outlives the process.
        node = make_node(store=store)
        durability = open_durability(node)
        for fid in range(3):
            node.add_profile(1, NOW, 1, 0, fid, {"click": 1})
        node.merge_write_table()
        assert node.checkpoint().sequence == 3
        durability.close()

        # Process restart: fresh node + durability over the same files.
        node = make_node(store=store)
        durability = open_durability(node)
        assert durability.wal.last_sequence == 3  # Seeded from the barrier.
        node.add_profile(1, NOW, 1, 0, 10, {"click": 1})
        node.add_profile(1, NOW, 1, 0, 11, {"click": 1})
        node.merge_write_table()
        before = topk(node, 1)
        node.crash()
        report = node.recover()
        assert report.records_replayed == 2  # Not deduped away.
        assert topk(node, 1) == before
        assert {r.fid for r in topk(node, 1)} == {0, 1, 2, 10, 11}
        durability.close()

    def test_shutdown_checkpoints(self):
        node = make_node()
        durability = attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        node.shutdown()
        assert durability.stats.checkpoints == 1
        assert durability.wal.pending_records() == 0

    def test_corrupt_checkpoint_raises(self):
        checkpoint_file = MemoryLogFile()
        checkpoint_file.rewrite(b"\x00\x01\x02garbage")
        with pytest.raises(StorageError):
            NodeDurability(
                WriteAheadLog(MemoryLogFile()), checkpoint_file
            )


class TestFineGrainedRecovery:
    def test_recovery_with_fine_grained_persistence(self):
        node = make_node(fine_grained=True)
        attach_memory_durability(node)
        for fid in range(6):
            node.add_profile(1, NOW + fid * 3_600_000, 1, 0, fid, {"click": 1})
        node.merge_write_table()
        node.cache.flush_all()
        node.add_profile(1, NOW + 7 * 3_600_000, 1, 0, 99, {"click": 4})
        node.merge_write_table()
        before = topk(node, 1)
        node.crash()
        node.recover()
        assert topk(node, 1) == before

    def test_recovery_sweeps_orphan_slices(self):
        node = make_node(fine_grained=True)
        attach_memory_durability(node)
        node.add_profile(1, NOW, 1, 0, 5, {"click": 1})
        node.merge_write_table()
        node.cache.flush_all()
        # Plant an orphan the way a mid-flush death would.
        node.persistence._store.set(b"t/s/1/999", b"orphan-blob")
        node.crash()
        report = node.recover()
        assert report.orphan_slices_swept == 1
        assert node.persistence._store.get(b"t/s/1/999") is None
