"""Property tests for the kernel-layer arithmetic contracts.

Hypothesis-driven checks of the algebra the columnar backend relies on:

* ``FeatureStat.merge_counts`` is commutative, and associative away from
  the int64 saturation boundary, for SUM; fully associative/commutative
  for MAX (order-free, which is why the numpy backend may group with an
  unstable sort);
* ``clamp_int64`` saturates exactly at INT64_MAX / INT64_MIN;
* ``FeatureStat.scaled`` truncates toward zero (C++ ``int64(c * w)``
  semantics) — and the numpy decay kernel reproduces it bit-for-bit,
  including for negative counts.

The suite runs under the "deterministic" hypothesis profile registered in
``conftest.py`` so tier-1 runs draw identical examples every time.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.clock import MILLIS_PER_DAY  # noqa: E402
from repro.config import TableConfig  # noqa: E402
from repro.core.aggregate import (  # noqa: E402
    aggregate_max,
    aggregate_sum,
    get_aggregate,
)
from repro.core.feature import (  # noqa: E402
    INT64_MAX,
    INT64_MIN,
    FeatureStat,
    clamp_int64,
)
from repro.core.kernels import available_backends  # noqa: E402
from repro.core.profile import ProfileData  # noqa: E402
from repro.core.query import QueryEngine, QueryStats  # noqa: E402
from repro.core.timerange import TimeRange  # noqa: E402

NOW = 400 * MILLIS_PER_DAY
ATTRIBUTES = ("like", "comment", "share")

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="numpy kernel backend unavailable",
)

#: Anywhere in int64 (the stored domain — writes are clamped on entry).
int64s = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
#: Far from saturation: sums of three never leave int64.
small_ints = st.integers(min_value=-(2**60), max_value=2**60)


def count_lists(values, max_size=4):
    return st.lists(values, min_size=0, max_size=max_size)


def merged(counts_a, ts_a, counts_b, ts_b, aggregate):
    stat = FeatureStat(1, counts_a, ts_a)
    stat.merge_counts(counts_b, aggregate, ts_b)
    return (stat.counts, stat.last_timestamp_ms)


class TestMergeAlgebra:
    @given(a=count_lists(int64s), b=count_lists(int64s))
    def test_max_merge_commutative(self, a, b):
        assert merged(a, 10, b, 20, aggregate_max) == merged(
            b, 20, a, 10, aggregate_max
        )

    @given(a=count_lists(int64s), b=count_lists(int64s), c=count_lists(int64s))
    def test_max_merge_associative(self, a, b, c):
        left = FeatureStat(1, a, 1)
        left.merge_counts(b, aggregate_max, 2)
        left.merge_counts(c, aggregate_max, 3)
        bc = FeatureStat(1, b, 2)
        bc.merge_counts(c, aggregate_max, 3)
        right = FeatureStat(1, a, 1)
        right.merge_counts(bc.counts, aggregate_max, bc.last_timestamp_ms)
        assert left.counts == right.counts
        assert left.last_timestamp_ms == right.last_timestamp_ms

    @given(a=count_lists(small_ints), b=count_lists(small_ints))
    def test_sum_merge_commutative(self, a, b):
        assert merged(a, 10, b, 20, aggregate_sum) == merged(
            b, 20, a, 10, aggregate_sum
        )

    @given(
        a=count_lists(small_ints),
        b=count_lists(small_ints),
        c=count_lists(small_ints),
    )
    def test_sum_merge_associative_away_from_saturation(self, a, b, c):
        left = FeatureStat(1, a, 1)
        left.merge_counts(b, aggregate_sum, 2)
        left.merge_counts(c, aggregate_sum, 3)
        bc = FeatureStat(1, b, 2)
        bc.merge_counts(c, aggregate_sum, 3)
        right = FeatureStat(1, a, 1)
        right.merge_counts(bc.counts, aggregate_sum, bc.last_timestamp_ms)
        assert left.counts == right.counts

    def test_sum_merge_not_associative_at_saturation(self):
        """The boundary case that justifies the columnar overflow guard:
        stepwise clamping makes saturated sums order-dependent."""
        left = FeatureStat(1, [INT64_MAX], 1)
        left.merge_counts([1], aggregate_sum, 2)   # clamps at MAX
        left.merge_counts([-1], aggregate_sum, 3)  # then steps back down
        right = FeatureStat(1, [INT64_MAX], 1)
        right.merge_counts([0], aggregate_sum, 3)  # 1 + (-1) pre-combined
        assert left.counts == [INT64_MAX - 1]
        assert right.counts == [INT64_MAX]


class TestClampSaturation:
    @given(value=st.integers(min_value=-(2**80), max_value=2**80))
    def test_clamp_matches_spec(self, value):
        assert clamp_int64(value) == min(max(value, INT64_MIN), INT64_MAX)

    @given(bump=st.integers(min_value=0, max_value=2**70))
    def test_saturates_at_int64_max(self, bump):
        stat = FeatureStat(1, [INT64_MAX], 1)
        stat.merge_counts([bump], aggregate_sum, 2)
        assert stat.counts == [INT64_MAX]

    @given(bump=st.integers(min_value=0, max_value=2**70))
    def test_saturates_at_int64_min(self, bump):
        stat = FeatureStat(1, [INT64_MIN], 1)
        stat.merge_counts([-bump], aggregate_sum, 2)
        assert stat.counts == [INT64_MIN]


class TestScaledTruncation:
    @given(
        counts=count_lists(st.integers(-(2**40), 2**40)),
        weight=st.floats(min_value=0.001, max_value=0.999),
    )
    def test_scaled_truncates_toward_zero(self, counts, weight):
        stat = FeatureStat(1, counts, 5)
        scaled = stat.scaled(weight)
        assert scaled.counts == [int(count * weight) for count in counts]
        # Truncation toward zero, not floor: negatives round up.
        for count, value in zip(counts, scaled.counts):
            assert abs(value) <= abs(count * weight)

    @requires_numpy
    @given(
        counts=st.lists(
            st.integers(-(2**40), 2**40),
            min_size=1,
            max_size=len(ATTRIBUTES),
        ),
        weight=st.floats(min_value=0.001, max_value=0.999),
    )
    def test_decay_truncation_parity_between_backends(self, counts, weight):
        """One-slice decay with a constant weight: the numpy batch scaler
        must reproduce ``scaled()`` exactly, negatives included."""
        aggregate = get_aggregate("sum")
        profile = ProfileData(1, write_granularity_ms=MILLIS_PER_DAY)
        profile.add(NOW - MILLIS_PER_DAY, 1, 1, 42, counts, aggregate)
        config = TableConfig(name="parity", attributes=ATTRIBUTES)
        time_range = TimeRange.current(10 * MILLIS_PER_DAY)

        def constant_weight(age_ms: int, factor: float) -> float:
            return weight

        outputs = []
        for backend in ("python", "numpy"):
            stats = QueryStats()
            engine = QueryEngine(config, aggregate, backend=backend)
            outputs.append(
                (
                    engine.decay(
                        profile, 1, 1, time_range, constant_weight, 1.0,
                        now_ms=NOW, stats=stats,
                    ),
                    stats,
                )
            )
        assert outputs[0] == outputs[1]
        results = outputs[0][0]
        assert [tuple(int(c * weight) for c in counts)] == [
            result.counts for result in results
        ]
