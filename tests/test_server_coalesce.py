"""Server-side request coalescing: singleflight + adaptive batch windows.

Concurrency tests for the hot-read path: N threads issuing the same hot
read must observe exactly one engine execution; a leader failure (partial
or total) must propagate to every coalesced waiter; and per-waiter
resilience primitives from the batch-query stack — deadlines and circuit
breakers — must keep working when requests are coalesced.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock, SystemClock
from repro.cluster.resilience import CircuitBreaker, Deadline
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import DeadlineExceededError, IPSError
from repro.server import (
    AdaptiveBatcher,
    CoalesceConfig,
    IPSNode,
    SingleFlight,
)
from repro.storage import InMemoryKVStore

NOW_MS = 400 * MILLIS_PER_DAY


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    return threads


def _join_all(threads, timeout=10.0):
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "worker thread hung"


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_identical_calls_execute_once(self):
        flight = SingleFlight()
        release = threading.Event()
        calls = []
        results = {}

        def slow_fn():
            calls.append(1)
            assert release.wait(5.0)
            return [1, 2, 3]

        def worker(index):
            results[index] = flight.execute("key", slow_fn)

        threads = _run_threads(8, worker)
        # The leader is inside slow_fn; wait until every other thread has
        # joined its flight (coalesced increments before the wait).
        deadline = time.monotonic() + 5.0
        while flight.stats.coalesced < 7:
            assert time.monotonic() < deadline, "waiters never coalesced"
            time.sleep(0.001)
        release.set()
        _join_all(threads)

        assert len(calls) == 1
        assert flight.stats.executions == 1
        assert flight.stats.coalesced == 7
        leaders = [index for index, (_, lead) in results.items() if lead]
        assert len(leaders) == 1
        assert all(value == [1, 2, 3] for value, _ in results.values())

    def test_sequential_calls_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.execute("k", lambda: 1) == (1, True)
        assert flight.execute("k", lambda: 2) == (2, True)
        assert flight.stats.executions == 2
        assert flight.stats.coalesced == 0

    def test_different_keys_run_independently(self):
        flight = SingleFlight()
        assert flight.execute("a", lambda: "A") == ("A", True)
        assert flight.execute("b", lambda: "B") == ("B", True)
        assert flight.stats.coalesced == 0

    def test_leader_failure_propagates_to_every_waiter(self):
        flight = SingleFlight()
        release = threading.Event()
        outcomes = {}

        def failing_fn():
            assert release.wait(5.0)
            raise IPSError("backend exploded")

        def worker(index):
            try:
                flight.execute("key", failing_fn)
                outcomes[index] = None
            except IPSError as exc:
                outcomes[index] = exc

        threads = _run_threads(5, worker)
        deadline = time.monotonic() + 5.0
        while flight.stats.coalesced < 4:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        release.set()
        _join_all(threads)

        assert len(outcomes) == 5
        assert all(isinstance(exc, IPSError) for exc in outcomes.values())
        # Every waiter re-raised the leader's exception object.
        assert len({id(exc) for exc in outcomes.values()}) == 1
        assert flight.stats.errors_shared == 4
        # The failed flight was cleaned up: the key executes again.
        assert flight.execute("key", lambda: "ok") == ("ok", True)

    def test_waiter_deadline_honored_while_leader_runs(self):
        flight = SingleFlight()
        clock = SystemClock()
        release = threading.Event()
        leader_done = {}

        def slow_fn():
            assert release.wait(5.0)
            return "slow result"

        def leader_worker(index):
            leader_done[index] = flight.execute("key", slow_fn)

        threads = _run_threads(1, leader_worker)
        deadline = time.monotonic() + 5.0
        while flight.stats.executions == 0 and not flight._flights:
            assert time.monotonic() < deadline
            time.sleep(0.001)

        # A short-deadline waiter joins the in-flight execution and gives
        # up on its own budget; the leader is unaffected.
        with pytest.raises(DeadlineExceededError):
            flight.execute("key", slow_fn, deadline=Deadline(clock, 30.0))
        release.set()
        _join_all(threads)
        assert leader_done[0] == ("slow result", True)
        assert flight.stats.coalesced == 1


# ----------------------------------------------------------------------
# AdaptiveBatcher
# ----------------------------------------------------------------------


class TestAdaptiveBatcher:
    def _batcher(self, **overrides):
        defaults = dict(window_ms=200.0, max_batch=4, min_batch=2,
                        disarm_after=2)
        defaults.update(overrides)
        return AdaptiveBatcher(CoalesceConfig(**defaults))

    def test_starts_disarmed_and_solo_reads_stay_windowless(self):
        batcher = self._batcher()
        assert not batcher.armed
        start = time.monotonic()
        result = batcher.submit("shape", 1, lambda ids: {1: "r1"})
        assert result == "r1"
        # No window was held: a disarmed solo read returns immediately.
        assert time.monotonic() - start < 0.1
        assert not batcher.armed
        assert batcher.stats.batches == 1
        assert batcher.stats.armed_windows == 0

    def test_concurrent_arrivals_arm_the_window(self):
        batcher = self._batcher(window_ms=0.0)
        release = threading.Event()
        results = {}

        def blocked_execute(ids):
            assert release.wait(5.0)
            return {pid: f"r{pid}" for pid in ids}

        def leader(index):
            results["leader"] = batcher.submit("shape", 1, blocked_execute)

        threads = _run_threads(1, leader)
        deadline = time.monotonic() + 5.0
        while not batcher._executing:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        assert not batcher.armed

        # A same-shape arrival lands while the first batch is executing:
        # that is observed concurrency, and it arms the window.
        results["second"] = batcher.submit(
            "shape", 2, lambda ids: {pid: f"r{pid}" for pid in ids}
        )
        assert batcher.armed
        release.set()
        _join_all(threads)
        assert results["leader"] == "r1"
        assert results["second"] == "r2"

        # A different-shape arrival during execution would not arm.
        batcher2 = self._batcher(window_ms=0.0)
        batcher2.submit("a", 1, lambda ids: {1: "x"})
        assert not batcher2.armed

    def test_consecutive_small_batches_disarm(self):
        batcher = self._batcher(window_ms=0.0, disarm_after=2)
        batcher._armed = True  # As if concurrency had been observed.

        def execute_many(ids):
            return {pid: f"r{pid}" for pid in ids}

        batcher.submit("shape", 5, execute_many)
        assert batcher.armed  # One small batch is tolerated...
        batcher.submit("shape", 6, execute_many)
        assert not batcher.armed  # ...two consecutive ones disarm.

    def test_armed_window_accumulates_members_into_one_execution(self):
        batcher = self._batcher(window_ms=500.0, max_batch=2)
        batcher._armed = True  # Pre-arm: concurrency already observed.
        executions = []
        barrier = threading.Barrier(2)
        results = {}

        def execute_many(ids):
            executions.append(tuple(ids))
            return {pid: pid * 10 for pid in ids}

        def worker(index):
            barrier.wait(5.0)
            results[index] = batcher.submit(
                "shape", index + 1, execute_many
            )

        threads = _run_threads(2, worker)
        _join_all(threads)

        # One execution served both profiles (max_batch=2 closed the
        # window as soon as the second member joined).
        assert len(executions) == 1
        assert sorted(executions[0]) == [1, 2]
        assert results == {0: 10, 1: 20}
        assert batcher.stats.batches == 1
        assert batcher.stats.batched_keys == 2
        assert batcher.stats.joined == 1
        assert batcher.stats.armed_windows == 1
        assert batcher.stats.mean_occupancy == 2.0

    def test_per_profile_failure_isolated_to_its_waiter(self):
        batcher = self._batcher(window_ms=500.0, max_batch=2)
        batcher._armed = True
        barrier = threading.Barrier(2)
        outcomes = {}

        def execute_many(ids):
            return {
                pid: IPSError(f"profile {pid} failed") if pid == 2 else "ok"
                for pid in ids
            }

        def worker(index):
            barrier.wait(5.0)
            try:
                outcomes[index] = batcher.submit(
                    "shape", index + 1, execute_many
                )
            except IPSError as exc:
                outcomes[index] = exc

        threads = _run_threads(2, worker)
        _join_all(threads)

        assert outcomes[0] == "ok"
        assert isinstance(outcomes[1], IPSError)
        assert "profile 2 failed" in str(outcomes[1])

    def test_whole_batch_failure_propagates_to_all_waiters(self):
        batcher = self._batcher(window_ms=500.0, max_batch=2)
        batcher._armed = True
        barrier = threading.Barrier(2)
        outcomes = {}

        def execute_many(ids):
            raise IPSError("multi-get pass failed")

        def worker(index):
            barrier.wait(5.0)
            try:
                outcomes[index] = batcher.submit(
                    "shape", index + 1, execute_many
                )
            except IPSError as exc:
                outcomes[index] = exc

        threads = _run_threads(2, worker)
        _join_all(threads)
        assert all(isinstance(exc, IPSError) for exc in outcomes.values())
        assert len(outcomes) == 2

    def test_joiner_deadline_honored_during_long_window(self):
        batcher = self._batcher(window_ms=800.0, max_batch=64)
        batcher._armed = True
        clock = SystemClock()
        results = {}

        def execute_many(ids):
            return {pid: "late" for pid in ids}

        def leader(index):
            results["leader"] = batcher.submit("shape", 1, execute_many)

        threads = _run_threads(1, leader)
        deadline = time.monotonic() + 5.0
        while "shape" not in batcher._open:
            assert time.monotonic() < deadline
            time.sleep(0.001)

        # The joiner's own 30ms budget expires while the leader holds the
        # 800ms window open; it bails without sinking the batch.
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            batcher.submit(
                "shape", 2, execute_many, deadline=Deadline(clock, 30.0)
            )
        assert time.monotonic() - start < 0.7
        _join_all(threads)
        assert results["leader"] == "late"

    def test_dedup_same_profile_in_window(self):
        batcher = self._batcher(window_ms=0.0)
        result = batcher.submit("shape", 3, lambda ids: {3: len(ids)})
        assert result == 1


# ----------------------------------------------------------------------
# Node-level: N identical hot reads -> one engine execution
# ----------------------------------------------------------------------


def _hot_node(clock=None, coalesce=None):
    config = TableConfig(name="coalesce", attributes=("like", "share"))
    node = IPSNode(
        "hot",
        config,
        InMemoryKVStore(),
        clock=clock if clock is not None else SimulatedClock(start_ms=NOW_MS),
        result_cache=256,
        coalesce=coalesce if coalesce is not None else CoalesceConfig(window_ms=0.0),
    )
    for fid in range(10):
        node.add_profile(1, NOW_MS - fid * 1000, 1, 0, fid, {"like": fid + 1})
        node.add_profile(
            2, NOW_MS - fid * 1000, 1, 0, fid + 20, {"share": fid + 1}
        )
    node.merge_write_table()
    return node


class TestNodeCoalescing:
    def test_identical_hot_reads_execute_once(self):
        node = _hot_node()
        window = TimeRange.absolute(0, NOW_MS + 1)
        release = threading.Event()
        engine_calls = []
        real_topk = node.engine.get_profile_topk

        def slow_topk(*args, **kwargs):
            engine_calls.append(1)
            assert release.wait(5.0)
            return real_topk(*args, **kwargs)

        node.engine.get_profile_topk = slow_topk
        results = {}

        def worker(index):
            results[index] = node.get_profile_topk(
                1, 1, 0, window, SortType.TOTAL, 5
            )

        threads = _run_threads(6, worker)
        deadline = time.monotonic() + 5.0
        while node.singleflight.stats.coalesced < 5:
            assert time.monotonic() < deadline, "reads never coalesced"
            time.sleep(0.001)
        release.set()
        _join_all(threads)

        # Exactly one engine execution served all six readers.
        assert len(engine_calls) == 1
        assert node.singleflight.stats.executions == 1
        assert node.singleflight.stats.coalesced == 5
        baseline = repr(results[0])
        assert all(repr(value) == baseline for value in results.values())
        # Waiters received private copies, not aliases of one list.
        assert len({id(value) for value in results.values()}) == 6

        # Afterwards the result cache serves the same read with zero
        # additional executions.
        node.engine.get_profile_topk = real_topk
        hits_before = node.result_cache.stats.hits
        again = node.get_profile_topk(1, 1, 0, window, SortType.TOTAL, 5)
        assert repr(again) == baseline
        assert node.result_cache.stats.hits == hits_before + 1
        assert node.singleflight.stats.executions == 1

    def test_coalesced_partial_failure_reaches_every_waiter(self):
        node = _hot_node()
        window = TimeRange.absolute(0, NOW_MS + 1)
        release = threading.Event()

        def failing_topk(*args, **kwargs):
            assert release.wait(5.0)
            raise IPSError("storage fault mid-read")

        node.engine.get_profile_topk = failing_topk
        outcomes = {}

        def worker(index):
            try:
                outcomes[index] = node.get_profile_topk(
                    1, 1, 0, window, SortType.TOTAL, 5
                )
            except IPSError as exc:
                outcomes[index] = exc

        threads = _run_threads(4, worker)
        deadline = time.monotonic() + 5.0
        while node.singleflight.stats.coalesced < 3:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        release.set()
        _join_all(threads)

        assert len(outcomes) == 4
        assert all(isinstance(exc, IPSError) for exc in outcomes.values())
        assert node.singleflight.stats.errors_shared == 3
        # The failure was never installed in the result cache.
        assert node.result_cache.stats.installs == 0

    def test_waiter_deadline_honored_through_node_read(self):
        node = _hot_node()
        window = TimeRange.absolute(0, NOW_MS + 1)
        release = threading.Event()
        real_topk = node.engine.get_profile_topk

        def slow_topk(*args, **kwargs):
            assert release.wait(5.0)
            return real_topk(*args, **kwargs)

        node.engine.get_profile_topk = slow_topk
        results = {}

        def leader(index):
            results["leader"] = node.get_profile_topk(
                1, 1, 0, window, SortType.TOTAL, 5
            )

        threads = _run_threads(1, leader)
        deadline = time.monotonic() + 5.0
        while node.singleflight.stats.executions == 0 and not (
            node.singleflight._flights
        ):
            assert time.monotonic() < deadline
            time.sleep(0.001)

        wall = SystemClock()
        with pytest.raises(DeadlineExceededError):
            node.get_profile_topk(
                1, 1, 0, window, SortType.TOTAL, 5,
                deadline=Deadline(wall, 30.0),
            )
        release.set()
        _join_all(threads)
        assert results["leader"]

    def test_circuit_breaker_honored_per_waiter(self):
        """Coalesced failures still feed each waiter's breaker.

        Every waiter that shares the leader's failure records it against
        its own circuit breaker, and a tripped breaker rejects the next
        read locally — no execution, no coalescing.
        """
        node = _hot_node()
        window = TimeRange.absolute(0, NOW_MS + 1)
        clock = SystemClock()
        release = threading.Event()

        def failing_topk(*args, **kwargs):
            assert release.wait(5.0)
            raise IPSError("node sick")

        node.engine.get_profile_topk = failing_topk
        breakers = {i: CircuitBreaker(clock, failure_threshold=1) for i in range(3)}
        outcomes = {}

        def worker(index):
            breaker = breakers[index]
            if not breaker.allow():
                outcomes[index] = "rejected"
                return
            try:
                outcomes[index] = node.get_profile_topk(
                    1, 1, 0, window, SortType.TOTAL, 5
                )
                breaker.record_success()
            except IPSError as exc:
                breaker.record_failure()
                outcomes[index] = exc

        threads = _run_threads(3, worker)
        deadline = time.monotonic() + 5.0
        while node.singleflight.stats.coalesced < 2:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        release.set()
        _join_all(threads)

        # One shared failure tripped all three waiters' breakers.
        assert all(isinstance(exc, IPSError) for exc in outcomes.values())
        assert all(not b.allow() for b in breakers.values())
        executions_before = node.singleflight.stats.executions

        # The next read is rejected locally by the open breaker — the
        # coalescing layer never even sees it.
        for breaker in breakers.values():
            assert not breaker.allow()
        assert node.singleflight.stats.executions == executions_before

    def test_batch_window_merges_distinct_profiles_same_shape(self):
        node = _hot_node(coalesce=CoalesceConfig(window_ms=500.0, max_batch=2))
        node.batcher._armed = True  # Concurrency already observed.
        window = TimeRange.absolute(0, NOW_MS + 1)
        barrier = threading.Barrier(2)
        results = {}

        def worker(index):
            profile_id = index + 1
            barrier.wait(5.0)
            results[profile_id] = node.get_profile_topk(
                profile_id, 1, 0, window, SortType.TOTAL, 5
            )

        threads = _run_threads(2, worker)
        _join_all(threads)

        # Both profiles were served out of one batch-window execution.
        assert node.batcher.stats.batches == 1
        assert node.batcher.stats.batched_keys == 2
        assert results[1] and results[2]
        assert repr(results[1]) != repr(results[2])
        # And the results match a cold per-profile read on a fresh node.
        fresh = _hot_node()
        for profile_id in (1, 2):
            assert repr(results[profile_id]) == repr(
                fresh.get_profile_topk(
                    profile_id, 1, 0, window, SortType.TOTAL, 5
                )
            )
