"""Tests for Slice, InstanceSet and ProfileData (slice-list management)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import aggregate_sum
from repro.core.instance_set import InstanceSet
from repro.core.profile import ProfileData
from repro.core.slice import Slice
from repro.errors import InvalidTimeRangeError


class TestInstanceSet:
    def test_add_creates_and_merges(self):
        instance_set = InstanceSet()
        instance_set.add(1, 10, [1, 0], 100, aggregate_sum)
        instance_set.add(1, 10, [2, 5], 200, aggregate_sum)
        stat = instance_set.get(1, 10)
        assert stat.counts == [3, 5]
        assert stat.last_timestamp_ms == 200

    def test_types_are_separate(self):
        instance_set = InstanceSet()
        instance_set.add(1, 10, [1], 0, aggregate_sum)
        instance_set.add(2, 10, [1], 0, aggregate_sum)
        assert len(list(instance_set.features_for_type(1))) == 1
        assert len(list(instance_set.features_for_type(None))) == 2

    def test_features_for_missing_type_is_empty(self):
        assert list(InstanceSet().features_for_type(5)) == []

    def test_merge_from_combines(self):
        a, b = InstanceSet(), InstanceSet()
        a.add(1, 10, [1], 0, aggregate_sum)
        b.add(1, 10, [2], 0, aggregate_sum)
        b.add(2, 20, [7], 0, aggregate_sum)
        a.merge_from(b, aggregate_sum)
        assert a.get(1, 10).counts == [3]
        assert a.get(2, 20).counts == [7]

    def test_replace_type_with_empty_removes_type(self):
        instance_set = InstanceSet()
        instance_set.add(1, 10, [1], 0, aggregate_sum)
        instance_set.replace_type(1, [])
        assert instance_set.is_empty()

    def test_copy_is_deep(self):
        instance_set = InstanceSet()
        instance_set.add(1, 10, [1], 0, aggregate_sum)
        duplicate = instance_set.copy()
        duplicate.get(1, 10).counts[0] = 99
        assert instance_set.get(1, 10).counts[0] == 1


class TestSlice:
    def test_rejects_empty_range(self):
        with pytest.raises(InvalidTimeRangeError):
            Slice(100, 100)

    def test_contains_is_half_open(self):
        s = Slice(100, 200)
        assert s.contains(100)
        assert s.contains(199)
        assert not s.contains(200)

    def test_overlaps(self):
        s = Slice(100, 200)
        assert s.overlaps(150, 250)
        assert s.overlaps(0, 101)
        assert not s.overlaps(200, 300)
        assert not s.overlaps(0, 100)

    def test_add_rejects_out_of_range_timestamp(self):
        s = Slice(100, 200)
        with pytest.raises(InvalidTimeRangeError):
            s.add(1, 1, 1, [1], 250, aggregate_sum)

    def test_add_and_features(self):
        s = Slice(0, 1000)
        s.add(1, 2, 42, [1, 2], 500, aggregate_sum)
        stats = list(s.features(1, 2))
        assert len(stats) == 1 and stats[0].fid == 42

    def test_features_missing_slot_is_empty(self):
        assert list(Slice(0, 10).features(9, None)) == []

    def test_merge_from_widens_range(self):
        a = Slice(100, 200)
        b = Slice(0, 100)
        b.add(1, 1, 7, [3], 50, aggregate_sum)
        a.merge_from(b, aggregate_sum)
        assert a.start_ms == 0 and a.end_ms == 200
        assert list(a.features(1, 1))[0].counts == [3]

    def test_memory_cache_invalidated_by_mutation(self):
        s = Slice(0, 1000)
        before = s.memory_bytes()
        s.add(1, 1, 1, [1], 10, aggregate_sum)
        assert s.memory_bytes() > before

    def test_drop_empty_slots(self):
        s = Slice(0, 1000)
        s.add(1, 1, 1, [1], 10, aggregate_sum)
        instance_set = s.instance_set(1)
        instance_set.replace_type(1, [])
        s.drop_empty_slots()
        assert s.slot_ids == ()


class TestProfileDataWritePlacement:
    def test_first_write_creates_head_slice(self):
        profile = ProfileData(1, write_granularity_ms=1000)
        profile.add(5500, 1, 1, 1, [1], aggregate_sum)
        assert profile.slice_count() == 1
        head = profile.slices[0]
        assert head.start_ms == 5000 and head.end_ms == 6000

    def test_newer_write_prepends(self):
        profile = ProfileData(1, 1000)
        profile.add(1000, 1, 1, 1, [1], aggregate_sum)
        profile.add(5000, 1, 1, 2, [1], aggregate_sum)
        assert profile.slice_count() == 2
        assert profile.slices[0].contains(5000)
        profile.invariant_check()

    def test_write_into_existing_slice(self):
        profile = ProfileData(1, 1000)
        profile.add(1000, 1, 1, 1, [1], aggregate_sum)
        profile.add(1500, 1, 1, 2, [1], aggregate_sum)
        assert profile.slice_count() == 1

    def test_out_of_order_write_lands_in_gap(self):
        profile = ProfileData(1, 1000)
        profile.add(10_000, 1, 1, 1, [1], aggregate_sum)
        profile.add(2000, 1, 1, 2, [1], aggregate_sum)
        assert profile.slice_count() == 2
        profile.invariant_check()
        # Oldest slice is last.
        assert profile.slices[-1].contains(2000)

    def test_head_overlap_clamped(self):
        profile = ProfileData(1, 1000)
        profile.add(1000, 1, 1, 1, [1], aggregate_sum)
        # Timestamp in the same granule but >= end of head: start clamps.
        profile.add(2000, 1, 1, 2, [1], aggregate_sum)
        profile.invariant_check()

    def test_rejects_negative_timestamp(self):
        profile = ProfileData(1, 1000)
        with pytest.raises(InvalidTimeRangeError):
            profile.add(-5, 1, 1, 1, [1], aggregate_sum)

    def test_rejects_bad_granularity(self):
        with pytest.raises(InvalidTimeRangeError):
            ProfileData(1, 0)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=1, max_size=120
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_write_order_keeps_invariants(self, timestamps):
        """Property: arbitrary write orders never violate slice ordering."""
        profile = ProfileData(1, 1000)
        for index, timestamp in enumerate(timestamps):
            profile.add(timestamp, 1, 1, index, [1], aggregate_sum)
        profile.invariant_check()
        # Every write is represented: feature count equals write count.
        assert profile.feature_count() == len(timestamps)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=1, max_size=80
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_written_timestamp_is_covered(self, timestamps):
        """Property: each written timestamp falls inside some slice."""
        profile = ProfileData(1, 1000)
        for timestamp in timestamps:
            profile.add(timestamp, 1, 1, 1, [1], aggregate_sum)
        for timestamp in timestamps:
            assert any(s.contains(timestamp) for s in profile.slices)


class TestProfileDataWindows:
    def _profile_with_slices(self):
        profile = ProfileData(1, 1000)
        for timestamp in (1000, 3000, 5000, 7000):
            profile.add(timestamp, 1, 1, timestamp, [1], aggregate_sum)
        return profile

    def test_window_selects_overlapping_newest_first(self):
        profile = self._profile_with_slices()
        window = list(profile.slices_in_window(2500, 6000))
        assert [s.start_ms for s in window] == [5000, 3000]

    def test_empty_window_yields_nothing(self):
        profile = self._profile_with_slices()
        assert list(profile.slices_in_window(6000, 6000)) == []

    def test_window_before_all_data(self):
        profile = self._profile_with_slices()
        assert list(profile.slices_in_window(0, 500)) == []

    def test_newest_oldest_timestamps(self):
        profile = self._profile_with_slices()
        assert profile.newest_timestamp_ms() == 8000
        assert profile.oldest_timestamp_ms() == 1000

    def test_empty_profile_timestamps_are_none(self):
        profile = ProfileData(1)
        assert profile.newest_timestamp_ms() is None
        assert profile.oldest_timestamp_ms() is None

    def test_replace_slices_validates_ordering(self):
        profile = self._profile_with_slices()
        bad = [Slice(0, 1000), Slice(500, 2000)]
        with pytest.raises(InvalidTimeRangeError):
            profile.replace_slices(bad)

    def test_copy_is_deep(self):
        profile = self._profile_with_slices()
        duplicate = profile.copy()
        duplicate.slices[0].add(1, 1, 99, [1], 7500, aggregate_sum)
        assert profile.feature_count() == 4
        assert duplicate.feature_count() == 5

    def test_drop_empty_slices(self):
        profile = self._profile_with_slices()
        profile.slices[0]._slots.clear()
        assert profile.drop_empty_slices() == 1
        assert profile.slice_count() == 3
