"""Unit tests for the write-invalidated query-result cache."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.server import QueryResultCache


FP_A = ("topk", 1, 0, 0, 100, 10, "sum", ("total",))
FP_B = ("topk", 1, 0, 0, 100, 5, "sum", ("total",))


def _install(cache, profile_id, fingerprint, value):
    epoch = cache.epoch(profile_id)
    assert cache.put(profile_id, fingerprint, value, epoch)


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryResultCache(max_entries=4)
        assert cache.get(1, FP_A) is None
        _install(cache, 1, FP_A, [1, 2])
        assert cache.get(1, FP_A) == [1, 2]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_hit_returns_fresh_list(self):
        cache = QueryResultCache(max_entries=4)
        _install(cache, 1, FP_A, [1, 2])
        first = cache.get(1, FP_A)
        first.append(99)  # A caller mutating its copy must not poison others.
        assert cache.get(1, FP_A) == [1, 2]

    def test_entries_are_per_profile_and_per_fingerprint(self):
        cache = QueryResultCache(max_entries=8)
        _install(cache, 1, FP_A, ["a"])
        _install(cache, 1, FP_B, ["b"])
        _install(cache, 2, FP_A, ["c"])
        assert cache.get(1, FP_A) == ["a"]
        assert cache.get(1, FP_B) == ["b"]
        assert cache.get(2, FP_A) == ["c"]


class TestInvalidation:
    def test_invalidate_profile_drops_only_its_entries(self):
        cache = QueryResultCache(max_entries=8)
        _install(cache, 1, FP_A, ["a"])
        _install(cache, 2, FP_A, ["c"])
        cache.invalidate(1)
        assert cache.get(1, FP_A) is None
        assert cache.get(2, FP_A) == ["c"]
        assert cache.stats.invalidations == 1
        assert cache.stats.entries_invalidated == 1

    def test_invalidate_all_clears_everything(self):
        cache = QueryResultCache(max_entries=8)
        _install(cache, 1, FP_A, ["a"])
        _install(cache, 2, FP_A, ["c"])
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.get(1, FP_A) is None
        assert cache.get(2, FP_A) is None

    def test_stale_install_discarded_after_profile_invalidation(self):
        """The epoch guard: a result computed before a write must never
        be installed after the write's invalidation ran."""
        cache = QueryResultCache(max_entries=8)
        epoch = cache.epoch(1)  # Captured before executing the query...
        cache.invalidate(1)  # ...a write lands while the query runs...
        assert not cache.put(1, FP_A, ["stale"], epoch)  # ...install loses.
        assert cache.get(1, FP_A) is None
        assert cache.stats.install_races == 1

    def test_stale_install_discarded_after_global_invalidation(self):
        cache = QueryResultCache(max_entries=8)
        epoch = cache.epoch(1)
        cache.invalidate_all()
        assert not cache.put(1, FP_A, ["stale"], epoch)
        assert cache.get(1, FP_A) is None

    def test_fresh_install_after_invalidation_wins(self):
        cache = QueryResultCache(max_entries=8)
        cache.invalidate(1)
        _install(cache, 1, FP_A, ["fresh"])
        assert cache.get(1, FP_A) == ["fresh"]


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache = QueryResultCache(max_entries=2)
        _install(cache, 1, FP_A, ["a"])
        _install(cache, 2, FP_A, ["b"])
        assert cache.get(1, FP_A) == ["a"]  # 1 is now most recent.
        _install(cache, 3, FP_A, ["c"])  # Evicts profile 2's entry.
        assert cache.get(2, FP_A) is None
        assert cache.get(1, FP_A) == ["a"]
        assert cache.get(3, FP_A) == ["c"]
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_eviction_keeps_profile_index_consistent(self):
        cache = QueryResultCache(max_entries=1)
        _install(cache, 1, FP_A, ["a"])
        _install(cache, 1, FP_B, ["b"])  # Evicts the first entry.
        cache.invalidate(1)  # Must not blow up on the evicted fingerprint.
        assert len(cache) == 0


class TestMetrics:
    def test_registry_counters_exported(self):
        registry = MetricsRegistry()
        cache = QueryResultCache(max_entries=4, registry=registry)
        _install(cache, 1, FP_A, ["a"])
        cache.get(1, FP_A)
        cache.get(1, FP_B)
        cache.invalidate(1)
        text = registry.render_text()
        assert "result_cache_hits" in text
        assert "result_cache_misses" in text
        assert "result_cache_invalidations" in text

    def test_hit_ratio(self):
        cache = QueryResultCache(max_entries=4)
        assert cache.stats.hit_ratio == 0.0
        _install(cache, 1, FP_A, ["a"])
        cache.get(1, FP_A)
        cache.get(1, FP_B)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_repr_is_informative(self):
        cache = QueryResultCache(max_entries=4)
        _install(cache, 1, FP_A, ["a"])
        assert "entries=1" in repr(cache)


class TestValidation:
    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryResultCache(max_entries=0)
