"""Tests for hot configuration reload (§V-b)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE, SimulatedClock
from repro.config import ShrinkConfig, TableConfig, TimeDimensionConfig, TruncateConfig
from repro.core.engine import ProfileEngine
from repro.server.node import IPSNode
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def engine():
    config = TableConfig(name="t", attributes=("click",))
    return ProfileEngine(config, SimulatedClock(NOW))


class TestEngineReload:
    def test_new_time_dimension_changes_compaction(self, engine):
        # Write hourly data for two days: under the production config the
        # day-old entries compact to 1h slices.
        for hour in range(48):
            engine.add_profile(1, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour, [1])
        engine.maintain_profile(1)
        baseline = engine.table.get(1).slice_count()
        # Hot-switch to a coarse config: everything older than a minute
        # lives in 2-day slices.
        coarse = TimeDimensionConfig.from_mapping(
            {"1m": ("0s", "1m"), "2d": ("1m", "365d")}
        )
        engine.reload_config(time_dimension=coarse)
        engine.maintain_profile(1)
        assert engine.table.get(1).slice_count() < baseline

    def test_reload_marks_profiles_pending(self, engine):
        engine.add_profile(1, NOW, 1, 0, 1, [1])
        engine.add_profile(2, NOW, 1, 0, 1, [1])
        assert engine.pending_maintenance() == frozenset()
        engine.reload_config(truncate=TruncateConfig(max_slices=5))
        assert engine.pending_maintenance() == frozenset({1, 2})

    def test_new_truncate_applies_on_next_maintenance(self, engine):
        for day in range(10):
            engine.add_profile(1, NOW - day * MILLIS_PER_DAY, 1, 0, day, [1])
        engine.maintain_profile(1)
        assert engine.table.get(1).slice_count() > 3
        engine.reload_config(truncate=TruncateConfig(max_slices=3))
        engine.maintain_profile(1)
        assert engine.table.get(1).slice_count() <= 3

    def test_enable_shrink_live(self, engine):
        for fid in range(20):
            engine.add_profile(1, NOW, 1, 0, fid, [fid])
        engine.maintain_profile(1)
        assert engine.table.get(1).feature_count() == 20
        engine.reload_config(shrink=ShrinkConfig.from_mapping({1: 5}))
        engine.maintain_profile(1)
        assert engine.table.get(1).feature_count() == 5

    def test_disable_shrink_live(self):
        config = TableConfig(
            name="t", attributes=("click",),
            shrink=ShrinkConfig.from_mapping({1: 5}),
        )
        engine = ProfileEngine(config, SimulatedClock(NOW))
        assert engine.shrinker is not None
        engine.reload_config(clear_shrink=True)
        assert engine.shrinker is None
        for fid in range(20):
            engine.add_profile(1, NOW, 1, 0, fid, [fid])
        engine.maintain_profile(1)
        assert engine.table.get(1).feature_count() == 20

    def test_write_granularity_follows_new_finest_band(self, engine):
        coarse = TimeDimensionConfig.from_mapping(
            {"1m": ("0s", "1h"), "1h": ("1h", "365d")}
        )
        engine.reload_config(time_dimension=coarse)
        engine.add_profile(5, NOW, 1, 0, 1, [1])
        head = engine.table.get(5).slices[0]
        assert head.duration_ms == MILLIS_PER_MINUTE

    def test_queries_unaffected_mid_reload(self, engine):
        for hour in range(24):
            engine.add_profile(1, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour % 4, [1])
        from repro.core.timerange import TimeRange

        window = TimeRange.current(2 * MILLIS_PER_DAY)
        before = engine.get_profile_topk(1, 1, 0, window, k=10)
        coarse = TimeDimensionConfig.from_mapping(
            {"1m": ("0s", "1m"), "2d": ("1m", "365d")}
        )
        engine.reload_config(time_dimension=coarse)
        engine.maintain_profile(1)
        after = engine.get_profile_topk(1, 1, 0, window, k=10)
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }


class TestNodeReload:
    def test_node_passthrough(self):
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode("n0", config, InMemoryKVStore(), clock=SimulatedClock(NOW))
        node.reload_config(truncate=TruncateConfig(max_slices=2))
        assert node.engine.config.truncate.max_slices == 2

    def test_write_table_limit_hot_update(self):
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode("n0", config, InMemoryKVStore(), clock=SimulatedClock(NOW))
        node.set_write_table_limit(123_456)
        assert node.write_table.memory_limit_bytes == 123_456
        with pytest.raises(ValueError):
            node.set_write_table_limit(0)

    def test_quota_hot_update_is_live(self):
        """Quota changes are already hot (§V-b) — assert at node level."""
        from repro.errors import QuotaExceededError

        config = TableConfig(name="t", attributes=("click",))
        clock = SimulatedClock(NOW)
        node = IPSNode("n0", config, InMemoryKVStore(), clock=clock,
                       isolation_enabled=False)
        node.quota.set_quota("x", qps=10, burst=1)
        node.add_profile(1, NOW, 1, 0, 1, [1], caller="x")
        with pytest.raises(QuotaExceededError):
            node.add_profile(1, NOW, 1, 0, 1, [1], caller="x")
        node.quota.set_quota("x", qps=1000, burst=100)
        node.add_profile(1, NOW, 1, 0, 1, [1], caller="x")
