"""Tests for discovery-aware client routing (the Consul flow, §III)."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.timerange import TimeRange

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    config = TableConfig(name="t", attributes=("click",))
    return IPSCluster(config, num_nodes=3, clock=SimulatedClock(NOW))


class TestRegistrationLifecycle:
    def test_nodes_register_on_region_creation(self, cluster):
        records = cluster.discovery.healthy_instances("local")
        assert len(records) == 3
        assert {record.node_id for record in records} == set(cluster.region.nodes)

    def test_background_cycle_heartbeats(self, cluster):
        cluster.clock.advance(cluster.discovery.ttl_ms - 1000)
        cluster.run_background_cycle()  # Heartbeats refresh TTLs.
        cluster.clock.advance(cluster.discovery.ttl_ms - 1000)
        assert len(cluster.discovery.healthy_instances()) == 3

    def test_crashed_node_ages_out(self, cluster):
        victim = "local-node-0"
        cluster.region.fail_node(victim)
        cluster.clock.advance(cluster.discovery.ttl_ms + 1)
        cluster.run_background_cycle()  # Heartbeats healthy nodes only.
        healthy = {r.node_id for r in cluster.discovery.healthy_instances()}
        assert victim not in healthy
        assert len(healthy) == 2

    def test_recovered_node_reregisters(self, cluster):
        victim = "local-node-0"
        cluster.region.fail_node(victim)
        cluster.clock.advance(cluster.discovery.ttl_ms + 1)
        cluster.run_background_cycle()
        cluster.region.recover_node(victim)
        healthy = {r.node_id for r in cluster.discovery.healthy_instances()}
        assert victim in healthy


class TestDiscoveryAwareClient:
    def test_client_routes_around_unregistered_node(self, cluster):
        client = cluster.client("app", use_discovery=True)
        client.add_profile(7, NOW, 1, 0, 42, {"click": 1})
        cluster.run_background_cycle()
        owner = cluster.region.node_for(7).node_id
        # The owner crashes: it stops heartbeating but the region's failed
        # set is NOT updated (the crash is only visible via discovery).
        cluster.discovery.deregister(owner)
        results = client.get_profile_topk(7, 1, 0, WINDOW, k=1)
        assert results and results[0].fid == 42
        # The request was served by a different node than the ring owner.
        serving_nodes = [
            node_id for node_id, node in cluster.region.nodes.items()
            if node.stats.reads > 0
        ]
        assert serving_nodes and owner not in serving_nodes

    def test_refresh_only_on_epoch_change(self, cluster):
        client = cluster.client("app", use_discovery=True)
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        for _ in range(5):
            client.get_profile_topk(1, 1, 0, WINDOW, k=1)
        first = client.discovery_refreshes
        assert first >= 1
        for _ in range(5):
            client.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert client.discovery_refreshes == first  # Epoch unchanged.
        cluster.discovery.register("local-node-99", "local")
        client.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert client.discovery_refreshes == first + 1

    def test_discovery_disabled_by_default(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        owner = cluster.region.node_for(1).node_id
        cluster.discovery.deregister(owner)
        # Without use_discovery the client still routes to the ring owner.
        client.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert cluster.region.nodes[owner].stats.reads == 1
