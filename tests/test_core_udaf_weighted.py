"""Tests for user-defined aggregates and multi-dimensional (weighted) top-K."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.core.aggregate import (
    AGGREGATES,
    get_aggregate,
    register_aggregate,
    unregister_aggregate,
)
from repro.core.engine import ProfileEngine
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import ConfigError, InvalidQueryError

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)


@pytest.fixture
def engine():
    config = TableConfig(name="t", attributes=("like", "comment", "share"))
    return ProfileEngine(config, SimulatedClock(NOW))


class TestUDAFRegistry:
    def test_register_and_use(self):
        register_aggregate("clamp10", lambda a, b: min(10, a + b))
        try:
            assert get_aggregate("clamp10")(7, 8) == 10
            assert "clamp10" in AGGREGATES
        finally:
            unregister_aggregate("clamp10")
        with pytest.raises(ConfigError):
            get_aggregate("clamp10")

    def test_cannot_override_builtin(self):
        with pytest.raises(ConfigError):
            register_aggregate("sum", lambda a, b: 0)
        with pytest.raises(ConfigError):
            unregister_aggregate("max")

    def test_rejects_non_callable(self):
        with pytest.raises(ConfigError):
            register_aggregate("bogus", 42)

    def test_udaf_as_table_aggregate(self):
        """A registered UDAF is usable as a table's pre-configured reduce."""
        register_aggregate("capped", lambda a, b: min(5, a + b))
        try:
            config = TableConfig(name="t", attributes=("like",), aggregate="capped")
            engine = ProfileEngine(config, SimulatedClock(NOW))
            for _ in range(10):
                engine.add_profile(1, NOW, 1, 1, 42, [1])
            results = engine.get_profile_topk(1, 1, 1, WINDOW, k=1)
            assert results[0].counts[0] == 5  # Saturated by the UDAF.
        finally:
            unregister_aggregate("capped")


class TestQueryTimeAggregateOverride:
    def test_max_override_on_sum_table(self, engine):
        """Query-time aggregate changes cross-slice merging only."""
        engine.add_profile(1, NOW - 2 * MILLIS_PER_DAY, 1, 1, 42, {"like": 3})
        engine.add_profile(1, NOW - 1 * MILLIS_PER_DAY, 1, 1, 42, {"like": 5})
        summed = engine.get_profile_topk(1, 1, 1, WINDOW, k=1)
        assert summed[0].counts[0] == 8
        maxed = engine.get_profile_topk(1, 1, 1, WINDOW, k=1, aggregate="max")
        assert maxed[0].counts[0] == 5

    def test_unknown_override_rejected(self, engine):
        engine.add_profile(1, NOW, 1, 1, 42, {"like": 1})
        with pytest.raises(ConfigError):
            engine.get_profile_topk(1, 1, 1, WINDOW, k=1, aggregate="nope")


class TestWeightedTopK:
    def _populate(self, engine):
        # fid 1: 5 likes; fid 2: 1 share; fid 3: 2 comments.
        engine.add_profile(1, NOW, 1, 1, 1, {"like": 5})
        engine.add_profile(1, NOW, 1, 1, 2, {"share": 1})
        engine.add_profile(1, NOW, 1, 1, 3, {"comment": 2})

    def test_weights_change_ranking(self, engine):
        self._populate(engine)
        by_likes = engine.get_profile_topk(
            1, 1, 1, WINDOW, SortType.WEIGHTED, k=3,
            sort_weights={"like": 1.0},
        )
        assert by_likes[0].fid == 1
        share_heavy = engine.get_profile_topk(
            1, 1, 1, WINDOW, SortType.WEIGHTED, k=3,
            sort_weights={"like": 1.0, "share": 10.0, "comment": 3.0},
        )
        assert share_heavy[0].fid == 2
        assert share_heavy[1].fid == 3

    def test_weighted_requires_weights(self, engine):
        self._populate(engine)
        with pytest.raises(InvalidQueryError):
            engine.get_profile_topk(1, 1, 1, WINDOW, SortType.WEIGHTED, k=1)

    def test_weighted_unknown_attribute_rejected(self, engine):
        self._populate(engine)
        with pytest.raises(ConfigError):
            engine.get_profile_topk(
                1, 1, 1, WINDOW, SortType.WEIGHTED, k=1,
                sort_weights={"bogus": 1.0},
            )

    def test_weighted_through_cluster_client(self):
        from repro.cluster import IPSCluster

        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("like", "share"))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 1, 1, {"like": 5})
        client.add_profile(7, NOW, 1, 1, 2, {"share": 1})
        cluster.run_background_cycle()
        results = client.get_profile_topk(
            7, 1, 1, WINDOW, SortType.WEIGHTED, k=2,
            sort_weights={"share": 100.0},
        )
        assert results[0].fid == 2
