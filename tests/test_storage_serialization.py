"""Tests for the varint profile codec (the protobuf substitute)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.core.slice import Slice
from repro.errors import SerializationError
from repro.storage.serialization import (
    ProfileCodec,
    deserialize_profile,
    read_varint,
    serialize_profile,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)

SUM = get_aggregate("sum")


def profiles_equal(a: ProfileData, b: ProfileData) -> bool:
    if (a.profile_id, a.write_granularity_ms) != (
        b.profile_id,
        b.write_granularity_ms,
    ):
        return False
    if len(a.slices) != len(b.slices):
        return False
    for slice_a, slice_b in zip(a.slices, b.slices):
        if (slice_a.start_ms, slice_a.end_ms) != (slice_b.start_ms, slice_b.end_ms):
            return False
        if set(slice_a.slot_ids) != set(slice_b.slot_ids):
            return False
        for slot in slice_a.slot_ids:
            stats_a = {s.fid: s for s in slice_a.features(slot, None)}
            stats_b = {s.fid: s for s in slice_b.features(slot, None)}
            if stats_a != stats_b:
                return False
    return True


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value and pos == len(out)

    def test_rejects_negative(self):
        with pytest.raises(SerializationError):
            write_varint(bytearray(), -1)

    def test_truncated_raises(self):
        with pytest.raises(SerializationError):
            read_varint(b"\x80", 0)

    @given(st.integers(min_value=0, max_value=2**64))
    def test_roundtrip_property(self, value):
        out = bytearray()
        write_varint(out, value)
        assert read_varint(bytes(out), 0)[0] == value


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 2**62, -(2**62)])
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        encoded = zigzag_encode(value)
        assert encoded >= 0
        assert zigzag_decode(encoded) == value


class TestSliceCodec:
    def test_roundtrip(self):
        original = Slice(1000, 5000)
        original.add(1, 2, 42, [3, -1, 7], 2000, SUM)
        original.add(3, 1, 99, [5], 4000, SUM)
        blob = ProfileCodec.encode_slice(original)
        decoded = ProfileCodec.decode_slice(blob)
        assert decoded.start_ms == 1000 and decoded.end_ms == 5000
        stat = list(decoded.features(1, 2))[0]
        assert stat.fid == 42 and stat.counts == [3, -1, 7]
        assert stat.last_timestamp_ms == 2000

    def test_trailing_garbage_detected(self):
        blob = ProfileCodec.encode_slice(Slice(0, 10))
        with pytest.raises(SerializationError):
            ProfileCodec.decode_slice(blob + b"\x00")

    def test_empty_range_detected(self):
        out = bytearray()
        write_varint(out, 10)  # start
        write_varint(out, 10)  # end == start: invalid
        write_varint(out, 0)
        with pytest.raises(SerializationError):
            ProfileCodec.decode_slice(bytes(out))


class TestProfileCodec:
    def _build_profile(self, writes=100):
        profile = ProfileData(777, 1000)
        for index in range(writes):
            profile.add(
                1_000_000 + index * 3571,
                index % 5,
                index % 3,
                index % 17,
                [index, -index, index * 2],
                SUM,
            )
        return profile

    def test_roundtrip(self):
        original = self._build_profile()
        blob = serialize_profile(original)
        assert profiles_equal(original, deserialize_profile(blob))

    def test_empty_profile_roundtrip(self):
        original = ProfileData(5, 250)
        assert profiles_equal(original, deserialize_profile(serialize_profile(original)))

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_profile(b"\x01\x02\x03\x04")

    def test_truncation_rejected(self):
        blob = serialize_profile(self._build_profile())
        with pytest.raises(SerializationError):
            deserialize_profile(blob[:-3])

    def test_trailing_bytes_rejected(self):
        blob = serialize_profile(self._build_profile(5))
        with pytest.raises(SerializationError):
            deserialize_profile(blob + b"\x00")

    def test_encoding_is_compact(self):
        """Varint framing: blob much smaller than the in-memory footprint."""
        profile = self._build_profile(500)
        blob = serialize_profile(profile)
        assert len(blob) < profile.memory_bytes() / 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**7),  # timestamp
                st.integers(min_value=0, max_value=6),  # slot
                st.integers(min_value=0, max_value=3),  # type
                st.integers(min_value=0, max_value=50),  # fid
                st.integers(min_value=-1000, max_value=1000),  # count
            ),
            min_size=0,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, writes):
        profile = ProfileData(1, 1000)
        for timestamp, slot, type_id, fid, count in writes:
            profile.add(timestamp, slot, type_id, fid, [count], SUM)
        blob = serialize_profile(profile)
        assert profiles_equal(profile, deserialize_profile(blob))

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_decoding_raises_cleanly(self, junk):
        try:
            deserialize_profile(junk)
        except SerializationError:
            pass
        except Exception as error:  # pragma: no cover
            # Slice/profile construction errors surfaced through decode
            # indicate a missing validation — fail loudly.
            pytest.fail(f"unexpected exception type: {error!r}")
