"""Tests for workload generation: Zipf sampling, diurnal curves, events."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.workload import (
    ActionMix,
    DiurnalTrafficModel,
    EventStreamGenerator,
    WorkloadConfig,
    ZipfGenerator,
    spring_festival_curve,
)


class TestZipfGenerator:
    def test_samples_in_range(self):
        zipf = ZipfGenerator(100, seed=1)
        assert all(0 <= zipf.sample() < 100 for _ in range(1000))

    def test_skew_favours_low_ranks(self):
        zipf = ZipfGenerator(1000, s=1.05, seed=2)
        samples = zipf.sample_many(20_000)
        assert samples.count(0) > samples.count(100) > 0 or samples.count(100) == 0
        top_decile = sum(1 for value in samples if value < 100)
        assert top_decile > len(samples) * 0.4

    def test_probability_masses_sum_to_one(self, make_zipf):
        zipf = make_zipf(50, seed=3)
        total = sum(zipf.probability(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self, make_zipf):
        zipf = make_zipf(50, s=1.2, seed=4)
        probabilities = [zipf.probability(rank) for rank in range(50)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_deterministic_with_seed(self):
        a = ZipfGenerator(100, seed=7).sample_many(100)
        b = ZipfGenerator(100, seed=7).sample_many(100)
        assert a == b

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, s=0)

    def test_probability_bounds_checked(self):
        zipf = ZipfGenerator(10)
        with pytest.raises(ValueError):
            zipf.probability(10)


class TestDiurnalTraffic:
    def test_spring_festival_read_band(self):
        """Fig. 16: read traffic oscillates in the ~30-40M band."""
        curve = spring_festival_curve(read_traffic=True)
        values = [curve.qps_at(hour * MILLIS_PER_HOUR) for hour in range(48)]
        assert min(values) > 28e6
        assert max(values) < 43e6
        assert max(values) - min(values) > 5e6  # Real diurnal swing.

    def test_write_band_is_tenth_of_reads(self):
        """§IV-C: read traffic ≈ 10x write traffic."""
        reads = spring_festival_curve(read_traffic=True, seed=1)
        writes = spring_festival_curve(read_traffic=False, seed=1)
        read_mean = sum(
            reads.qps_at(hour * MILLIS_PER_HOUR) for hour in range(24)
        ) / 24
        write_mean = sum(
            writes.qps_at(hour * MILLIS_PER_HOUR) for hour in range(24)
        ) / 24
        assert read_mean / write_mean == pytest.approx(10.0, rel=0.05)

    def test_trough_near_configured_hour(self):
        curve = DiurnalTrafficModel(
            base_qps=10, peak_qps=20, trough_hour=4.0, noise_fraction=0.0
        )
        values = {
            hour: curve.qps_at(hour * MILLIS_PER_HOUR) for hour in range(24)
        }
        trough = min(values, key=values.get)
        assert abs(trough - 4.0) <= 1.0

    def test_series_shape(self):
        curve = spring_festival_curve()
        series = curve.series(0, MILLIS_PER_DAY, MILLIS_PER_HOUR)
        assert len(series) == 24
        assert all(qps > 0 for _, qps in series)

    def test_rejects_peak_below_base(self):
        with pytest.raises(ValueError):
            DiurnalTrafficModel(base_qps=10, peak_qps=5)

    def test_series_rejects_bad_step(self):
        with pytest.raises(ValueError):
            spring_festival_curve().series(0, 100, 0)


class TestEventStreamGenerator:
    def test_impressions_produce_consistent_triples(self):
        generator = EventStreamGenerator(
            WorkloadConfig(num_users=50, num_items=100, seed=3)
        )
        triples = list(generator.impressions(100, 0, MILLIS_PER_HOUR))
        assert len(triples) == 100
        for impression, actions, feature in triples:
            assert impression.request_id == feature.request_id
            assert impression.item_id == feature.item_id
            for action in actions:
                assert action.request_id == impression.request_id
                assert action.timestamp_ms > impression.timestamp_ms
            assert 0 <= impression.user_id < 50
            assert 0 <= impression.item_id < 100

    def test_timestamps_increase(self):
        generator = EventStreamGenerator(WorkloadConfig(seed=1))
        triples = list(generator.impressions(50, 1000, MILLIS_PER_HOUR))
        timestamps = [impression.timestamp_ms for impression, _, _ in triples]
        assert timestamps == sorted(timestamps)

    def test_action_mix_rates_roughly_honoured(self):
        config = WorkloadConfig(
            seed=5, action_mix=ActionMix({"click": 0.5})
        )
        generator = EventStreamGenerator(config)
        triples = list(generator.impressions(2000, 0, MILLIS_PER_HOUR))
        clicks = sum(1 for _, actions, _ in triples if actions)
        assert 0.4 < clicks / 2000 < 0.6

    def test_queries_are_well_formed(self):
        generator = EventStreamGenerator(WorkloadConfig(num_users=10, seed=2))
        for query in generator.queries(200):
            assert 0 <= query.user_id < 10
            assert 0 <= query.slot < 8
            assert query.window_ms in EventStreamGenerator.QUERY_WINDOWS_MS
            assert query.k in (5, 10, 20, 50)

    def test_action_mix_validates_probabilities(self):
        with pytest.raises(ValueError):
            ActionMix({"click": 1.5})

    def test_zero_count_impressions(self):
        generator = EventStreamGenerator()
        assert list(generator.impressions(0, 0, 1000)) == []
