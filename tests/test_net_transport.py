"""Socket transport against an in-thread worker server.

One durable :class:`~repro.server.node.IPSNode` runs behind a
:class:`~repro.net.worker.WorkerServer` on a daemon thread;
:class:`~repro.net.transport.SocketTransport` /
:class:`~repro.net.transport.RemoteNode` talk to it over a real loopback
TCP connection.  The load-bearing property is **equivalence**: a read
over the socket must return exactly what the same call on the node
object returns — the wire hop adds failure modes, never semantics.
"""

from __future__ import annotations

import pytest

from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import NodeUnavailableError, QuotaExceededError
from repro.net.transport import RemoteNode, SocketTransport
from repro.net.wire import WireCodecError
from repro.net.worker import WorkerServer, build_durable_node

NOW = 1_000_000
WINDOW = TimeRange.absolute(NOW - 10_000, NOW + 10_000)


@pytest.fixture
def server(tmp_path):
    node = build_durable_node("t0", tmp_path, checkpoint_interval=64)
    worker = WorkerServer(node, maintenance_ms=10_000.0)  # merges by hand
    worker.start()
    yield worker
    worker.stop()


@pytest.fixture
def remote(server):
    node = RemoteNode(SocketTransport("t0", server.host, server.port))
    yield node
    node.close()


def _seed(node, profiles=8, fids=5):
    for profile_id in range(profiles):
        for fid in range(fids):
            node.add_profile(
                profile_id, NOW - fid, 0, 1, 100 + fid,
                (fid + 1, profile_id % 3, 0),
            )
    node.merge_write_table()


class TestEquivalence:
    def test_topk_identical_over_socket(self, server, remote):
        _seed(server.node)
        for profile_id in range(8):
            direct = server.node.get_profile_topk(
                profile_id, 0, 1, WINDOW, SortType.TOTAL, 3
            )
            via_socket = remote.get_profile_topk(
                profile_id, 0, 1, WINDOW, SortType.TOTAL, 3
            )
            assert via_socket == direct

    def test_multi_get_identical_over_socket(self, server, remote):
        _seed(server.node)
        ids = [0, 3, 7, 999]  # 999 is missing on purpose
        direct = server.node.multi_get_topk(ids, 0, 1, WINDOW, k=5)
        via_socket = remote.multi_get_topk(ids, 0, 1, WINDOW, k=5)
        assert via_socket == direct
        # A missing profile reads as empty on both paths, not as an error.
        assert via_socket[999].ok and via_socket[999].value == []

    def test_write_over_socket_lands_on_node(self, server, remote):
        remote.add_profiles(
            5, NOW, 0, 1, [201, 202], [(4, 0, 1), (2, 2, 2)]
        )
        server.node.merge_write_table()
        rows = server.node.get_profile_topk(5, 0, 1, WINDOW, k=10)
        assert {row.fid for row in rows} == {201, 202}

    def test_weighted_sort_kwargs_cross_the_wire(self, server, remote):
        _seed(server.node)
        direct = server.node.get_profile_topk(
            1, 0, 1, WINDOW, SortType.WEIGHTED, 5,
            sort_weights={"like": 0.1, "comment": 5.0, "share": 1.0},
        )
        via_socket = remote.get_profile_topk(
            1, 0, 1, WINDOW, SortType.WEIGHTED, 5,
            sort_weights={"like": 0.1, "comment": 5.0, "share": 1.0},
        )
        assert via_socket == direct


class TestErrorPropagation:
    def test_value_error_rebuilt_exactly(self, server, remote):
        with pytest.raises(ValueError, match="fids"):
            remote.add_profiles(1, NOW, 0, 1, [100, 101], [(1, 0, 0)])

    def test_quota_exceeded_crosses_the_wire(self, server, remote):
        # Zero burst: the very first admit for this caller is rejected.
        server.node.quota.set_quota("stingy", 0.001, burst=0.0)
        with pytest.raises(QuotaExceededError) as excinfo:
            remote.get_profile_topk(1, 0, 1, WINDOW, caller="stingy")
        assert excinfo.value.caller == "stingy"

    def test_filter_predicate_rejected_client_side(self, server, remote):
        _seed(server.node)
        with pytest.raises(WireCodecError, match="process boundary"):
            remote.get_profile_filter(
                1, 0, 1, WINDOW, lambda row: True
            )

    def test_unknown_method_rejected(self, server):
        transport = SocketTransport("t0", server.host, server.port)
        try:
            with pytest.raises(WireCodecError, match="unknown method"):
                transport.call("drop_all_tables")
        finally:
            transport.close()

    def test_dead_endpoint_is_node_unavailable(self, server):
        transport = SocketTransport("t0", server.host, 1)  # nothing there
        try:
            with pytest.raises(NodeUnavailableError):
                transport.call("ping")
        finally:
            transport.close()


class TestAdminSurface:
    def test_ping_names_the_node(self, server, remote):
        reply = remote.ping()
        assert reply["node_id"] == "t0"
        assert reply["pid"] > 0

    def test_node_stats_reflect_traffic(self, server, remote):
        _seed(server.node)
        remote.get_profile_topk(1, 0, 1, WINDOW)
        stats = remote.node_stats()
        assert stats["reads"] >= 1
        assert stats["writes"] >= 1
        assert stats["wal_last_sequence"] >= 1

    def test_checkpoint_now(self, server, remote):
        _seed(server.node)
        reply = remote.checkpoint_now()
        assert reply["wal_last_sequence"] >= 1

    def test_stats_observe_server_time(self, server, remote):
        _seed(server.node)
        remote.get_profile_topk(1, 0, 1, WINDOW)
        stats = remote.transport.stats
        assert stats.calls >= 1
        # Client-observed time includes the network; server time cannot
        # exceed it.  Hedging feeds on exactly this decomposition.
        assert stats.last_client_ms >= stats.last_server_ms >= 0.0


class TestConnectionPooling:
    def test_pool_reuses_connections(self, server):
        transport = SocketTransport(
            "t0", server.host, server.port, pool_size=2
        )
        try:
            for _ in range(10):
                transport.call("ping")
            assert transport.dials <= 2
        finally:
            transport.close()


class TestGracefulShutdown:
    def test_prepare_shutdown_acks_then_exits_cleanly(self, tmp_path):
        node = build_durable_node("t1", tmp_path)
        worker = WorkerServer(node, maintenance_ms=10_000.0).start()
        remote = RemoteNode(SocketTransport("t1", worker.host, worker.port))
        try:
            remote.add_profile(1, NOW, 0, 1, 100, (1, 0, 0))
            assert remote.prepare_shutdown() == {"shutting_down": True}
        finally:
            remote.close()
        assert worker._thread is not None
        worker._thread.join(timeout=15.0)
        assert worker.shut_down_cleanly

    def test_acked_write_survives_graceful_stop(self, tmp_path):
        node = build_durable_node("t2", tmp_path)
        worker = WorkerServer(node, maintenance_ms=10_000.0).start()
        remote = RemoteNode(SocketTransport("t2", worker.host, worker.port))
        try:
            remote.add_profile(9, NOW, 0, 1, 500, (7, 0, 0))
        finally:
            remote.close()
        worker.stop()  # graceful: merge + flush + checkpoint before exit
        assert worker.shut_down_cleanly
        revived = build_durable_node("t2", tmp_path)
        rows = revived.get_profile_topk(9, 0, 1, WINDOW)
        assert [(row.fid, row.counts[0]) for row in rows] == [(500, 7)]
