"""Tests for the sharded dirty list (§III-C, Fig. 9)."""

import pytest

from repro.cache.dirty import DirtyShard, ShardedDirtyList


class TestDirtyShard:
    def test_mark_and_peek_fifo(self):
        shard = DirtyShard(0)
        shard.mark(1, 10)
        shard.mark(2, 11)
        assert shard.peek_batch(10) == [(1, 10), (2, 11)]

    def test_remark_keeps_fifo_position_updates_sequence(self):
        shard = DirtyShard(0)
        shard.mark(1, 10)
        shard.mark(2, 11)
        shard.mark(1, 12)  # Re-dirty profile 1.
        assert shard.peek_batch(10) == [(1, 12), (2, 11)]

    def test_peek_respects_limit(self):
        shard = DirtyShard(0)
        for index in range(5):
            shard.mark(index, index)
        assert len(shard.peek_batch(3)) == 3

    def test_clear_if_unchanged_removes_when_stable(self):
        shard = DirtyShard(0)
        shard.mark(1, 10)
        assert shard.clear_if_unchanged(1, 10)
        assert 1 not in shard

    def test_clear_if_unchanged_keeps_redirtied(self):
        """Flush raced with a write: the entry must stay for another pass."""
        shard = DirtyShard(0)
        shard.mark(1, 10)
        shard.mark(1, 11)  # Write arrived mid-flush.
        assert not shard.clear_if_unchanged(1, 10)
        assert 1 in shard

    def test_clear_of_absent_entry_is_true(self):
        assert DirtyShard(0).clear_if_unchanged(1, 5)


class TestShardedDirtyList:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedDirtyList(0)

    def test_mark_assigns_increasing_sequences(self):
        dirty = ShardedDirtyList(4)
        first = dirty.mark(1)
        second = dirty.mark(2)
        assert second > first

    def test_same_profile_same_shard(self):
        dirty = ShardedDirtyList(4)
        assert dirty.shard_for(42) is dirty.shard_for(42)

    def test_total_entries(self):
        dirty = ShardedDirtyList(4)
        for profile_id in range(20):
            dirty.mark(profile_id)
        assert dirty.total_entries() == 20
        dirty.mark(0)  # Re-mark is not a new entry.
        assert dirty.total_entries() == 20

    def test_discard(self):
        dirty = ShardedDirtyList(2)
        dirty.mark(5)
        dirty.discard(5)
        assert 5 not in dirty

    def test_dirty_ids_snapshots_all_shards(self):
        dirty = ShardedDirtyList(4)
        for profile_id in range(12):
            dirty.mark(profile_id)
        assert sorted(dirty.dirty_ids()) == list(range(12))
        dirty.discard(3)
        assert 3 not in dirty.dirty_ids()

    def test_sequence_of_tracks_remarks(self):
        dirty = ShardedDirtyList(2)
        shard = dirty.shard_for(7)
        assert shard.sequence_of(7) is None
        first = dirty.mark(7)
        assert shard.sequence_of(7) == first
        second = dirty.mark(7)
        assert shard.sequence_of(7) == second

    def test_flush_thread_rule_enforced(self):
        """Flush threads must be a positive multiple of shard count."""
        dirty = ShardedDirtyList(4)
        dirty.validate_flush_threads(4)
        dirty.validate_flush_threads(8)
        with pytest.raises(ValueError):
            dirty.validate_flush_threads(3)
        with pytest.raises(ValueError):
            dirty.validate_flush_threads(0)


class TestFlushInterleaving:
    """clear_if_unchanged under writes that land *during* the flush."""

    def _make_cache(self, flush_fn):
        from repro.cache.gcache import GCache

        return GCache(
            load_fn=lambda pid: None,
            flush_fn=flush_fn,
            capacity_bytes=1 << 20,
            dirty_shards=1,
        )

    def test_remark_during_flush_keeps_entry_for_next_pass(self):
        from repro.core.profile import ProfileData

        cache = None
        flushed = []

        def flush(profile):
            flushed.append(profile.profile_id)
            if len(flushed) == 1:
                # A concurrent write re-dirties the profile while its
                # bytes are on the wire.
                cache.mark_dirty(profile.profile_id)

        cache = self._make_cache(flush)
        cache.put(ProfileData(1, 1000), dirty=True)
        assert cache.run_flush_once() == 1
        # The entry survived the clear because its sequence moved on.
        assert 1 in cache.dirty
        assert cache.metrics.flush_requeues == 1
        # The next pass flushes the newer state and clears for real.
        assert cache.run_flush_once() == 1
        assert 1 not in cache.dirty
        assert flushed == [1, 1]

    def test_unchanged_entry_clears_in_one_pass(self):
        from repro.core.profile import ProfileData

        cache = self._make_cache(lambda profile: None)
        cache.put(ProfileData(1, 1000), dirty=True)
        assert cache.run_flush_once() == 1
        assert 1 not in cache.dirty
        assert cache.metrics.flush_requeues == 0

    def test_remark_storm_converges(self):
        """Every flush pass races a re-mark for a while; once the writer
        stops, the list drains."""
        from repro.core.profile import ProfileData

        cache = None
        storm = {"remaining": 3}

        def flush(profile):
            if storm["remaining"] > 0:
                storm["remaining"] -= 1
                cache.mark_dirty(profile.profile_id)

        cache = self._make_cache(flush)
        cache.put(ProfileData(1, 1000), dirty=True)
        passes = 0
        while 1 in cache.dirty:
            cache.run_flush_once()
            passes += 1
            assert passes < 10
        assert passes == 4  # Three raced passes plus the clean one.
        assert cache.metrics.flush_requeues == 3
