"""Exposition round-trip through the dashboard CLI's parser/renderer."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.tools.dashboard import parse_exposition, render_dashboard


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    read = registry.histogram("client_read_ms", caller="app")
    read.record_many([0.5, 1.0, 2.0, 5.0, 40.0])
    write = registry.histogram("client_write_ms", caller="app")
    write.record_many([0.2, 0.4, 0.9])
    registry.counter("requests_total", region="eu").inc(8)
    registry.gauge("resident_profiles").set(120)
    return registry


class TestParseExposition:
    def test_round_trip_recovers_quantiles(self, registry):
        families = parse_exposition(registry.render_text())
        read = registry.get("client_read_ms", caller="app")
        entry = families["client_read_ms"]["metrics"][0]
        assert entry["labels"] == {"caller": "app"}
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(read.sum, rel=1e-4)
        # p50/p95/p99 come from the quantile summary lines, matching the
        # live histogram to exposition float precision.
        assert entry["p50"] == pytest.approx(read.p50, rel=1e-4)
        assert entry["p95"] == pytest.approx(read.p95, rel=1e-4)
        assert entry["p99"] == pytest.approx(read.p99, rel=1e-4)

    def test_round_trip_buckets_cumulative(self, registry):
        families = parse_exposition(registry.render_text())
        entry = families["client_read_ms"]["metrics"][0]
        counts = [count for _, count in entry["buckets"]]
        assert counts == sorted(counts)
        assert entry["buckets"][-1] == ("+Inf", 5)

    def test_round_trip_counters_and_gauges(self, registry):
        families = parse_exposition(registry.render_text())
        assert families["requests_total"]["type"] == "counter"
        assert families["requests_total"]["metrics"][0]["value"] == 8.0
        assert families["resident_profiles"]["metrics"][0] == {
            "labels": {},
            "value": 120.0,
        }

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all!")

    def test_empty_exposition(self):
        assert parse_exposition("") == {}
        assert parse_exposition(MetricsRegistry().render_text()) == {}


class TestRenderDashboard:
    def test_reports_read_and_write_percentiles(self, registry):
        """The acceptance check: text exposition -> dashboard showing
        p50/p95/p99 for the read and write paths."""
        read = registry.get("client_read_ms", caller="app")
        write = registry.get("client_write_ms", caller="app")
        text = render_dashboard(parse_exposition(registry.render_text()))
        lines = {
            line.split()[0]: line for line in text.splitlines() if line
        }
        read_line = lines["client_read_ms{caller=app}"]
        write_line = lines["client_write_ms{caller=app}"]
        for hist, line in ((read, read_line), (write, write_line)):
            rendered = line.split()
            assert float(rendered[-3]) == pytest.approx(hist.p50, abs=5e-4)
            assert float(rendered[-2]) == pytest.approx(hist.p95, abs=5e-4)
            assert float(rendered[-1]) == pytest.approx(hist.p99, abs=5e-4)

    def test_includes_counters_section(self, registry):
        text = render_dashboard(parse_exposition(registry.render_text()))
        assert "-- counters / gauges --" in text
        assert "requests_total{region=eu}" in text

    def test_monitor_section_with_charts(self):
        from repro.clock import MILLIS_PER_DAY, SimulatedClock
        from repro.cluster import IPSCluster
        from repro.config import TableConfig
        from repro.monitoring import ClusterMonitor

        now = 400 * MILLIS_PER_DAY
        cluster = IPSCluster(
            TableConfig(name="t", attributes=("click",)),
            num_nodes=2,
            clock=SimulatedClock(now),
        )
        client = cluster.client("app")
        monitor = ClusterMonitor(cluster)
        monitor.sample()
        for step in range(3):
            for profile_id in range(5):
                client.add_profile(profile_id, now, 1, 0, 1, {"click": 1})
            cluster.clock.advance(1000)
            monitor.sample()
        text = render_dashboard({}, monitor=monitor)
        assert "-- cluster --" in text
        assert "cluster @" in text
        assert "read QPS" in text
        assert "cache hit ratio" in text


class TestChaosSection:
    def test_chaos_and_resilience_counters_get_their_own_section(self):
        from repro.obs.registry import MetricsRegistry
        from repro.tools.dashboard import parse_exposition, render_dashboard

        registry = MetricsRegistry()
        registry.counter("chaos_injections", kind="node_crash").inc()
        registry.counter("resilience_retries").inc(4)
        registry.counter("plain_counter").inc()
        text = render_dashboard(parse_exposition(registry.render_text()))
        assert "-- chaos / resilience --" in text
        chaos_section = text.split("-- chaos / resilience --")[1]
        assert 'chaos_injections{kind=node_crash}' in chaos_section
        assert "resilience_retries" in chaos_section
        assert "plain_counter" not in chaos_section

    def test_no_section_without_chaos_metrics(self):
        from repro.obs.registry import MetricsRegistry
        from repro.tools.dashboard import parse_exposition, render_dashboard

        registry = MetricsRegistry()
        registry.counter("plain_counter").inc()
        text = render_dashboard(parse_exposition(registry.render_text()))
        assert "-- chaos / resilience --" not in text
