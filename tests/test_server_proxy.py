"""Tests for the RPC-fronted node proxy (Thrift substitute in serving)."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.errors import NodeUnavailableError
from repro.server.node import IPSNode
from repro.server.proxy import RPCNodeProxy
from repro.server.rpc import LatencyModel
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def proxy():
    clock = SimulatedClock(NOW)
    config = TableConfig(name="t", attributes=("click",))
    node = IPSNode(
        "n0", config, InMemoryKVStore(), clock=clock, isolation_enabled=False
    )
    return RPCNodeProxy(node, clock, LatencyModel(jitter_ms=0.0))


class TestProxyDispatch:
    def test_write_and_read_through_rpc(self, proxy):
        proxy.add_profile(1, NOW, 1, 0, 42, {"click": 3})
        results = proxy.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert results[0].fid == 42
        assert proxy.rpc.stats.calls == 2

    def test_latencies_recorded_per_call(self, proxy):
        proxy.add_profile(1, NOW, 1, 0, 42, {"click": 1})
        proxy.get_profile_topk(1, 1, 0, WINDOW, k=1)
        stats = proxy.rpc.stats
        assert stats.client_hist.count == 2
        assert stats.server_hist.count == 2
        # Client latency = network (>= 3 ms base) + measured server time.
        assert stats.last_client_ms >= stats.last_server_ms + 3.0
        assert stats.client_hist.sum >= stats.server_hist.sum + 2 * 3.0

    def test_server_time_is_real_measured_cost(self, proxy):
        for hour in range(50):
            proxy.add_profile(1, NOW - hour * 3_600_000, 1, 0, hour, {"click": 1})
        proxy.get_profile_topk(1, 1, 0, TimeRange.current(30 * MILLIS_PER_DAY), k=10)
        assert proxy.rpc.stats.last_server_ms > 0.0

    def test_unavailable_proxy_raises(self, proxy):
        proxy.set_available(False)
        with pytest.raises(NodeUnavailableError):
            proxy.get_profile_topk(1, 1, 0, WINDOW)
        proxy.set_available(True)
        proxy.add_profile(1, NOW, 1, 0, 1, {"click": 1})

    def test_non_rpc_attributes_pass_through(self, proxy):
        assert proxy.node_id == "n0"
        assert proxy.stats.reads == 0  # The node's NodeStats.
        assert proxy.cache.resident_count() == 0

    def test_latency_summary(self, proxy):
        assert proxy.latency_summary() == {}
        proxy.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        for _ in range(10):
            proxy.get_profile_topk(1, 1, 0, WINDOW, k=1)
        summary = proxy.latency_summary()
        assert summary["calls"] == 11
        assert summary["client_p50_ms"] > summary["server_p50_ms"]
        assert summary["client_p99_ms"] >= summary["client_p50_ms"]


class TestProxyAsClusterNode:
    def test_proxy_is_duck_compatible_with_region_routing(self):
        """A region whose nodes are proxies serves the client unchanged."""
        from repro.cluster import IPSCluster

        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        # Wrap every node in an RPC proxy in place.
        cluster.region.nodes = {
            node_id: RPCNodeProxy(node, clock, LatencyModel(jitter_ms=0.0))
            for node_id, node in cluster.region.nodes.items()
        }
        client = cluster.client("app")
        client.add_profile(7, NOW, 1, 0, 42, {"click": 1})
        for proxy in cluster.region.nodes.values():
            proxy.node.merge_write_table()
        results = client.get_profile_topk(7, 1, 0, WINDOW, k=1)
        assert results[0].fid == 42
        total_calls = sum(
            proxy.rpc.stats.calls for proxy in cluster.region.nodes.values()
        )
        assert total_calls == 2
