"""Batch-equivalence tests for the multi-get read path.

The contract under test: for any workload, ``multi_get_*`` answers are
element-wise identical to looping the single-key ``get_profile_*`` calls
— including duplicated keys and unknown profiles — and failures degrade
per key (ok/error statuses) instead of raising.  Randomness comes from
the seeded ``rng`` fixture so runs are deterministic.
"""

from __future__ import annotations

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster, MultiRegionDeployment
from repro.cluster.client import IPSClient
from repro.cluster.region import Region
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.server import IPSService
from repro.server.proxy import RPCNodeProxy
from repro.storage.kvstore import FailureInjector, InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)
ATTRS = ("click", "like")


def populate(client, rng, population=60, writes=150):
    for _ in range(writes):
        client.add_profile(
            rng.randrange(population),
            NOW - rng.randrange(30 * MILLIS_PER_DAY),
            1,
            rng.choice((1, 2)),
            rng.randrange(1, 25),
            {"click": rng.randrange(1, 6), "like": rng.randrange(3)},
        )


def random_batch(rng, population=60, size=40):
    """A batch with duplicates and a few unknown profile ids mixed in."""
    batch = [rng.randrange(population + 10) for _ in range(size)]
    batch.extend(rng.choices(batch, k=size // 4))  # guaranteed duplicates
    rng.shuffle(batch)
    return batch


@pytest.fixture
def cluster():
    clock = SimulatedClock(NOW)
    config = TableConfig(name="t", attributes=ATTRS)
    return IPSCluster(config, num_nodes=4, clock=clock)


class TestEquivalence:
    def test_topk_matches_looped_single_gets(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        for _ in range(5):
            batch = random_batch(rng)
            outcome = client.multi_get_topk(
                batch, 1, 1, WINDOW, SortType.TOTAL, k=5
            )
            looped = [
                client.get_profile_topk(pid, 1, 1, WINDOW, SortType.TOTAL, k=5)
                for pid in batch
            ]
            assert len(outcome) == len(batch)
            assert all(result.ok for result in outcome)
            assert [result.value for result in outcome] == looped

    def test_filter_matches_looped_single_gets(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        predicate = lambda stat: stat.count_at(0) >= 3
        batch = random_batch(rng)
        outcome = client.multi_get_filter(batch, 1, 1, WINDOW, predicate)
        looped = [
            client.get_profile_filter(pid, 1, 1, WINDOW, predicate)
            for pid in batch
        ]
        assert [result.value for result in outcome] == looped

    def test_decay_matches_looped_single_gets(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        batch = random_batch(rng)
        outcome = client.multi_get_decay(
            batch, 1, 1, WINDOW, "exponential", 7 * MILLIS_PER_DAY, k=5
        )
        looped = [
            client.get_profile_decay(
                pid, 1, 1, WINDOW, "exponential", 7 * MILLIS_PER_DAY, k=5
            )
            for pid in batch
        ]
        assert [result.value for result in outcome] == looped

    def test_all_duplicates_resolved_once(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        reads_before = sum(
            node.stats.reads for node in cluster.region.nodes.values()
        )
        outcome = client.multi_get_topk([7] * 16, 1, 1, WINDOW)
        reads_after = sum(
            node.stats.reads for node in cluster.region.nodes.values()
        )
        assert len(outcome) == 16
        assert len({id(result) for result in outcome}) == 1  # one envelope
        assert reads_after - reads_before == 1  # resolved once server-side
        assert client.batch_metrics.dedup_ratio == pytest.approx(15 / 16)

    def test_empty_batch(self, cluster):
        outcome = cluster.client("app").multi_get_topk([], 1, 1, WINDOW)
        assert len(outcome) == 0
        assert outcome.ok_count == 0

    def test_unknown_profiles_are_ok_and_empty(self, cluster):
        outcome = cluster.client("app").multi_get_topk(
            [9001, 9002], 1, 1, WINDOW
        )
        assert all(result.ok for result in outcome)
        assert outcome.values() == [[], []]


class TestShardGrouping:
    def test_one_rpc_per_owning_node(self, cluster, rng):
        """A batch fans out as one call per owning shard, not one per key."""
        clock = cluster.clock
        for node_id in list(cluster.region.nodes):
            cluster.region.nodes[node_id] = RPCNodeProxy(
                cluster.region.nodes[node_id], clock
            )
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        calls_before = sum(
            proxy.rpc.stats.calls for proxy in cluster.region.nodes.values()
        )
        batch = random_batch(rng, size=32)
        outcome = client.multi_get_topk(batch, 1, 1, WINDOW)
        calls_after = sum(
            proxy.rpc.stats.calls for proxy in cluster.region.nodes.values()
        )
        assert all(result.ok for result in outcome)
        fanout = calls_after - calls_before
        assert fanout <= len(cluster.region.nodes)
        assert client.batch_metrics.shard_calls == fanout

    def test_fanout_telemetry(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        client.multi_get_topk(random_batch(rng), 1, 1, WINDOW)
        metrics = client.batch_metrics
        assert metrics.batches == 1
        assert 1 <= metrics.mean_fanout <= len(cluster.region.nodes)
        assert sum(metrics.batch_size_hist.values()) == 1
        assert sum(metrics.fanout_hist.values()) == 1


class TestPartialFailure:
    def test_dead_local_region_fails_over(self, rng):
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=ATTRS)
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=2, clock=clock
        )
        client = deployment.client("us", "app")
        populate(client, rng, population=30)
        deployment.run_background_cycle()
        batch = random_batch(rng, population=30, size=20)
        expected = [result.value for result in client.multi_get_topk(batch, 1, 1, WINDOW)]
        deployment.fail_region("us")
        outcome = client.multi_get_topk(batch, 1, 1, WINDOW)
        assert all(result.ok for result in outcome)
        assert [result.value for result in outcome] == expected
        assert client.stats.region_failovers >= 1

    def test_all_regions_dead_returns_statuses_not_raise(self, rng):
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=ATTRS)
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=2, clock=clock
        )
        client = deployment.client("us", "app")
        populate(client, rng, population=30)
        deployment.run_background_cycle()
        deployment.fail_region("us")
        deployment.fail_region("eu")
        batch = random_batch(rng, population=30, size=20)
        outcome = client.multi_get_topk(batch, 1, 1, WINDOW)  # must not raise
        assert len(outcome) == len(batch)
        assert outcome.ok_count == 0
        for result in outcome:
            assert result.error == "RegionUnavailableError"
            assert result.value is None
        assert client.stats.batch_key_errors == len(batch)
        # Recovery restores full service for the same batch.
        deployment.recover_region("us")
        recovered = client.multi_get_topk(batch, 1, 1, WINDOW)
        assert recovered.ok_count == len(batch)

    def test_storage_failure_degrades_only_cold_keys(self, rng):
        """Injected per-key storage errors surface as per-key statuses."""
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=ATTRS)
        injector = FailureInjector()
        store = InMemoryKVStore(failure_injector=injector)
        warm_region = Region("warm", config, store, clock, num_nodes=2)

        class _Deployment:
            def __init__(self, regions, clock):
                self.regions = regions
                self.clock = clock

        writer = IPSClient(
            _Deployment({"warm": warm_region}, clock), "warm", "app"
        )
        for pid in range(10):
            writer.add_profile(pid, NOW, 1, 1, 5, {"click": pid + 1})
        warm_region.merge_all_write_tables()
        for node in warm_region.nodes.values():
            node.cache.flush_all()

        # A cold region over the same store: every read must load from KV.
        cold_region = Region("cold", config, store, clock, num_nodes=2)
        client = IPSClient(
            _Deployment({"cold": cold_region}, clock), "cold", "app",
            max_retries=0,
        )
        # Warm up keys 0-4 so they are resident, then break the store.
        warmup = client.multi_get_topk(list(range(5)), 1, 1, WINDOW)
        assert warmup.ok_count == 5
        injector.failure_rate = 1.0
        outcome = client.multi_get_topk(list(range(10)), 1, 1, WINDOW)
        assert [result.ok for result in outcome] == [True] * 5 + [False] * 5
        for result in outcome[5:]:
            assert result.error == "StorageError"
        assert outcome.error_count == 5
        # The store heals: the previously failed keys recover.
        injector.failure_rate = 0.0
        healed = client.multi_get_topk(list(range(10)), 1, 1, WINDOW)
        assert healed.ok_count == 10

    def test_node_failure_retries_around_ring(self, cluster, rng):
        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        batch = random_batch(rng)
        expected = [r.value for r in client.multi_get_topk(batch, 1, 1, WINDOW)]
        failed = next(iter(cluster.region.nodes))
        cluster.region.fail_node(failed)
        outcome = client.multi_get_topk(batch, 1, 1, WINDOW)
        assert all(result.ok for result in outcome)
        # The replacement owners reload from the shared KV store, so the
        # answers are unchanged.
        assert [result.value for result in outcome] == expected


class TestServiceSurface:
    def test_table_first_multi_get(self, rng):
        clock = SimulatedClock(NOW)
        service = IPSService(InMemoryKVStore(), clock=clock)
        service.create_table(TableConfig(name="feed", attributes=ATTRS))
        for pid in range(8):
            service.add_profile("feed", pid, NOW, 1, 1, pid, {"click": pid + 1})
        service.run_background_cycle()
        batch = [3, 5, 3, 99]
        per_key = service.multi_get_topk("feed", batch, 1, 1, WINDOW)
        assert set(per_key) == {3, 5, 99}
        for pid in (3, 5, 99):
            assert per_key[pid].ok
            assert per_key[pid].value == service.get_profile_topk(
                "feed", pid, 1, 1, WINDOW
            )
        filtered = service.multi_get_filter(
            "feed", batch, 1, 1, WINDOW, lambda stat: stat.count_at(0) > 4
        )
        decayed = service.multi_get_decay(
            "feed", batch, 1, 1, WINDOW, "exponential", 7 * MILLIS_PER_DAY
        )
        assert all(result.ok for result in filtered.values())
        assert all(result.ok for result in decayed.values())

    def test_batch_counters_roll_up_in_monitoring(self, cluster, rng):
        from repro.monitoring import ClusterMonitor

        client = cluster.client("app")
        populate(client, rng)
        cluster.run_background_cycle()
        client.multi_get_topk(random_batch(rng), 1, 1, WINDOW)
        snapshot = ClusterMonitor(cluster).snapshot()
        assert sum(node.batch_reads for node in snapshot.nodes) >= 1
        assert sum(node.batch_keys for node in snapshot.nodes) >= 1
