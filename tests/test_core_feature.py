"""Tests for FeatureStat and the multi-way merge helper."""

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregate import (
    aggregate_last,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
)
from repro.core.feature import (
    INT64_MAX,
    INT64_MIN,
    FeatureStat,
    clamp_int64,
    merge_feature_stats,
)


class TestClampInt64:
    def test_passes_through_in_range(self):
        assert clamp_int64(42) == 42
        assert clamp_int64(-42) == -42

    def test_clamps_overflow(self):
        assert clamp_int64(INT64_MAX + 1) == INT64_MAX
        assert clamp_int64(INT64_MIN - 1) == INT64_MIN

    @given(st.integers())
    def test_always_in_range(self, value):
        assert INT64_MIN <= clamp_int64(value) <= INT64_MAX


class TestFeatureStat:
    def test_basic_construction(self):
        stat = FeatureStat(7, [1, 2, 3], last_timestamp_ms=100)
        assert stat.fid == 7
        assert stat.counts == [1, 2, 3]
        assert stat.total() == 6

    def test_counts_clamped_on_construction(self):
        stat = FeatureStat(1, [INT64_MAX + 100])
        assert stat.counts == [INT64_MAX]

    def test_copy_is_independent(self):
        stat = FeatureStat(1, [1, 2])
        duplicate = stat.copy()
        duplicate.counts[0] = 99
        assert stat.counts[0] == 1

    def test_merge_counts_sum(self):
        stat = FeatureStat(1, [1, 2], last_timestamp_ms=10)
        stat.merge_counts([3, 4], aggregate_sum, other_timestamp_ms=20)
        assert stat.counts == [4, 6]
        assert stat.last_timestamp_ms == 20

    def test_merge_keeps_newest_timestamp(self):
        stat = FeatureStat(1, [1], last_timestamp_ms=50)
        stat.merge_counts([1], aggregate_sum, other_timestamp_ms=10)
        assert stat.last_timestamp_ms == 50

    def test_merge_max_aggregate(self):
        stat = FeatureStat(1, [5, 1])
        stat.merge_counts([3, 9], aggregate_max, 0)
        assert stat.counts == [5, 9]

    def test_merge_last_aggregate_replaces(self):
        stat = FeatureStat(1, [5])
        stat.merge_counts([3], aggregate_last, 0)
        assert stat.counts == [3]

    def test_merge_longer_vector_extends(self):
        stat = FeatureStat(1, [1])
        stat.merge_counts([2, 7, 9], aggregate_sum, 0)
        assert stat.counts == [3, 7, 9]

    def test_merge_shorter_vector_keeps_tail(self):
        stat = FeatureStat(1, [1, 2, 3])
        stat.merge_counts([1], aggregate_sum, 0)
        assert stat.counts == [2, 2, 3]

    # ------------------------------------------------------------------
    # Schema-length mismatches: vectors are zero-padded to the longer
    # length and aggregated positionwise, matching count_at's
    # missing-reads-as-zero rule.  Regression tests for the latent edge
    # where the extended tail used to skip the aggregate fn entirely
    # (acting like SUM-with-zero even under MIN/LAST).
    # ------------------------------------------------------------------

    def test_merge_min_longer_other_aggregates_tail_with_zero(self):
        stat = FeatureStat(1, [5])
        stat.merge_counts([5, 3], aggregate_min, 0)
        assert stat.counts == [5, 0]  # min(0, 3) — not a bare copy of 3

    def test_merge_min_longer_self_aggregates_tail_with_zero(self):
        stat = FeatureStat(1, [5, 3])
        stat.merge_counts([5], aggregate_min, 0)
        assert stat.counts == [5, 0]  # min(3, 0) — symmetric with the above

    def test_merge_mismatch_is_commutative_under_min(self):
        a = FeatureStat(1, [5])
        a.merge_counts([5, 3], aggregate_min, 0)
        b = FeatureStat(1, [5, 3])
        b.merge_counts([5], aggregate_min, 0)
        assert a.counts == b.counts

    def test_merge_max_negative_tail_reads_absent_as_zero(self):
        stat = FeatureStat(1, [1])
        stat.merge_counts([1, -5], aggregate_max, 0)
        assert stat.counts == [1, 0]  # max(0, -5)

    def test_merge_last_shorter_other_zeroes_tail(self):
        stat = FeatureStat(1, [5, 3])
        stat.merge_counts([7], aggregate_last, 0)
        assert stat.counts == [7, 0]  # the new observation reports 0 there

    def test_merge_sum_tail_behaviour_unchanged(self):
        stat = FeatureStat(1, [1])
        stat.merge_counts([2, 7], aggregate_sum, 0)
        assert stat.counts == [3, 7]
        stat = FeatureStat(1, [1, 2, 3])
        stat.merge_counts([1], aggregate_sum, 0)
        assert stat.counts == [2, 2, 3]

    def test_merge_saturates_at_int64(self):
        stat = FeatureStat(1, [INT64_MAX])
        stat.merge_counts([1], aggregate_sum, 0)
        assert stat.counts == [INT64_MAX]

    def test_count_at_out_of_range_is_zero(self):
        stat = FeatureStat(1, [5])
        assert stat.count_at(0) == 5
        assert stat.count_at(3) == 0
        assert stat.count_at(-1) == 0

    def test_scaled_truncates_toward_zero(self):
        stat = FeatureStat(1, [10, 3], last_timestamp_ms=77)
        scaled = stat.scaled(0.5)
        assert scaled.counts == [5, 1]
        assert scaled.last_timestamp_ms == 77
        assert stat.counts == [10, 3]  # Original untouched.

    def test_equality_semantics(self):
        assert FeatureStat(1, [1, 2], 5) == FeatureStat(1, [1, 2], 5)
        assert FeatureStat(1, [1, 2], 5) != FeatureStat(2, [1, 2], 5)
        assert FeatureStat(1, [1, 2], 5) != FeatureStat(1, [1, 3], 5)

    def test_memory_accounting_grows_with_counts(self):
        small = FeatureStat(1, [1])
        big = FeatureStat(1, [1] * 10)
        assert big.memory_bytes() > small.memory_bytes()

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=8),
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=8),
    )
    def test_merge_sum_is_commutative_on_overlap(self, left, right):
        a = FeatureStat(1, left)
        a.merge_counts(right, aggregate_sum, 0)
        b = FeatureStat(1, right)
        b.merge_counts(left, aggregate_sum, 0)
        assert a.counts == b.counts


class TestMergeFeatureStats:
    def test_distinct_fids_pass_through(self):
        merged = merge_feature_stats(
            [FeatureStat(1, [1]), FeatureStat(2, [2])], aggregate_sum
        )
        assert set(merged) == {1, 2}

    def test_same_fid_aggregates(self):
        merged = merge_feature_stats(
            [FeatureStat(1, [1, 1]), FeatureStat(1, [2, 3])], aggregate_sum
        )
        assert merged[1].counts == [3, 4]

    def test_result_is_copies_not_aliases(self):
        original = FeatureStat(1, [1])
        merged = merge_feature_stats([original], aggregate_sum)
        merged[1].counts[0] = 99
        assert original.counts[0] == 1

    def test_empty_input(self):
        assert merge_feature_stats([], aggregate_sum) == {}
