"""End-to-end integration tests spanning every subsystem.

These replay the paper's full data path — event streams joined into
instances, ingested into a multi-region cluster, served through cache +
persistence with compaction/truncate/shrink running — and check the
system-level invariants the paper relies on.
"""

import pytest

from repro import (
    IPSCluster,
    MultiRegionDeployment,
    ShrinkConfig,
    SimulatedClock,
    SortType,
    TableConfig,
    TimeRange,
    TruncateConfig,
)
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.ingest import (
    IngestionJob,
    InstanceJoiner,
    Topic,
    default_extraction,
)
from repro.workload import EventStreamGenerator, WorkloadConfig

NOW = 400 * MILLIS_PER_DAY


def full_pipeline(cluster, num_requests=1500, span_ms=2 * MILLIS_PER_HOUR, seed=11):
    """Run events -> join -> topic -> ingest into the given cluster."""
    generator = EventStreamGenerator(
        WorkloadConfig(num_users=200, num_items=800, seed=seed)
    )
    joiner = InstanceJoiner(window_ms=60_000)
    topic = Topic("instance", num_partitions=4)
    start = NOW - span_ms
    for impression, actions, feature in generator.impressions(
        num_requests, start, span_ms
    ):
        joiner.on_impression(impression)
        joiner.on_feature(feature)
        for action in actions:
            joiner.on_action(action)
        for record in joiner.advance_watermark(impression.timestamp_ms):
            topic.produce(record.user_id, record, record.timestamp_ms)
    for record in joiner.flush():
        topic.produce(record.user_id, record, record.timestamp_ms)
    job = IngestionJob(
        topic,
        cluster.client("ingest") if isinstance(cluster, IPSCluster)
        else cluster.client(next(iter(cluster.regions)), caller="ingest"),
        default_extraction(cluster.config.attributes),
    )
    job.run_until_drained()
    return job


class TestSingleRegionEndToEnd:
    @pytest.fixture
    def cluster(self):
        clock = SimulatedClock(NOW)
        config = TableConfig(
            name="feed",
            attributes=("impression", "click", "like", "comment", "share"),
        )
        return IPSCluster(config, num_nodes=3, clock=clock)

    def test_ingested_features_are_queryable(self, cluster):
        job = full_pipeline(cluster)
        assert job.stats.write_failures == 0
        cluster.run_background_cycle()
        client = cluster.client("ranker")
        window = TimeRange.current(3 * MILLIS_PER_HOUR)
        # The most popular (Zipf rank 0) user definitely has data.
        found = False
        for slot in range(8):
            if client.get_profile_topk(0, slot, None, window, k=5):
                found = True
                break
        assert found

    def test_write_visibility_lag_bounded_by_merge(self, cluster):
        """§III-F: isolation delays visibility only until the next merge."""
        client = cluster.client("app")
        client.add_profile(1, NOW, 0, 0, 99, {"click": 1})
        window = TimeRange.current(MILLIS_PER_HOUR)
        assert client.get_profile_topk(1, 0, 0, window) == []
        cluster.run_background_cycle()
        assert client.get_profile_topk(1, 0, 0, window)

    def test_totals_conserved_through_the_full_path(self, cluster):
        """Every joined click lands in exactly one profile count."""
        job = full_pipeline(cluster)
        cluster.run_background_cycle()
        client = cluster.client("audit")
        click_index = cluster.config.attributes.index("click")
        window = TimeRange.current(4 * MILLIS_PER_HOUR)
        total_clicks = 0
        for user in range(200):
            for slot in range(8):
                for result in client.get_profile_topk(
                    user, slot, None, window, k=1000
                ):
                    total_clicks += result.counts[click_index]
        # Compare against what the ingestion job wrote.
        assert job.stats.writes_issued > 0
        assert total_clicks > 0

    def test_restart_recovers_from_persistence(self, cluster):
        client = cluster.client("app")
        for fid in range(20):
            client.add_profile(5, NOW, 1, 0, fid, {"click": fid + 1})
        cluster.run_background_cycle()
        cluster.shutdown()  # Flush everything.
        # Build a brand-new region over the same KV store.
        from repro.cluster.region import Region

        fresh = Region(
            "local", cluster.config, cluster.store,
            SimulatedClock(NOW + 1000), num_nodes=3,
        )
        node = fresh.node_for(5)
        results = node.get_profile_topk(
            5, 1, 0, TimeRange.current(MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=3, sort_attribute="click",
        )
        assert [r.fid for r in results] == [19, 18, 17]


class TestMaintenanceUnderLoad:
    def test_compaction_and_truncation_bound_profile_size(self):
        """§III-D: a year of writes stays bounded instead of growing to
        tens of MB."""
        clock = SimulatedClock(NOW)
        config = TableConfig(
            name="t",
            attributes=("click",),
            truncate=TruncateConfig(max_age_ms=365 * MILLIS_PER_DAY),
            shrink=ShrinkConfig.from_mapping({}, default_retain=200),
        )
        cluster = IPSCluster(config, num_nodes=1, clock=clock)
        node = next(iter(cluster.region.nodes.values()))
        node.engine.maintenance_slice_threshold = 64
        client = cluster.client("app")
        # One write every 6 hours for a year.
        for step in range(4 * 365):
            timestamp = NOW - step * 6 * MILLIS_PER_HOUR
            client.add_profile(1, timestamp, 1, 0, step % 500, {"click": 1})
        cluster.run_background_cycle()
        node.run_maintenance()
        profile = node.engine.table.get(1)
        assert profile.slice_count() < 80  # Bounded by the band structure.
        assert profile.memory_bytes() < 100 * 1024

    def test_queries_survive_concurrent_maintenance(self):
        clock = SimulatedClock(NOW)
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        client = cluster.client("app")
        for hour in range(100):
            client.add_profile(
                7, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour % 10, {"click": 1}
            )
        cluster.run_background_cycle()
        window = TimeRange.current(5 * MILLIS_PER_DAY)
        before = client.get_profile_topk(7, 1, 0, window, k=20)
        for node in cluster.region.nodes.values():
            node.run_maintenance()
        after = client.get_profile_topk(7, 1, 0, window, k=20)
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }


class TestMultiRegionEndToEnd:
    def test_full_pipeline_with_region_failover(self):
        clock = SimulatedClock(NOW)
        config = TableConfig(
            name="feed",
            attributes=("impression", "click", "like", "comment", "share"),
        )
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=2, clock=clock
        )
        full_pipeline(deployment, num_requests=500)
        deployment.run_background_cycle()
        eu_client = deployment.client("eu", caller="ranker")
        window = TimeRange.current(3 * MILLIS_PER_HOUR)
        baseline = None
        for slot in range(8):
            results = eu_client.get_profile_topk(0, slot, None, window, k=5)
            if results:
                baseline = (slot, results)
                break
        assert baseline is not None
        slot, expected = baseline
        deployment.fail_region("eu")
        failover = eu_client.get_profile_topk(0, slot, None, window, k=5)
        assert {r.fid for r in failover} == {r.fid for r in expected}
