"""Tests for master/slave KV replication (Fig. 15's storage tier)."""

import pytest

from repro.errors import StorageError
from repro.storage import InMemoryKVStore, ReplicatedKVCluster


@pytest.fixture
def cluster():
    return ReplicatedKVCluster(["us", "eu", "asia"], master_region="us")


class TestConstruction:
    def test_master_must_be_a_region(self):
        with pytest.raises(StorageError):
            ReplicatedKVCluster(["us"], master_region="mars")

    def test_unknown_read_region_rejected(self, cluster):
        with pytest.raises(StorageError):
            cluster.read_store("mars")


class TestReplicationFlow:
    def test_writes_visible_on_master_immediately(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        assert cluster.read_store("us").get(b"k") == b"v"

    def test_slaves_lag_until_pumped(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        assert cluster.read_store("eu").get(b"k") is None
        assert cluster.lag("eu") == 1
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"v"
        assert cluster.lag("eu") == 0

    def test_master_region_has_zero_lag(self, cluster):
        assert cluster.lag("us") == 0

    def test_bounded_pump_leaves_remainder(self, cluster):
        writer = cluster.write_store()
        for index in range(10):
            writer.set(f"k{index}".encode(), b"v")
        applied = cluster.pump(max_ops=4)
        assert applied == 8  # 4 per slave, two slaves.
        assert cluster.lag("eu") == 6

    def test_deletes_replicate(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump()
        writer.delete(b"k")
        cluster.pump()
        assert cluster.read_store("asia").get(b"k") is None

    def test_xset_replicates_value(self, cluster):
        writer = cluster.write_store()
        version = writer.xset(b"k", b"v1", None)
        writer.xset(b"k", b"v2", version)
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"v2"

    def test_stale_read_shows_weak_consistency(self, cluster):
        """§III-G: a failed-over reader may see stale data; that is by
        design and bounded by the replication queue."""
        writer = cluster.write_store()
        writer.set(b"k", b"old")
        cluster.pump()
        writer.set(b"k", b"new")
        # eu has not applied the update yet.
        assert cluster.read_store("eu").get(b"k") == b"old"
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"new"

    def test_per_region_pump(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump(region="eu")
        assert cluster.read_store("eu").get(b"k") == b"v"
        assert cluster.read_store("asia").get(b"k") is None


class TestSequencedLag:
    """The op model shared with the net layer: monotonic seqs, lag gauges."""

    def test_ops_carry_monotonic_master_sequence(self, cluster):
        writer = cluster.write_store()
        writer.set(b"a", b"1")
        writer.delete(b"a")
        writer.set(b"b", b"2")
        assert cluster.last_seq == 3
        # Same seq on every slave's copy of the same op.
        eu = cluster._slaves["eu"].queue
        asia = cluster._slaves["asia"].queue
        assert [op.seq for op in eu] == [1, 2, 3]
        assert [op.seq for op in eu] == [op.seq for op in asia]

    def test_applied_seq_tracks_the_pump(self, cluster):
        writer = cluster.write_store()
        for index in range(5):
            writer.set(f"k{index}".encode(), b"v")
        assert cluster.applied_seq("eu") == 0
        assert cluster.applied_seq("us") == 5  # master is always caught up
        cluster.pump(max_ops=2, region="eu")
        assert cluster.applied_seq("eu") == 2
        cluster.pump()
        assert cluster.applied_seq("eu") == 5
        assert cluster.applied_seq("asia") == 5

    def test_lag_snapshot_has_the_fleet_report_shape(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump(region="eu")
        assert cluster.lag_snapshot() == {"eu": 0, "asia": 1}

    def test_lag_published_as_sim_layer_gauges(self):
        """Same ``replication_lag_ops`` family the net workers report."""
        from repro.obs.registry import MetricsRegistry
        from repro.storage.replication import REPLICATION_LAG_GAUGE

        metrics = MetricsRegistry()
        cluster = ReplicatedKVCluster(
            ["us", "eu"], master_region="us", metrics=metrics
        )
        gauge = metrics.gauge(REPLICATION_LAG_GAUGE, layer="sim", peer="eu")
        writer = cluster.write_store()
        writer.set(b"a", b"1")
        writer.set(b"b", b"2")
        assert gauge.value == 2.0
        cluster.pump(max_ops=1)
        assert gauge.value == 1.0
        cluster.pump()
        assert gauge.value == 0.0

    def test_unmetered_cluster_publishes_nothing(self, cluster):
        """The default cluster stays registry-free (no hidden globals)."""
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump()
        assert cluster._lag_gauges == {}
