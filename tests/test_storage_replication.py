"""Tests for master/slave KV replication (Fig. 15's storage tier)."""

import pytest

from repro.errors import StorageError
from repro.storage import InMemoryKVStore, ReplicatedKVCluster


@pytest.fixture
def cluster():
    return ReplicatedKVCluster(["us", "eu", "asia"], master_region="us")


class TestConstruction:
    def test_master_must_be_a_region(self):
        with pytest.raises(StorageError):
            ReplicatedKVCluster(["us"], master_region="mars")

    def test_unknown_read_region_rejected(self, cluster):
        with pytest.raises(StorageError):
            cluster.read_store("mars")


class TestReplicationFlow:
    def test_writes_visible_on_master_immediately(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        assert cluster.read_store("us").get(b"k") == b"v"

    def test_slaves_lag_until_pumped(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        assert cluster.read_store("eu").get(b"k") is None
        assert cluster.lag("eu") == 1
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"v"
        assert cluster.lag("eu") == 0

    def test_master_region_has_zero_lag(self, cluster):
        assert cluster.lag("us") == 0

    def test_bounded_pump_leaves_remainder(self, cluster):
        writer = cluster.write_store()
        for index in range(10):
            writer.set(f"k{index}".encode(), b"v")
        applied = cluster.pump(max_ops=4)
        assert applied == 8  # 4 per slave, two slaves.
        assert cluster.lag("eu") == 6

    def test_deletes_replicate(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump()
        writer.delete(b"k")
        cluster.pump()
        assert cluster.read_store("asia").get(b"k") is None

    def test_xset_replicates_value(self, cluster):
        writer = cluster.write_store()
        version = writer.xset(b"k", b"v1", None)
        writer.xset(b"k", b"v2", version)
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"v2"

    def test_stale_read_shows_weak_consistency(self, cluster):
        """§III-G: a failed-over reader may see stale data; that is by
        design and bounded by the replication queue."""
        writer = cluster.write_store()
        writer.set(b"k", b"old")
        cluster.pump()
        writer.set(b"k", b"new")
        # eu has not applied the update yet.
        assert cluster.read_store("eu").get(b"k") == b"old"
        cluster.pump()
        assert cluster.read_store("eu").get(b"k") == b"new"

    def test_per_region_pump(self, cluster):
        writer = cluster.write_store()
        writer.set(b"k", b"v")
        cluster.pump(region="eu")
        assert cluster.read_store("eu").get(b"k") == b"v"
        assert cluster.read_store("asia").get(b"k") is None
