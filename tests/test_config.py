"""Tests for configuration parsing (durations, Listings 2-4 configs)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE
from repro.config import (
    ShrinkConfig,
    SlotShrinkPolicy,
    TableConfig,
    TimeBand,
    TimeDimensionConfig,
    TruncateConfig,
    format_duration_ms,
    parse_duration_ms,
)
from repro.errors import ConfigError


class TestDurationParsing:
    @pytest.mark.parametrize(
        "text,expected_ms",
        [
            ("1ms", 1),
            ("500ms", 500),
            ("1s", 1000),
            ("0s", 0),
            ("10s", 10_000),
            ("1m", 60_000),
            ("10m", 600_000),
            ("1h", MILLIS_PER_HOUR),
            ("24h", 24 * MILLIS_PER_HOUR),
            ("1d", MILLIS_PER_DAY),
            ("365d", 365 * MILLIS_PER_DAY),
        ],
    )
    def test_parses_valid_durations(self, text, expected_ms):
        assert parse_duration_ms(text) == expected_ms

    @pytest.mark.parametrize("bad", ["", "10", "s", "10 s", "-5s", "1.5h", "10x"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_duration_ms(bad)

    def test_tolerates_surrounding_whitespace(self):
        assert parse_duration_ms(" 5m ") == 5 * MILLIS_PER_MINUTE

    @pytest.mark.parametrize("text", ["1s", "90s", "5m", "1h", "30d", "999ms"])
    def test_format_round_trips(self, text):
        assert parse_duration_ms(format_duration_ms(parse_duration_ms(text))) == (
            parse_duration_ms(text)
        )

    def test_format_picks_most_compact_unit(self):
        assert format_duration_ms(60_000) == "1m"
        assert format_duration_ms(MILLIS_PER_DAY) == "1d"
        assert format_duration_ms(1500) == "1500ms"

    def test_format_rejects_negative(self):
        with pytest.raises(ConfigError):
            format_duration_ms(-1)


class TestTimeBand:
    def test_contains_age_is_half_open(self):
        band = TimeBand(1000, 0, 60_000)
        assert band.contains_age(0)
        assert band.contains_age(59_999)
        assert not band.contains_age(60_000)

    def test_rejects_nonpositive_granularity(self):
        with pytest.raises(ConfigError):
            TimeBand(0, 0, 1000)

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigError):
            TimeBand(1000, 500, 500)


class TestTimeDimensionConfig:
    def test_production_default_matches_listing3(self):
        config = TimeDimensionConfig.production_default()
        # to_mapping canonicalises units ("24h" -> "1d"), so compare the
        # parsed semantics rather than the literal Listing-3 strings.
        expected = {
            "1s": ["0s", "1m"],
            "1m": ["1m", "1h"],
            "1h": ["1h", "24h"],
            "1d": ["24h", "30d"],
            "30d": ["30d", "365d"],
        }
        actual = {
            parse_duration_ms(granularity): [parse_duration_ms(edge) for edge in band]
            for granularity, band in config.to_mapping().items()
        }
        wanted = {
            parse_duration_ms(granularity): [parse_duration_ms(edge) for edge in band]
            for granularity, band in expected.items()
        }
        assert actual == wanted

    def test_granularity_for_age_selects_band(self):
        config = TimeDimensionConfig.production_default()
        assert config.granularity_for_age(0) == 1000
        assert config.granularity_for_age(30 * 60_000) == 60_000
        assert config.granularity_for_age(2 * MILLIS_PER_HOUR) == MILLIS_PER_HOUR
        assert config.granularity_for_age(40 * MILLIS_PER_DAY) == 30 * MILLIS_PER_DAY

    def test_future_timestamps_use_finest_band(self):
        config = TimeDimensionConfig.production_default()
        assert config.granularity_for_age(-5000) == 1000

    def test_beyond_horizon_returns_none(self):
        config = TimeDimensionConfig.production_default()
        assert config.granularity_for_age(366 * MILLIS_PER_DAY) is None
        assert config.horizon_ms == 365 * MILLIS_PER_DAY

    def test_rejects_gap_between_bands(self):
        with pytest.raises(ConfigError):
            TimeDimensionConfig.from_mapping({"1s": ("0s", "1m"), "1h": ("2m", "1h")})

    def test_rejects_band_not_starting_at_zero(self):
        with pytest.raises(ConfigError):
            TimeDimensionConfig.from_mapping({"1m": ("1m", "1h")})

    def test_rejects_decreasing_granularity(self):
        with pytest.raises(ConfigError):
            TimeDimensionConfig.from_mapping(
                {"1h": ("0s", "1h"), "1m": ("1h", "2h")}
            )

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            TimeDimensionConfig([])

    def test_rejects_bad_range_shape(self):
        with pytest.raises(ConfigError):
            TimeDimensionConfig.from_mapping({"1s": ("0s",)})


class TestShrinkConfig:
    def test_per_slot_policy_lookup(self):
        config = ShrinkConfig.from_mapping({1: 100, 2: 50})
        assert config.policy_for_slot(1).retain_features == 100
        assert config.policy_for_slot(2).retain_features == 50

    def test_unknown_slot_uses_default(self):
        config = ShrinkConfig.from_mapping({1: 100}, default_retain=10)
        assert config.policy_for_slot(99).retain_features == 10

    def test_unknown_slot_without_default_is_unbounded(self):
        config = ShrinkConfig.from_mapping({1: 100})
        assert config.policy_for_slot(99) is None

    def test_policy_rejects_negative_retain(self):
        with pytest.raises(ConfigError):
            SlotShrinkPolicy(retain_features=-1)

    def test_policy_rejects_nonpositive_half_life(self):
        with pytest.raises(ConfigError):
            SlotShrinkPolicy(retain_features=5, freshness_half_life_ms=0)


class TestTruncateConfig:
    def test_defaults_disable_both_bounds(self):
        config = TruncateConfig()
        assert config.max_slices is None
        assert config.max_age_ms is None

    def test_rejects_negative_slice_bound(self):
        with pytest.raises(ConfigError):
            TruncateConfig(max_slices=-1)

    def test_rejects_nonpositive_age(self):
        with pytest.raises(ConfigError):
            TruncateConfig(max_age_ms=0)


class TestTableConfig:
    def test_attribute_index_lookup(self):
        config = TableConfig(name="t", attributes=("like", "share"))
        assert config.attribute_index("like") == 0
        assert config.attribute_index("share") == 1
        assert config.num_attributes == 2

    def test_unknown_attribute_raises(self):
        config = TableConfig(name="t", attributes=("like",))
        with pytest.raises(ConfigError):
            config.attribute_index("nope")

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            TableConfig(name="", attributes=("a",))

    def test_rejects_empty_attributes(self):
        with pytest.raises(ConfigError):
            TableConfig(name="t", attributes=())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ConfigError):
            TableConfig(name="t", attributes=("a", "a"))

    def test_default_time_dimension_is_production(self):
        config = TableConfig(name="t")
        assert config.time_dimension.horizon_ms == 365 * MILLIS_PER_DAY
