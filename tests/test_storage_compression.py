"""Tests for the from-scratch snappy-style codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompressionError
from repro.storage.compression import compress, compression_ratio, decompress


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abc",
            b"aaaaaaaaaaaaaaaaaaaaaaaa",
            b"abcd" * 1000,
            bytes(range(256)),
            b"\x00" * 10_000,
            b"the quick brown fox jumps over the lazy dog " * 50,
        ],
    )
    def test_roundtrip_known_inputs(self, data):
        assert decompress(compress(data)) == data

    @given(st.binary(min_size=0, max_size=5000))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, data):
        assert decompress(compress(data)) == data

    @given(
        st.binary(min_size=1, max_size=20),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_repetitive(self, unit, repeats):
        data = unit * repeats
        assert decompress(compress(data)) == data


class TestCompressionQuality:
    def test_repetitive_data_compresses_well(self):
        assert compression_ratio(b"profile" * 2000) < 0.05

    def test_long_runs_compress(self):
        # Copies are capped at 64 bytes per 3-byte tag, so the floor for a
        # constant run is ~3/64 ≈ 0.047.
        assert compression_ratio(b"\x00" * 65536) < 0.05

    def test_incompressible_overhead_is_bounded(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(4096))
        blob = compress(data)
        # Literal framing overhead stays tiny even for random input.
        assert len(blob) < len(data) * 1.05

    def test_empty_ratio_is_one(self):
        assert compression_ratio(b"") == 1.0


class TestCorruptionHandling:
    def test_truncated_stream_detected(self):
        blob = compress(b"hello world, hello world, hello world")
        with pytest.raises(CompressionError):
            decompress(blob[: len(blob) // 2])

    def test_bad_copy_offset_detected(self):
        # Hand-craft: header len=4, then a copy with offset beyond output.
        blob = bytes([4, 0x01 | (3 << 2), 0xFF, 0x00])
        with pytest.raises(CompressionError):
            decompress(blob)

    def test_length_mismatch_detected(self):
        # Header claims 10 bytes but stream only encodes 3 literals.
        blob = bytes([10, 0x00 | (2 << 2), ord("a"), ord("b"), ord("c")])
        with pytest.raises(CompressionError):
            decompress(blob)

    def test_empty_blob_is_invalid(self):
        with pytest.raises(CompressionError):
            decompress(b"")

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_never_misdecodes_silently(self, junk):
        """Random blobs either decode to *something* consistent or raise
        CompressionError — never crash with an unrelated exception."""
        try:
            decompress(junk)
        except CompressionError:
            pass
