"""Tests for tail-based trace sampling: reasons, FIFO cap, lookup."""

import pytest

from repro.clock import SimulatedClock
from repro.obs.registry import MetricsRegistry
from repro.obs.tail import REASONS, TailSampler
from repro.obs.trace import Tracer


def finished_root(tracer, name="op", *, error=False, tags=None,
                  child_tags=None):
    """Drive one root span through the tracer and return it."""
    try:
        with tracer.span(name, **(tags or {})):
            with tracer.span("child", **(child_tags or {})):
                if error:
                    raise RuntimeError("boom")
    except RuntimeError:
        pass
    return tracer.roots[-1]


class TestClassify:
    def test_reason_precedence(self):
        tracer = Tracer()
        assert REASONS == ("error", "chaos", "hedged", "slow")
        # Error wins even when chaos/hedged tags are present.
        span = finished_root(
            tracer, error=True, tags={"hedged": 1},
            child_tags={"chaos": "rpc_error"},
        )
        assert TailSampler.classify(span, slow=True) == "error"
        # Chaos beats hedged; tags anywhere in the tree count.
        span = finished_root(
            tracer, tags={"hedged": 1}, child_tags={"chaos": "rpc_latency"}
        )
        assert TailSampler.classify(span, slow=True) == "chaos"
        span = finished_root(tracer, tags={"hedged": 1})
        assert TailSampler.classify(span, slow=True) == "hedged"
        span = finished_root(tracer)
        assert TailSampler.classify(span, slow=True) == "slow"
        assert TailSampler.classify(span, slow=False) is None


class TestOffer:
    def test_retains_by_reason_and_looks_up_by_trace_id(self):
        tracer = Tracer()
        sampler = TailSampler(max_traces=8)
        boring = finished_root(tracer)
        errored = finished_root(tracer, error=True)
        assert sampler.offer(boring) is None
        assert sampler.offer(errored) == "error"
        assert errored.trace_id in sampler
        assert boring.trace_id not in sampler
        assert sampler.get(errored.trace_id) is errored
        assert sampler.reason(errored.trace_id) == "error"
        assert sampler.get("t-99999999") is None
        assert sampler.reason("t-99999999") is None
        assert len(sampler) == 1

    def test_span_without_trace_id_is_never_retained(self):
        tracer = Tracer()
        sampler = TailSampler()
        span = finished_root(tracer, error=True)
        span.trace_id = None
        assert sampler.offer(span, slow=True) is None
        assert len(sampler) == 0
        assert sampler.stats()["dropped"] == 1

    def test_fifo_eviction_keeps_memory_bounded(self):
        tracer = Tracer(slow_threshold_ms=0.0)
        sampler = TailSampler(max_traces=3)
        spans = [
            finished_root(tracer, name=f"op-{index}", error=True)
            for index in range(10)
        ]
        for span in spans:
            sampler.offer(span)
        assert len(sampler) == 3
        assert sampler.trace_ids() == tuple(
            span.trace_id for span in spans[-3:]
        )
        stats = sampler.stats()
        assert stats["offered"] == 10
        assert stats["evicted"] == 7
        assert stats["resident"] == 3
        assert stats["retained_by_reason"]["error"] == 10

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            TailSampler(max_traces=0)

    def test_registry_counters(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        sampler = TailSampler(max_traces=2, registry=registry)
        for _ in range(3):
            sampler.offer(finished_root(tracer, error=True))
        sampler.offer(finished_root(tracer))  # boring -> dropped
        assert registry.get(
            "tail_sampler_retained_total", reason="error"
        ).value == 3.0
        assert registry.get("tail_sampler_dropped_total").value == 1.0
        assert registry.get("tail_sampler_evicted_total").value == 1.0
        assert registry.get("tail_sampler_resident").value == 2.0


class TestTracerIntegration:
    def test_tracer_offers_every_finished_root(self):
        clock = SimulatedClock(0)
        sampler = TailSampler(max_traces=4)
        tracer = Tracer(
            clock=clock, slow_threshold_ms=100.0, tail_sampler=sampler
        )
        with tracer.span("fast"):
            pass
        with tracer.span("slow"):
            clock.advance(500)
        assert len(sampler) == 1
        slow_root = tracer.roots[-1]
        assert sampler.reason(slow_root.trace_id) == "slow"
        # The retained tree is the real one, not a copy.
        assert sampler.get(slow_root.trace_id) is slow_root
