"""Tests for the auto-scaler (§IV: pods auto-scale with workload)."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster
from repro.cluster.autoscaler import AutoScaler, ScalingPolicy
from repro.config import TableConfig
from repro.core.timerange import TimeRange

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    config = TableConfig(name="t", attributes=("click",))
    return IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))


def make_scaler(cluster, **overrides):
    settings = dict(
        node_capacity_qps=1000,
        scale_up_threshold=0.75,
        scale_down_threshold=0.30,
        min_nodes=1,
        max_nodes=8,
        cooldown_ticks=0,
    )
    settings.update(overrides)
    return AutoScaler(cluster.region, ScalingPolicy(**settings))


class TestPolicyValidation:
    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            ScalingPolicy(scale_up_threshold=0.2, scale_down_threshold=0.5)

    def test_rejects_bad_node_bounds(self):
        with pytest.raises(ValueError):
            ScalingPolicy(min_nodes=5, max_nodes=2)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ScalingPolicy(step=0)


class TestScalingDecisions:
    def test_high_load_scales_up(self, cluster):
        scaler = make_scaler(cluster)
        # 2 nodes x 1000 qps capacity; 1800 qps -> 90 % utilisation.
        events = scaler.tick(observed_qps=1800)
        assert len(events) == 1
        assert events[0].action == "scale_up"
        assert len(cluster.region.nodes) == 3
        assert events[0].node_id in cluster.region.nodes
        assert events[0].node_id in cluster.region.ring

    def test_low_load_scales_down(self, cluster):
        scaler = make_scaler(cluster)
        events = scaler.tick(observed_qps=100)  # 5 % utilisation.
        assert len(events) == 1
        assert events[0].action == "scale_down"
        assert len(cluster.region.nodes) == 1

    def test_steady_load_no_action(self, cluster):
        scaler = make_scaler(cluster)
        assert scaler.tick(observed_qps=1000) == []  # 50 %: inside band.
        assert len(cluster.region.nodes) == 2

    def test_max_nodes_bound(self, cluster):
        scaler = make_scaler(cluster, max_nodes=3)
        scaler.tick(observed_qps=10_000)
        scaler.tick(observed_qps=10_000)
        scaler.tick(observed_qps=10_000)
        assert len(cluster.region.nodes) == 3

    def test_min_nodes_bound(self, cluster):
        scaler = make_scaler(cluster, min_nodes=2)
        assert scaler.tick(observed_qps=0.0) == []
        assert len(cluster.region.nodes) == 2

    def test_cooldown_suppresses_flapping(self, cluster):
        policy = ScalingPolicy(
            node_capacity_qps=1000, min_nodes=1, max_nodes=8, cooldown_ticks=2
        )
        scaler = AutoScaler(cluster.region, policy)
        assert scaler.tick(observed_qps=1800)  # Scales up, enters cooldown.
        assert scaler.tick(observed_qps=5000) == []  # Suppressed.
        assert scaler.tick(observed_qps=5000) == []  # Still cooling.
        assert scaler.tick(observed_qps=5000)  # Acts again.


class TestDataSafety:
    def test_scale_down_drains_before_removal(self, cluster):
        """Profiles owned by a removed node survive via the KV store."""
        client = cluster.client("app")
        for profile_id in range(100):
            client.add_profile(profile_id, NOW, 1, 0, profile_id % 5, {"click": 1})
        cluster.run_background_cycle()
        scaler = make_scaler(cluster)
        removed = scaler.tick(observed_qps=10)[0].node_id
        assert removed not in cluster.region.nodes
        # Every profile is still fully readable (reloaded by new owners).
        for profile_id in range(100):
            results = client.get_profile_topk(profile_id, 1, 0, WINDOW, k=5)
            assert results, f"profile {profile_id} lost after scale-down"

    def test_scale_up_serves_new_share_from_storage(self, cluster):
        client = cluster.client("app")
        for profile_id in range(100):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        for node in cluster.region.nodes.values():
            node.cache.flush_all()
        scaler = make_scaler(cluster)
        added = scaler.tick(observed_qps=5000)[0].node_id
        # Keys remapped to the new node load from the KV store on demand.
        for profile_id in range(100):
            assert client.get_profile_topk(profile_id, 1, 0, WINDOW, k=1)
        assert cluster.region.nodes[added].stats.reads >= 0

    def test_remapping_is_bounded(self, cluster):
        """Consistent hashing: adding one node moves roughly 1/n of keys."""
        keys = list(range(3000))
        before = {key: cluster.region.ring.node_for(key) for key in keys}
        scaler = make_scaler(cluster)
        scaler.tick(observed_qps=5000)  # 2 -> 3 nodes.
        moved = sum(
            1 for key in keys if cluster.region.ring.node_for(key) != before[key]
        )
        assert moved < len(keys) * 0.55  # ~1/3 expected; generous bound.
        assert moved > 0

    def test_stats_accumulate(self, cluster):
        scaler = make_scaler(cluster)
        scaler.tick(observed_qps=1800)
        scaler.tick(observed_qps=10)
        assert scaler.stats.scale_ups == 1
        assert scaler.stats.scale_downs == 1
        assert len(scaler.stats.events) == 2
