"""Tests for the query engine: top-K, filter, decay, sorting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.config import TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.decay import exponential_decay, step_decay
from repro.core.profile import ProfileData
from repro.core.query import QueryEngine, QueryStats, SortType
from repro.core.timerange import TimeRange
from repro.errors import InvalidQueryError

NOW = 100 * MILLIS_PER_DAY


@pytest.fixture
def config():
    return TableConfig(name="t", attributes=("like", "comment", "share"))


@pytest.fixture
def query_engine(config):
    return QueryEngine(config, get_aggregate("sum"))


@pytest.fixture
def profile():
    """The paper's Alice example plus extra data in other slots/types."""
    aggregate = get_aggregate("sum")
    p = ProfileData(1, write_granularity_ms=1000)
    # Lakers: 10 days ago, one like/comment/share.
    p.add(NOW - 10 * MILLIS_PER_DAY, 7, 3, 111, [1, 1, 1], aggregate)
    # Warriors: 2 days ago, two likes.
    p.add(NOW - 2 * MILLIS_PER_DAY, 7, 3, 222, [2, 0, 0], aggregate)
    # A different type in the same slot (e.g. Soccer).
    p.add(NOW - 1 * MILLIS_PER_DAY, 7, 4, 333, [5, 0, 0], aggregate)
    # A different slot (e.g. Music).
    p.add(NOW - 3 * MILLIS_PER_DAY, 9, 1, 444, [9, 0, 0], aggregate)
    return p


class TestTopK:
    def test_alice_motivating_example(self, query_engine, profile):
        """Top liked basketball team over last 10 days = Warriors (fid 222)."""
        results = query_engine.top_k(
            profile, 7, 3, TimeRange.current(10 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=1, now_ms=NOW, sort_attribute="like",
        )
        assert [r.fid for r in results] == [222]

    def test_window_excludes_old_data(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, 3, TimeRange.current(5 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=10, now_ms=NOW, sort_attribute="like",
        )
        assert [r.fid for r in results] == [222]  # Lakers outside window.

    def test_type_none_merges_all_types(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=10, now_ms=NOW, sort_attribute="like",
        )
        assert {r.fid for r in results} == {111, 222, 333}

    def test_slot_isolation(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 9, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.TOTAL, k=10, now_ms=NOW,
        )
        assert [r.fid for r in results] == [444]

    def test_k_limits_results(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.TOTAL, k=2, now_ms=NOW,
        )
        assert len(results) == 2

    def test_k_must_be_positive(self, query_engine, profile):
        with pytest.raises(InvalidQueryError):
            query_engine.top_k(
                profile, 7, None, TimeRange.current(1000),
                SortType.TOTAL, k=0, now_ms=NOW,
            )

    def test_attribute_sort_requires_attribute(self, query_engine, profile):
        with pytest.raises(InvalidQueryError):
            query_engine.top_k(
                profile, 7, None, TimeRange.current(1000),
                SortType.ATTRIBUTE, k=1, now_ms=NOW,
            )

    def test_sort_by_timestamp(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.TIMESTAMP, k=3, now_ms=NOW,
        )
        assert results[0].fid == 333  # Most recent action first.

    def test_sort_by_feature_id_ascending(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.FEATURE_ID, k=3, now_ms=NOW, descending=False,
        )
        assert [r.fid for r in results] == [111, 222, 333]

    def test_aggregates_same_fid_across_slices(self, query_engine, config):
        aggregate = get_aggregate("sum")
        p = ProfileData(2, 1000)
        p.add(NOW - 2 * MILLIS_PER_DAY, 1, 1, 55, [1, 0, 0], aggregate)
        p.add(NOW - 1 * MILLIS_PER_DAY, 1, 1, 55, [4, 0, 0], aggregate)
        results = query_engine.top_k(
            p, 1, 1, TimeRange.current(10 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=1, now_ms=NOW, sort_attribute="like",
        )
        assert results[0].counts[0] == 5

    def test_relative_range_on_dormant_profile(self, query_engine, profile):
        """RELATIVE anchors at the newest action even if it is old."""
        later = NOW + 300 * MILLIS_PER_DAY
        results = query_engine.top_k(
            profile, 7, 3, TimeRange.relative(10 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=5, now_ms=later, sort_attribute="like",
        )
        assert {r.fid for r in results} == {111, 222}

    def test_current_range_on_dormant_profile_is_empty(self, query_engine, profile):
        later = NOW + 300 * MILLIS_PER_DAY
        results = query_engine.top_k(
            profile, 7, 3, TimeRange.current(10 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=5, now_ms=later, sort_attribute="like",
        )
        assert results == []

    def test_absolute_range_historical(self, query_engine, profile):
        results = query_engine.top_k(
            profile, 7, 3,
            TimeRange.absolute(NOW - 11 * MILLIS_PER_DAY, NOW - 9 * MILLIS_PER_DAY),
            SortType.TOTAL, k=5, now_ms=NOW,
        )
        assert [r.fid for r in results] == [111]

    def test_stats_populated(self, query_engine, profile):
        stats = QueryStats()
        query_engine.top_k(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            SortType.TOTAL, k=10, now_ms=NOW, stats=stats,
        )
        assert stats.slices_scanned >= 3
        assert stats.features_merged >= 3
        assert stats.results_returned == 3


class TestFilter:
    def test_predicate_filters(self, query_engine, profile):
        results = query_engine.filter(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            predicate=lambda stat: stat.count_at(0) >= 2, now_ms=NOW,
        )
        assert {r.fid for r in results} == {222, 333}

    def test_results_sorted_by_total_descending(self, query_engine, profile):
        results = query_engine.filter(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            predicate=lambda stat: True, now_ms=NOW,
        )
        totals = [r.total() for r in results]
        assert totals == sorted(totals, reverse=True)

    def test_empty_on_no_match(self, query_engine, profile):
        results = query_engine.filter(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            predicate=lambda stat: False, now_ms=NOW,
        )
        assert results == []


class TestDecay:
    def test_exponential_decay_favours_recent(self, query_engine, config):
        aggregate = get_aggregate("sum")
        p = ProfileData(3, 1000)
        # Old feature with a big count, recent feature with a small count.
        p.add(NOW - 20 * MILLIS_PER_DAY, 1, 1, 100, [8, 0, 0], aggregate)
        p.add(NOW - 1 * MILLIS_PER_DAY, 1, 1, 200, [3, 0, 0], aggregate)
        results = query_engine.decay(
            p, 1, 1, TimeRange.current(30 * MILLIS_PER_DAY),
            exponential_decay, 2 * MILLIS_PER_DAY, now_ms=NOW,
            sort_attribute="like",
        )
        assert results[0].fid == 200  # Decay flips the order.

    def test_step_decay_zeroes_old_slices(self, query_engine, profile):
        results = query_engine.decay(
            profile, 7, 3, TimeRange.current(30 * MILLIS_PER_DAY),
            step_decay, 5 * MILLIS_PER_DAY, now_ms=NOW,
        )
        fids = {r.fid for r in results}
        assert 111 not in fids  # Lakers (10 days old) fully decayed away.

    def test_decay_with_k_cut(self, query_engine, profile):
        results = query_engine.decay(
            profile, 7, None, TimeRange.current(30 * MILLIS_PER_DAY),
            exponential_decay, 10 * MILLIS_PER_DAY, now_ms=NOW, k=1,
        )
        assert len(results) == 1

    def test_decay_rejects_nonpositive_k(self, query_engine, profile):
        with pytest.raises(InvalidQueryError):
            query_engine.decay(
                profile, 7, None, TimeRange.current(1000),
                exponential_decay, 1000.0, now_ms=NOW, k=0,
            )


class TestQueryProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=29),  # day offset
                st.integers(min_value=0, max_value=20),  # fid
                st.integers(min_value=1, max_value=100),  # like count
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_matches_bruteforce_sum(self, writes):
        """Property: engine top-K equals a brute-force dict aggregation."""
        config = TableConfig(name="t", attributes=("like",))
        engine = QueryEngine(config, get_aggregate("sum"))
        aggregate = get_aggregate("sum")
        profile = ProfileData(1, 1000)
        expected: dict[int, int] = {}
        for day, fid, like in writes:
            timestamp = NOW - day * MILLIS_PER_DAY
            profile.add(timestamp, 1, 1, fid, [like], aggregate)
            expected[fid] = expected.get(fid, 0) + like
        results = engine.top_k(
            profile, 1, 1, TimeRange.current(31 * MILLIS_PER_DAY),
            SortType.ATTRIBUTE, k=len(expected), now_ms=NOW,
            sort_attribute="like",
        )
        assert {r.fid: r.counts[0] for r in results} == expected
        likes = [r.counts[0] for r in results]
        assert likes == sorted(likes, reverse=True)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_topk_k_monotonicity(self, k):
        """Property: top-(k) is a prefix-set of top-(k+1)."""
        config = TableConfig(name="t", attributes=("like",))
        engine = QueryEngine(config, get_aggregate("sum"))
        aggregate = get_aggregate("sum")
        profile = ProfileData(1, 1000)
        for fid in range(30):
            profile.add(
                NOW - fid * MILLIS_PER_HOUR, 1, 1, fid, [fid * 7 % 13 + 1], aggregate
            )
        window = TimeRange.current(40 * MILLIS_PER_DAY)
        smaller = engine.top_k(
            profile, 1, 1, window, SortType.ATTRIBUTE, k, NOW, sort_attribute="like"
        )
        larger = engine.top_k(
            profile, 1, 1, window, SortType.ATTRIBUTE, k + 1, NOW,
            sort_attribute="like",
        )
        assert {r.fid for r in smaller} <= {r.fid for r in larger}


class TestQueryFingerprint:
    """Normalization rules for the result-cache fingerprint.

    Semantically identical queries must share one fingerprint (one cache
    entry); semantically different ones must not.  Queries whose meaning
    the fingerprint cannot capture (opaque callables, invalid arguments)
    must map to ``None`` — uncacheable, never silently wrong.
    """

    WINDOW = TimeRange.absolute(0, NOW)

    def _fp(self, config, method="topk", **kwargs):
        from repro.core.query import query_fingerprint

        kwargs.setdefault("sort_type", SortType.TOTAL)
        kwargs.setdefault("k", 10)
        if method != "topk":
            kwargs.pop("sort_type"), kwargs.pop("k")
        return query_fingerprint(config, method, 7, 3, self.WINDOW, **kwargs)

    def test_weight_order_is_irrelevant(self, config):
        a = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 2, "share": 5})
        b = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"share": 5, "like": 2})
        assert a is not None
        assert a == b

    def test_zero_weights_are_dropped(self, config):
        a = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 2, "comment": 0})
        b = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 2})
        assert a is not None
        assert a == b

    def test_int_and_float_weights_share_an_entry(self, config):
        a = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 1, "share": 2})
        b = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 1.0, "share": 2.0})
        assert a is not None
        assert hash(a) == hash(b) and a == b

    def test_different_weights_differ(self, config):
        a = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 2})
        b = self._fp(config, sort_type=SortType.WEIGHTED,
                     sort_weights={"like": 3})
        assert a != b

    def test_none_aggregate_collapses_to_config_default(self, config):
        assert config.aggregate == "sum"
        a = self._fp(config, aggregate=None)
        b = self._fp(config, aggregate="sum")
        c = self._fp(config, aggregate="SUM")
        assert a is not None
        assert a == b == c

    def test_sort_attribute_ignored_unless_attribute_sort(self, config):
        a = self._fp(config, sort_type=SortType.TOTAL)
        b = self._fp(config, sort_type=SortType.TOTAL, sort_attribute="like")
        assert a is not None
        assert a == b
        # But for ATTRIBUTE sort it is load-bearing.
        c = self._fp(config, sort_type=SortType.ATTRIBUTE,
                     sort_attribute="like")
        d = self._fp(config, sort_type=SortType.ATTRIBUTE,
                     sort_attribute="share")
        assert c is not None and d is not None
        assert c != d and c != a

    def test_decay_name_and_callable_share_an_entry(self, config):
        a = self._fp(config, method="decay", decay_function="exponential",
                     decay_factor=2.0)
        b = self._fp(config, method="decay", decay_function=exponential_decay,
                     decay_factor=2.0)
        c = self._fp(config, method="decay", decay_function="EXPONENTIAL",
                     decay_factor=2.0)
        assert a is not None
        assert a == b == c

    def test_unregistered_decay_callable_is_uncacheable(self, config):
        assert self._fp(
            config, method="decay",
            decay_function=lambda age, factor: 1.0, decay_factor=2.0,
        ) is None

    def test_opaque_filter_predicate_is_uncacheable(self, config):
        assert self._fp(
            config, method="filter", predicate=lambda stat: True
        ) is None

    def test_marked_filter_predicate_is_cacheable(self, config):
        from repro.core.query import cacheable_filter

        @cacheable_filter(("total_at_least", 3))
        def predicate(stat):
            return stat.total() >= 3

        @cacheable_filter(("total_at_least", 4))
        def other(stat):
            return stat.total() >= 4

        a = self._fp(config, method="filter", predicate=predicate)
        b = self._fp(config, method="filter", predicate=predicate)
        c = self._fp(config, method="filter", predicate=other)
        assert a is not None
        assert a == b
        assert a != c

    def test_invalid_arguments_are_uncacheable_not_wrong(self, config):
        # k <= 0 and a bad attribute raise in the engine; the fingerprint
        # must refuse them so the error path is never cached away.
        assert self._fp(config, k=0) is None
        assert self._fp(config, sort_type=SortType.ATTRIBUTE,
                        sort_attribute="nope") is None

    def test_distinct_queries_stay_distinct(self, config):
        from repro.core.query import query_fingerprint

        base = dict(sort_type=SortType.TOTAL, k=10)
        fingerprints = {
            query_fingerprint(config, "topk", 7, 3, self.WINDOW, **base),
            query_fingerprint(config, "topk", 7, 4, self.WINDOW, **base),
            query_fingerprint(config, "topk", 9, 3, self.WINDOW, **base),
            query_fingerprint(config, "topk", 7, None, self.WINDOW, **base),
            query_fingerprint(config, "topk", 7, 3, self.WINDOW,
                              sort_type=SortType.TOTAL, k=11),
            query_fingerprint(config, "topk", 7, 3,
                              TimeRange.absolute(0, NOW - 1), **base),
        }
        assert None not in fingerprints
        assert len(fingerprints) == 6

    def test_window_bounds_are_part_of_the_key(self, config):
        from repro.core.query import query_fingerprint

        a = self._fp(config)
        b = query_fingerprint(
            config, "topk", 7, 3, TimeRange.absolute(1, NOW),
            sort_type=SortType.TOTAL, k=10,
        )
        assert a != b

    def test_reordered_weights_give_bit_identical_results(
        self, query_engine, profile
    ):
        """Execution-side normalization: same floats summed in the same
        order regardless of how the caller spelled the weight dict."""
        window = TimeRange.absolute(0, NOW)
        a = query_engine.top_k(
            profile, 7, 3, window, SortType.WEIGHTED, 10, NOW,
            sort_weights={"like": 0.1, "comment": 0.7, "share": 0.2},
        )
        b = query_engine.top_k(
            profile, 7, 3, window, SortType.WEIGHTED, 10, NOW,
            sort_weights={"share": 0.2, "comment": 0.7, "like": 0.1},
        )
        assert repr(a) == repr(b)
