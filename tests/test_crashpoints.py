"""Tests for the seeded crash-point harness itself."""

from repro.chaos.crashpoints import (
    CrashingKVStore,
    CrashPointInjector,
    choose_crash_plan,
    plan_workload,
    run_schedule,
    run_teeth_proof,
)
from repro.errors import SimulatedCrashError
from repro.storage import InMemoryKVStore

SEEDS = range(4)


class TestInjector:
    def test_counting_mode_records_visits(self):
        injector = CrashPointInjector()
        sink = bytearray()
        injector.write("wal.append", b"abcdef", sink.extend)
        injector.reach("wal.pre_fsync")
        assert sink == b"abcdef"
        assert injector.visits == {
            "wal.append": [6], "wal.pre_fsync": [-1]
        }
        assert not injector.fired

    def test_armed_write_tears_at_offset(self):
        injector = CrashPointInjector()
        injector.arm("wal.append", hit=1, byte_offset=2)
        sink = bytearray()
        injector.write("wal.append", b"first", sink.extend)
        try:
            injector.write("wal.append", b"second", sink.extend)
        except SimulatedCrashError as crash:
            assert crash.site == "wal.append"
        else:  # pragma: no cover
            raise AssertionError("crash did not fire")
        assert sink == b"firstse"  # Record 2 torn after 2 bytes.
        assert injector.fired

    def test_armed_reach_fires_once(self):
        injector = CrashPointInjector()
        injector.arm("checkpoint.commit", hit=0)
        try:
            injector.reach("checkpoint.commit")
        except SimulatedCrashError:
            pass
        injector.reach("checkpoint.commit")  # Dead process stays dead.

    def test_kv_store_crashes_before_armed_op(self):
        store = CrashingKVStore(InMemoryKVStore())
        store.arm(1)
        store.set(b"a", b"1")  # Op 0 completes.
        try:
            store.set(b"b", b"2")  # Op 1 dies before touching the store.
        except SimulatedCrashError:
            pass
        assert store.get(b"a") == b"1"
        assert store.get(b"b") is None


class TestPlanning:
    def test_workload_plan_is_seed_deterministic(self):
        assert plan_workload(7) == plan_workload(7)
        assert plan_workload(7) != plan_workload(8)

    def test_crash_plan_is_seed_deterministic(self):
        visits = {"wal.append": [30, 30, 30], "wal.pre_fsync": [-1, -1, -1]}
        assert choose_crash_plan(3, visits, 50) == choose_crash_plan(
            3, visits, 50
        )


class TestSchedules:
    def test_schedules_recover_all_acked_writes(self):
        for seed in SEEDS:
            result = run_schedule(seed)
            assert result.ok, f"seed {seed}: {result.failure}"

    def test_same_seed_is_byte_identical(self):
        assert run_schedule(2).line() == run_schedule(2).line()

    def test_teeth_without_wal_loss_is_caught(self):
        """Durability off: at least one seed must show detected loss."""
        losses = sum(not run_teeth_proof(seed).ok for seed in range(6))
        assert losses > 0
