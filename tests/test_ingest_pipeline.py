"""Tests for the ingestion job and batch importer (§III-A, §III-F)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.ingest import (
    BatchImporter,
    IngestionJob,
    InstanceJoiner,
    Topic,
    default_extraction,
)
from repro.ingest.events import ActionEvent, ImpressionEvent, InstanceRecord, FeatureEvent
from repro.ingest.pipeline import ProfileWrite

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    clock = SimulatedClock(NOW)
    config = TableConfig(
        name="t", attributes=("impression", "click", "like")
    )
    return IPSCluster(config, num_nodes=2, clock=clock)


def make_record(user=1, item=10, actions=None, signals=None, timestamp=NOW):
    return InstanceRecord(
        request_id="r",
        user_id=user,
        item_id=item,
        timestamp_ms=timestamp,
        actions=actions if actions is not None else {"click": 1},
        signals=signals if signals is not None else {"slot": 2, "type": 1},
    )


class TestDefaultExtraction:
    def test_maps_actions_and_impression(self):
        extract = default_extraction(("impression", "click", "like"))
        writes = list(extract(make_record(actions={"click": 2, "like": 1})))
        assert len(writes) == 1
        write = writes[0]
        assert write.counts == {"click": 2, "like": 1, "impression": 1}
        assert write.slot == 2 and write.type_id == 1
        assert write.fid == 10 and write.profile_id == 1

    def test_negative_sample_counts_impression_only(self):
        extract = default_extraction(("impression", "click"))
        writes = list(extract(make_record(actions={})))
        assert writes[0].counts == {"impression": 1}

    def test_unknown_actions_filtered(self):
        extract = default_extraction(("click",))
        writes = list(extract(make_record(actions={"weird": 5, "click": 1})))
        assert writes[0].counts == {"click": 1}

    def test_no_schema_overlap_and_no_impression_yields_nothing(self):
        extract = default_extraction(("click",))
        assert list(extract(make_record(actions={"share": 1}))) == []

    def test_missing_signals_use_defaults(self):
        extract = default_extraction(("click",), default_slot=7, default_type=3)
        writes = list(extract(make_record(signals={})))
        assert writes[0].slot == 7 and writes[0].type_id == 3


class TestIngestionJob:
    def test_consumes_topic_into_cluster(self, cluster):
        topic = Topic("instance", num_partitions=2)
        for user in range(20):
            topic.produce(user, make_record(user=user, item=user % 5), NOW)
        job = IngestionJob(
            topic, cluster.client("ingest"),
            default_extraction(cluster.config.attributes),
        )
        consumed = job.run_until_drained()
        assert consumed == 20
        assert job.lag() == 0
        cluster.run_background_cycle()
        client = cluster.client("reader")
        results = client.get_profile_topk(3, 2, 1, WINDOW)
        assert results and results[0].fid == 3

    def test_run_once_batch_size(self, cluster):
        topic = Topic("instance")
        for user in range(30):
            topic.produce(user, make_record(user=user), NOW)
        job = IngestionJob(
            topic, cluster.client("ingest"),
            default_extraction(cluster.config.attributes),
            batch_size=10,
        )
        assert job.run_once() == 10
        assert job.lag() == 20

    def test_end_to_end_join_then_ingest(self, cluster):
        """The full §III-A topology: events -> join -> topic -> IPS."""
        joiner = InstanceJoiner(window_ms=60_000)
        topic = Topic("instance", num_partitions=2)
        base = NOW - MILLIS_PER_HOUR
        for index in range(50):
            timestamp = base + index * 1000
            request = f"req-{index}"
            joiner.on_impression(
                ImpressionEvent(request, index % 5, index % 7, timestamp)
            )
            joiner.on_feature(
                FeatureEvent(request, index % 7, timestamp, {"slot": 1, "type": 0})
            )
            if index % 2 == 0:
                joiner.on_action(
                    ActionEvent(request, index % 5, index % 7, timestamp + 10, "click")
                )
            for record in joiner.advance_watermark(timestamp):
                topic.produce(record.user_id, record, record.timestamp_ms)
        for record in joiner.flush():
            topic.produce(record.user_id, record, record.timestamp_ms)
        job = IngestionJob(
            topic, cluster.client("ingest"),
            default_extraction(cluster.config.attributes),
        )
        job.run_until_drained()
        cluster.run_background_cycle()
        client = cluster.client("reader")
        results = client.get_profile_topk(0, 1, 0, TimeRange.current(2 * MILLIS_PER_HOUR))
        assert results  # User 0 saw several items.
        assert job.stats.write_failures == 0


class TestBatchImporter:
    def test_bulk_import_restores_isolation_state(self, cluster):
        # Nodes start with isolation on; flip one off to check restoration.
        some_node = next(iter(cluster.region.nodes.values()))
        some_node.set_isolation(False)
        writes = [
            ProfileWrite(user, NOW, 1, 0, user % 3, {"click": 1})
            for user in range(30)
        ]
        importer = BatchImporter(cluster)
        importer.run(iter(writes))
        assert importer.stats.records == 30
        assert importer.stats.failures == 0
        # The hot switch was restored.
        assert not some_node.isolation_enabled
        others = [
            node for node in cluster.region.nodes.values() if node is not some_node
        ]
        assert all(node.isolation_enabled for node in others)

    def test_imported_data_queryable_after_cycle(self, cluster):
        writes = [
            ProfileWrite(5, NOW - day * MILLIS_PER_DAY, 1, 0, day % 4, {"click": 1})
            for day in range(10)
        ]
        BatchImporter(cluster).run(iter(writes))
        cluster.run_background_cycle()
        client = cluster.client("reader")
        results = client.get_profile_topk(
            5, 1, 0, TimeRange.current(30 * MILLIS_PER_DAY)
        )
        assert len(results) == 4

    def test_batching_uses_add_profiles(self, cluster):
        writes = [
            ProfileWrite(1, NOW, 1, 0, fid, {"click": 1}) for fid in range(100)
        ]
        importer = BatchImporter(cluster, batch_size=30)
        importer.run(iter(writes))
        assert importer.stats.batches == 4  # ceil(100/30)
