"""Tests for the write-ahead log (framing, sync modes, damage handling)."""

import pytest

from repro.errors import StorageError
from repro.storage.wal import (
    FileLogFile,
    MemoryLogFile,
    WriteAheadLog,
)


class TestFraming:
    def test_append_replay_roundtrip(self):
        wal = WriteAheadLog(MemoryLogFile())
        sequences = [wal.append(f"payload-{i}".encode()) for i in range(5)]
        records, report = wal.replay()
        assert sequences == [1, 2, 3, 4, 5]
        assert [r.sequence for r in records] == sequences
        assert [r.payload for r in records] == [
            f"payload-{i}".encode() for i in range(5)
        ]
        assert report.torn_tail_bytes == 0
        assert report.corrupt_records == 0

    def test_sequences_continue_after_reopen(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file)
        wal.append(b"a")
        wal.append(b"b")
        reopened = WriteAheadLog(log_file)
        assert reopened.append(b"c") == 3
        records, _ = reopened.replay()
        assert [r.sequence for r in records] == [1, 2, 3]

    def test_empty_payload_allowed(self):
        wal = WriteAheadLog(MemoryLogFile())
        wal.append(b"")
        records, _ = wal.replay()
        assert records[0].payload == b""

    def test_rejects_unknown_sync_mode(self):
        with pytest.raises(StorageError):
            WriteAheadLog(MemoryLogFile(), sync="sometimes")

    def test_ensure_sequence_at_least_seeds_forward_only(self):
        """Restart seeding: an empty (checkpoint-truncated) log must not
        restart numbering below the checkpoint barrier."""
        wal = WriteAheadLog(MemoryLogFile())
        wal.ensure_sequence_at_least(10)
        assert wal.append(b"x") == 11
        wal.ensure_sequence_at_least(5)  # Never moves backwards.
        assert wal.append(b"y") == 12


class TestSyncModes:
    def test_always_mode_is_durable_per_append(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file, sync="always")
        wal.append(b"x")
        log_file.crash()
        records, _ = WriteAheadLog(log_file).replay()
        assert len(records) == 1

    def test_group_mode_loses_uncommitted_tail(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file, sync="group", group_size=100)
        wal.append(b"a")
        wal.append(b"b")
        log_file.crash()  # No commit barrier ran: both records volatile.
        records, _ = WriteAheadLog(log_file).replay()
        assert records == []

    def test_group_mode_commit_barrier(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file, sync="group", group_size=100)
        wal.append(b"a")
        wal.commit()
        wal.append(b"b")
        log_file.crash()
        records, _ = WriteAheadLog(log_file).replay()
        assert [r.payload for r in records] == [b"a"]

    def test_group_size_triggers_auto_commit(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file, sync="group", group_size=2)
        wal.append(b"a")
        wal.append(b"b")  # Second append crosses the group threshold.
        log_file.crash()
        records, _ = WriteAheadLog(log_file).replay()
        assert len(records) == 2

    def test_append_many_commits_once(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file, sync="group", group_size=100)
        wal.append_many([b"a", b"b", b"c"])
        log_file.crash()
        records, _ = WriteAheadLog(log_file).replay()
        assert len(records) == 3


class TestDamage:
    def test_torn_tail_truncated_at_open(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file)
        wal.append(b"good")
        log_file.append(b"\xff\x01torn")  # Partial record, never synced.
        log_file.fsync()  # ... but the OS flushed it before the crash.
        reopened = WriteAheadLog(log_file)
        records, report = reopened.replay()
        assert [r.payload for r in records] == [b"good"]
        assert report.torn_tail_bytes == 0  # Open-time repair removed it.
        # And a fresh append after the repair replays cleanly.
        reopened.append(b"after")
        records, _ = reopened.replay()
        assert [r.payload for r in records] == [b"good", b"after"]

    def test_bit_flip_stops_replay_at_crc(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file)
        wal.append(b"one")
        wal.append(b"two")
        data = bytearray(log_file.read_all())
        data[-1] ^= 0x40  # Corrupt record 2's payload.
        log_file.rewrite(bytes(data))
        records, report = wal.replay()
        assert [r.payload for r in records] == [b"one"]
        assert report.corrupt_records == 1

    def test_sequence_regression_stops_replay(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file)
        wal.append(b"a")
        log_file.append(log_file.read_all())  # Duplicate: sequence repeats.
        records, report = wal.replay()
        assert len(records) == 1
        assert report.corrupt_records == 1
        # A reopen repairs the file, so the next scan is clean.
        _, repaired = WriteAheadLog(log_file).replay()
        assert repaired.corrupt_records == 0


class TestTruncation:
    def test_truncate_through_drops_prefix(self):
        log_file = MemoryLogFile()
        wal = WriteAheadLog(log_file)
        for i in range(5):
            wal.append(f"r{i}".encode())
        assert wal.truncate_through(3) == 3
        records, _ = wal.replay()
        assert [r.sequence for r in records] == [4, 5]
        # New appends continue the global sequence.
        assert wal.append(b"next") == 6

    def test_truncate_everything(self):
        wal = WriteAheadLog(MemoryLogFile())
        wal.append(b"a")
        assert wal.truncate_through(1) == 1
        assert wal.pending_records() == 0


class TestMemoryLogFile:
    def test_crash_discards_unsynced_bytes(self):
        log_file = MemoryLogFile()
        log_file.append(b"durable")
        log_file.fsync()
        log_file.append(b"volatile")
        log_file.crash()
        assert log_file.read_all() == b"durable"
        assert log_file.crash_count == 1

    def test_rewrite_is_durable(self):
        log_file = MemoryLogFile()
        log_file.rewrite(b"snapshot")
        log_file.crash()
        assert log_file.read_all() == b"snapshot"


class TestFileLogFile:
    def test_roundtrip_on_disk(self, tmp_path):
        path = tmp_path / "node" / "wal.log"
        wal = WriteAheadLog(FileLogFile(path), sync="always")
        wal.append(b"persisted")
        wal.close()
        reopened = WriteAheadLog(FileLogFile(path))
        records, _ = reopened.replay()
        assert [r.payload for r in records] == [b"persisted"]
        reopened.close()

    def test_truncate_rewrites_atomically(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(FileLogFile(path))
        for i in range(4):
            wal.append(f"r{i}".encode())
        wal.truncate_through(2)
        wal.close()
        records, _ = WriteAheadLog(FileLogFile(path)).replay()
        assert [r.sequence for r in records] == [3, 4]
