"""Tests for the streaming pipeline templates (§V-a)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.ingest import advertising_pipeline, content_feed_pipeline
from repro.ingest.events import ActionEvent, FeatureEvent, ImpressionEvent
from repro.workload import EventStreamGenerator, WorkloadConfig

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(3 * MILLIS_PER_HOUR)


@pytest.fixture
def cluster():
    config = TableConfig(
        name="feed", attributes=("impression", "click", "like")
    )
    return IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))


class TestContentFeedTemplate:
    def test_end_to_end_through_template(self, cluster):
        pipeline = content_feed_pipeline(
            cluster.client("ingest"), cluster.config.attributes
        )
        generator = EventStreamGenerator(
            WorkloadConfig(num_users=50, num_items=200, seed=5)
        )
        span = MILLIS_PER_HOUR
        for triple in generator.impressions(500, NOW - span, span):
            pipeline.feed_events(*triple)
        pipeline.drain()
        cluster.run_background_cycle()
        stats = pipeline.stats
        assert stats.events_in > 500  # Impressions + features + actions.
        assert stats.instances_joined == 500
        assert stats.instances_ingested == 500
        assert stats.writes_issued > 0
        client = cluster.client("reader")
        found = any(
            client.get_profile_topk(0, slot, None, WINDOW, k=3)
            for slot in range(8)
        )
        assert found

    def test_tick_consumes_incrementally(self, cluster):
        pipeline = content_feed_pipeline(
            cluster.client("ingest"), cluster.config.attributes,
            join_window_ms=1000,
        )
        # Two requests far enough apart that the first join closes.
        first = ImpressionEvent("r1", 1, 10, NOW - 10_000)
        second = ImpressionEvent("r2", 1, 11, NOW)
        pipeline.feed_impression(first)
        pipeline.feed_impression(second)  # Watermark closes r1.
        assert pipeline.topic.total_messages() == 1
        assert pipeline.tick() == 1
        assert pipeline.job.lag() == 0


class TestAdvertisingTemplate:
    def test_conversion_events_flow(self, cluster):
        config = TableConfig(
            name="ads", attributes=("impression", "click", "conversion")
        )
        ads_cluster = IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))
        pipeline = advertising_pipeline(
            ads_cluster.client("ads-ingest"), config.attributes
        )
        timestamp = NOW - MILLIS_PER_HOUR
        pipeline.feed_impression(ImpressionEvent("r1", 1, 77, timestamp))
        pipeline.feed_feature(
            FeatureEvent("r1", 77, timestamp, {"slot": 2, "type": 0})
        )
        pipeline.feed_action(
            ActionEvent("r1", 1, 77, timestamp + 500, "click")
        )
        pipeline.feed_action(
            ActionEvent("r1", 1, 77, timestamp + 900, "conversion")
        )
        pipeline.drain()
        ads_cluster.run_background_cycle()
        client = ads_cluster.client("reader")
        rows = client.get_profile_topk(1, 2, 0, WINDOW, k=1)
        assert rows
        conversion_idx = config.attributes.index("conversion")
        assert rows[0].count(conversion_idx) == 1

    def test_shorter_default_join_window(self, cluster):
        feed = content_feed_pipeline(
            cluster.client("a"), cluster.config.attributes
        )
        ads = advertising_pipeline(
            cluster.client("b"), cluster.config.attributes
        )
        assert ads.joiner.window_ms < feed.joiner.window_ms
