"""Tests for the Consul-substitute discovery service."""

import pytest

from repro.clock import SimulatedClock
from repro.cluster.discovery import DiscoveryService


@pytest.fixture
def clock():
    return SimulatedClock(0)


class TestRegistration:
    def test_register_and_list(self, clock):
        discovery = DiscoveryService(clock, ttl_ms=10_000)
        discovery.register("n1", "us", "10.0.0.1:80")
        discovery.register("n2", "eu", "10.0.1.1:80")
        assert [r.node_id for r in discovery.healthy_instances()] == ["n1", "n2"]
        assert [r.node_id for r in discovery.healthy_instances("eu")] == ["n2"]

    def test_deregister(self, clock):
        discovery = DiscoveryService(clock)
        discovery.register("n1", "us")
        discovery.deregister("n1")
        assert discovery.healthy_instances() == []
        assert len(discovery) == 0

    def test_epoch_bumps_on_membership_change(self, clock):
        """Clients compare epochs to decide when to refresh (§III)."""
        discovery = DiscoveryService(clock)
        epoch_0 = discovery.epoch
        discovery.register("n1", "us")
        assert discovery.epoch > epoch_0
        epoch_1 = discovery.epoch
        discovery.deregister("n1")
        assert discovery.epoch > epoch_1

    def test_deregister_unknown_does_not_bump_epoch(self, clock):
        discovery = DiscoveryService(clock)
        epoch = discovery.epoch
        discovery.deregister("ghost")
        assert discovery.epoch == epoch

    def test_rejects_bad_ttl(self, clock):
        with pytest.raises(ValueError):
            DiscoveryService(clock, ttl_ms=0)


class TestTTL:
    def test_stale_node_drops_out_of_healthy_set(self, clock):
        discovery = DiscoveryService(clock, ttl_ms=5000)
        discovery.register("n1", "us")
        clock.advance(5001)
        assert discovery.healthy_instances() == []

    def test_heartbeat_keeps_node_alive(self, clock):
        discovery = DiscoveryService(clock, ttl_ms=5000)
        discovery.register("n1", "us")
        clock.advance(4000)
        assert discovery.heartbeat("n1")
        clock.advance(4000)
        assert [r.node_id for r in discovery.healthy_instances()] == ["n1"]

    def test_heartbeat_unknown_node_false(self, clock):
        assert not DiscoveryService(clock).heartbeat("ghost")

    def test_expire_stale_removes_records(self, clock):
        """A crashed node that never deregistered ages out entirely."""
        discovery = DiscoveryService(clock, ttl_ms=5000)
        discovery.register("n1", "us")
        discovery.register("n2", "us")
        clock.advance(3000)
        discovery.heartbeat("n2")
        clock.advance(3000)
        expired = discovery.expire_stale()
        assert expired == ["n1"]
        assert len(discovery) == 1
