"""Shared fixtures for the IPS reproduction test suite."""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import ShrinkConfig, TableConfig, TruncateConfig
from repro.core.engine import ProfileEngine
from repro.workload.zipf import ZipfGenerator

#: A fixed "now" far enough from the epoch that every query window and
#: compaction band fits comfortably before it.
NOW_MS = 400 * MILLIS_PER_DAY

# Hypothesis-based tests must draw the same examples on every run so the
# tier-1 suite is deterministic.
try:
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile("deterministic", derandomize=True)
    _hypothesis_settings.load_profile("deterministic")
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


def _seed_for(nodeid: str) -> int:
    """Stable per-test seed derived from the test's node id."""
    digest = hashlib.blake2b(nodeid.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@pytest.fixture(autouse=True)
def _deterministic_global_rng(request):
    """Reseed the module-level RNG per test.

    Any test (or code under test) that draws from the global ``random``
    module gets a reproducible stream, independent of execution order.
    """
    random.seed(_seed_for(request.node.nodeid))
    yield


@pytest.fixture
def rng(request) -> random.Random:
    """A private RNG seeded from the test's node id (always deterministic)."""
    return random.Random(_seed_for(request.node.nodeid))


@pytest.fixture
def make_zipf():
    """Factory for seeded Zipf samplers (keeps workload draws deterministic)."""

    def _make(n: int, s: float = 1.05, seed: int = 0) -> ZipfGenerator:
        return ZipfGenerator(n, s=s, seed=seed)

    return _make


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock(start_ms=NOW_MS)


@pytest.fixture
def table_config() -> TableConfig:
    return TableConfig(
        name="user_profile",
        attributes=("like", "comment", "share"),
    )


@pytest.fixture
def engine(table_config, clock) -> ProfileEngine:
    return ProfileEngine(table_config, clock)


@pytest.fixture
def shrink_config() -> ShrinkConfig:
    return ShrinkConfig.from_mapping(
        {1: 5, 2: 3},
        default_retain=10,
        attribute_weights={"like": 1.0, "comment": 2.0, "share": 3.0},
        freshness_half_life_ms=MILLIS_PER_DAY,
    )


@pytest.fixture
def truncate_config() -> TruncateConfig:
    return TruncateConfig(max_slices=100, max_age_ms=365 * MILLIS_PER_DAY)


@pytest.fixture
def process_tracker():
    """Track spawned worker processes; fail the test on orphan leakage.

    Tests that spawn :class:`repro.net.cluster.ProcessCluster` workers
    register each cluster here.  At teardown every tracked process must
    already be dead — any survivor is SIGKILLed (so one leaky test cannot
    poison the rest of the run) and the test then **fails**, naming the
    leaked workers.
    """
    clusters = []

    class _Tracker:
        def add(self, cluster):
            clusters.append(cluster)
            return cluster

    yield _Tracker()

    leaked = []
    for cluster in clusters:
        for node_id, proc in cluster.processes().items():
            if proc.poll() is None:
                leaked.append(f"{node_id} (pid {proc.pid})")
                proc.kill()
                proc.wait(timeout=10.0)
    if leaked:
        pytest.fail(
            "leaked worker processes (killed by process_tracker): "
            + ", ".join(leaked)
        )
