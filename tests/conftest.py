"""Shared fixtures for the IPS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import ShrinkConfig, TableConfig, TruncateConfig
from repro.core.engine import ProfileEngine

#: A fixed "now" far enough from the epoch that every query window and
#: compaction band fits comfortably before it.
NOW_MS = 400 * MILLIS_PER_DAY


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock(start_ms=NOW_MS)


@pytest.fixture
def table_config() -> TableConfig:
    return TableConfig(
        name="user_profile",
        attributes=("like", "comment", "share"),
    )


@pytest.fixture
def engine(table_config, clock) -> ProfileEngine:
    return ProfileEngine(table_config, clock)


@pytest.fixture
def shrink_config() -> ShrinkConfig:
    return ShrinkConfig.from_mapping(
        {1: 5, 2: 3},
        default_retain=10,
        attribute_weights={"like": 1.0, "comment": 2.0, "share": 3.0},
        freshness_half_life_ms=MILLIS_PER_DAY,
    )


@pytest.fixture
def truncate_config() -> TruncateConfig:
    return TruncateConfig(max_slices=100, max_age_ms=365 * MILLIS_PER_DAY)
