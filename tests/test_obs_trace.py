"""Tests for the request tracer: nesting, tags, no-op mode, slow log."""

import threading

import pytest

from repro.clock import SimulatedClock
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    render_span_tree,
)


class TestSpanNesting:
    def test_parenting_via_context_managers(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert tracer.roots == (root,)

    def test_durations_sum_consistently(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                sum(range(2000))
            with tracer.span("b"):
                sum(range(2000))
        children_ms = sum(child.duration_ms for child in root.children)
        assert root.duration_ms >= children_ms

    def test_clock_ms_uses_active_clock(self):
        clock = SimulatedClock(1000)
        tracer = Tracer(clock=clock)
        with tracer.span("op") as span:
            clock.advance(250)
        assert span.clock_ms == 250
        assert span.start_ms == 1000
        assert span.end_ms == 1250

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_tags_at_entry_and_after(self):
        tracer = Tracer()
        with tracer.span("op", node="n0") as span:
            span.tag(hits=3, misses=1)
        assert span.tags == {"node": "n0", "hits": 3, "misses": 1}

    def test_exception_marks_status_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("boom"):
                    raise RuntimeError("nope")
        root = tracer.roots[0]
        assert root.status == "error:RuntimeError"
        assert root.children[0].status == "error:RuntimeError"

    def test_iter_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        root = tracer.roots[0]
        assert len(list(root.iter_spans())) == 3
        assert len(root.find("leaf")) == 2

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(name):
            try:
                with tracer.span(name):
                    assert tracer.current().name == name
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Worker roots never attach under this thread's open span.
            assert tracer.current().name == "main"
        assert not errors
        assert len(tracer.roots) == 5


class TestNullTracer:
    def test_span_is_shared_noop(self):
        a = NULL_TRACER.span("x", key=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a as span:
            assert span.tag(anything=1) is span
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.slow_log == ()
        assert NULL_TRACER.take_roots() == []
        assert NullTracer.enabled is False
        assert Tracer.enabled is True


class TestRootBookkeeping:
    def test_roots_ring_is_bounded(self):
        tracer = Tracer(max_roots=3)
        for index in range(5):
            with tracer.span(f"op-{index}"):
                pass
        assert [root.name for root in tracer.roots] == ["op-2", "op-3", "op-4"]

    def test_take_roots_drains(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        roots = tracer.take_roots()
        assert len(roots) == 1
        assert tracer.roots == ()

    def test_root_durations_feed_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        for _ in range(3):
            with tracer.span("client.read"):
                pass
        hist = registry.get("trace_root_ms", span="client.read")
        assert hist.count == 3

    def test_slow_log_records_rendered_tree(self):
        clock = SimulatedClock(0)
        tracer = Tracer(clock=clock, slow_threshold_ms=100.0, max_slow_log=2)
        with tracer.span("fast"):
            pass
        assert tracer.slow_log == ()
        for index in range(3):
            with tracer.span(f"slow-{index}", attempt=index):
                with tracer.span("inner"):
                    clock.advance(500)
        # Bounded to the most recent two, rendered as indented trees.
        assert len(tracer.slow_log) == 2
        assert "slow-2" in tracer.slow_log[-1]
        assert "\n  inner" in tracer.slow_log[-1]
        assert "attempt=2" in tracer.slow_log[-1]


class TestRendering:
    def test_render_span_tree_shape(self):
        clock = SimulatedClock(0)
        tracer = Tracer(clock=clock)
        with tracer.span("root", node="n0") as root:
            with tracer.span("child"):
                clock.advance(7)
        text = render_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("root ")
        assert "node=n0" in lines[0]
        assert lines[1].startswith("  child ")
        assert "(clock 7ms)" in lines[1]

    def test_render_includes_trace_id_on_roots_only(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        lines = render_span_tree(root).splitlines()
        assert f"trace={root.trace_id}" in lines[0]
        assert "trace=" not in lines[1]


class _PerfSimClock(SimulatedClock):
    """Simulated clock whose perf source is the simulated time too, so
    span *durations* are deterministic clock deltas in tests."""

    def perf_ms(self) -> float:
        return float(self.now_ms())


class TestTraceIds:
    def test_roots_get_sequential_ids_children_none(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("child") as child:
                pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id == "t-00000001"
        assert b.trace_id == "t-00000002"
        assert child.trace_id is None

    def test_error_root_keeps_its_trace_id(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise RuntimeError("nope")
        assert tracer.roots[0].trace_id == "t-00000001"

    def test_null_tracer_has_no_trace_ids(self):
        span = NULL_TRACER.span("x")
        assert span.trace_id is None
        assert NULL_TRACER.current() is None


class TestExemplarToTraceLink:
    def test_max_bucket_exemplar_resolves_to_retained_trace(self):
        """The acceptance path: slow histogram bucket -> trace id ->
        tail-sampled span tree of that exact request."""
        from repro.obs.tail import TailSampler

        clock = _PerfSimClock(0)
        registry = MetricsRegistry()
        sampler = TailSampler(max_traces=8, registry=registry)
        tracer = Tracer(
            clock=clock, registry=registry, slow_threshold_ms=100.0,
            tail_sampler=sampler,
        )
        for duration in (5, 10, 250, 20):
            with tracer.span("client.read", duration=duration):
                with tracer.span("node.read"):
                    clock.advance(duration)

        hist = registry.get("trace_root_ms", span="client.read")
        trace_id, value = hist.max_exemplar()
        assert value == 250.0
        retained = sampler.get(trace_id)
        assert retained is not None
        assert sampler.reason(trace_id) == "slow"
        assert retained.tags["duration"] == 250
        assert retained.find("node.read")
        # The same request is the one in the slow log.
        assert len(tracer.slow_log) == 1
        assert f"trace={trace_id}" in tracer.slow_log[0]
        # Fast requests were offered but not retained.
        assert sampler.stats()["offered"] == 4
        assert len(sampler) == 1


class TestServedTags:
    def test_slow_log_distinguishes_cache_hit_from_leader(self):
        """Hot-path reads tag how they were served, and the tags reach
        the rendered slow-query log."""
        from repro.config import TableConfig
        from repro.core.query import SortType
        from repro.core.timerange import TimeRange
        from repro.server import CoalesceConfig, IPSNode
        from repro.storage import InMemoryKVStore

        clock = _PerfSimClock(1_000_000)
        # Threshold 0: every request lands in the slow log.
        tracer = Tracer(clock=clock, slow_threshold_ms=0.0)
        node = IPSNode(
            "hot",
            TableConfig(name="served", attributes=("click",)),
            InMemoryKVStore(),
            clock=clock,
            tracer=tracer,
            result_cache=32,
            coalesce=CoalesceConfig(window_ms=0.0),
        )
        node.add_profile(1, 999_000, 1, 0, 7, {"click": 3})
        node.merge_write_table()
        window = TimeRange.absolute(0, 1_000_001)

        node.get_profile_topk(1, 1, 0, window, SortType.TOTAL, k=5)
        node.get_profile_topk(1, 1, 0, window, SortType.TOTAL, k=5)
        # Setup (add_profile/merge) also produced roots; the reads are
        # the last two.
        leader, hit = tracer.roots[-2], tracer.roots[-1]
        assert leader.tags["served"] == "singleflight_leader"
        assert hit.tags["served"] == "result_cache"
        assert "served=singleflight_leader" in tracer.slow_log[-2]
        assert "served=result_cache" in tracer.slow_log[-1]
