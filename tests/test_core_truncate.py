"""Tests for truncation by count and by age (Fig. 11)."""

import pytest

from repro.clock import MILLIS_PER_DAY
from repro.config import TruncateConfig
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.core.truncate import truncate_by_age, truncate_by_count, truncate_profile

NOW = 400 * MILLIS_PER_DAY
SUM = get_aggregate("sum")


def profile_with_daily_writes(days):
    profile = ProfileData(1, 1000)
    for day in range(days):
        profile.add(NOW - day * MILLIS_PER_DAY, 1, 1, day, [1], SUM)
    return profile


class TestTruncateByCount:
    def test_keeps_newest_n(self):
        profile = profile_with_daily_writes(10)
        stats = truncate_by_count(profile, 5)
        assert profile.slice_count() == 5
        assert stats.slices_dropped == 5
        # The newest slices survive.
        assert profile.slices[0].contains(NOW)

    def test_noop_when_under_limit(self):
        profile = profile_with_daily_writes(3)
        stats = truncate_by_count(profile, 5)
        assert stats.slices_dropped == 0
        assert profile.slice_count() == 3

    def test_zero_keeps_nothing(self):
        profile = profile_with_daily_writes(3)
        truncate_by_count(profile, 0)
        assert profile.slice_count() == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            truncate_by_count(profile_with_daily_writes(1), -1)

    def test_stats_account_features_and_bytes(self):
        profile = profile_with_daily_writes(10)
        stats = truncate_by_count(profile, 4)
        assert stats.features_dropped == 6
        assert stats.bytes_dropped > 0


class TestTruncateByAge:
    def test_drops_entirely_old_slices(self):
        profile = profile_with_daily_writes(10)
        stats = truncate_by_age(profile, NOW, 5 * MILLIS_PER_DAY)
        # Days 0..4 survive (the day-5 write is 5 days old: its slice ends
        # just after the cutoff so it survives too; day 6+ are dropped).
        assert stats.slices_dropped >= 4
        assert all(s.end_ms > NOW - 5 * MILLIS_PER_DAY for s in profile.slices)

    def test_straddling_slice_kept_whole(self):
        profile = ProfileData(1, 10_000)
        profile.add(NOW - 5000, 1, 1, 1, [1], SUM)
        # Cutoff falls inside the slice: it must survive untouched.
        truncate_by_age(profile, NOW, 3000)
        assert profile.slice_count() == 1

    def test_noop_when_all_recent(self):
        profile = profile_with_daily_writes(3)
        stats = truncate_by_age(profile, NOW, 30 * MILLIS_PER_DAY)
        assert stats.slices_dropped == 0

    def test_rejects_nonpositive_age(self):
        with pytest.raises(ValueError):
            truncate_by_age(profile_with_daily_writes(1), NOW, 0)


class TestTruncateProfile:
    def test_applies_both_bounds(self):
        profile = profile_with_daily_writes(20)
        config = TruncateConfig(max_slices=5, max_age_ms=10 * MILLIS_PER_DAY)
        stats = truncate_profile(profile, config, NOW)
        assert profile.slice_count() == 5
        assert stats.slices_dropped == 15

    def test_disabled_config_is_noop(self):
        profile = profile_with_daily_writes(10)
        stats = truncate_profile(profile, TruncateConfig(), NOW)
        assert stats.slices_dropped == 0
        assert profile.slice_count() == 10

    def test_age_only(self):
        profile = profile_with_daily_writes(20)
        config = TruncateConfig(max_age_ms=7 * MILLIS_PER_DAY)
        truncate_profile(profile, config, NOW)
        assert all(
            s.end_ms > NOW - 7 * MILLIS_PER_DAY for s in profile.slices
        )

    def test_ordering_preserved(self):
        profile = profile_with_daily_writes(20)
        truncate_profile(profile, TruncateConfig(max_slices=7), NOW)
        profile.invariant_check()
