"""Tests for the composed IPS node: writes, reads, isolation, cache plumbing."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import QuotaExceededError
from repro.server.node import IPSNode
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def clock():
    return SimulatedClock(NOW)


def make_node(clock, isolation=True, fine_grained=False, **kwargs):
    config = TableConfig(
        name="t",
        attributes=("click", "like"),
        fine_grained_persistence=fine_grained,
    )
    return IPSNode(
        "node-0", config, InMemoryKVStore(), clock=clock,
        isolation_enabled=isolation, **kwargs,
    )


WINDOW = TimeRange.current(MILLIS_PER_DAY)


class TestIsolationPath:
    def test_write_is_invisible_until_merge(self, clock):
        node = make_node(clock, isolation=True)
        node.add_profile(1, NOW, 1, 1, 42, {"click": 1})
        assert node.get_profile_topk(1, 1, 1, WINDOW) == []
        node.merge_write_table()
        results = node.get_profile_topk(1, 1, 1, WINDOW)
        assert results[0].fid == 42

    def test_direct_path_when_isolation_off(self, clock):
        node = make_node(clock, isolation=False)
        node.add_profile(1, NOW, 1, 1, 42, {"click": 1})
        assert node.get_profile_topk(1, 1, 1, WINDOW)[0].fid == 42
        assert node.stats.writes_direct == 1
        assert node.stats.writes_isolated == 0

    def test_hot_switch_drains_on_disable(self, clock):
        node = make_node(clock, isolation=True)
        node.add_profile(1, NOW, 1, 1, 42, {"click": 1})
        node.set_isolation(False)
        assert node.get_profile_topk(1, 1, 1, WINDOW)[0].fid == 42
        assert not node.isolation_enabled

    def test_write_table_overflow_falls_back_to_direct(self, clock):
        node = make_node(clock, isolation=True, write_table_limit_bytes=300)
        for fid in range(50):
            node.add_profile(1, NOW, 1, 1, fid, {"click": 1})
        assert node.stats.writes_direct > 0
        assert node.stats.writes_isolated > 0

    def test_batched_write_through_isolation(self, clock):
        node = make_node(clock, isolation=True)
        node.add_profiles(1, NOW, 1, 1, [10, 20], [{"click": 1}, {"click": 2}])
        node.merge_write_table()
        results = node.get_profile_topk(
            1, 1, 1, WINDOW, SortType.ATTRIBUTE, k=5, sort_attribute="click"
        )
        assert [r.fid for r in results] == [20, 10]

    def test_merge_applies_aggregate(self, clock):
        node = make_node(clock, isolation=True)
        node.add_profile(1, NOW, 1, 1, 42, {"click": 1})
        node.add_profile(1, NOW, 1, 1, 42, {"click": 2})
        node.merge_write_table()
        results = node.get_profile_topk(1, 1, 1, WINDOW)
        assert results[0].counts[0] == 3


class TestCachePlumbing:
    def test_eviction_then_read_reloads_from_store(self, clock):
        node = make_node(
            clock, isolation=False, cache_capacity_bytes=20_000,
            swap_threshold=0.5, swap_target=0.2,
        )
        for profile_id in range(60):
            node.add_profile(profile_id, NOW, 1, 1, profile_id, {"click": 1})
        node.run_cache_cycle()
        evicted = [
            profile_id for profile_id in range(60)
            if node.cache.get_resident(profile_id) is None
        ]
        assert evicted, "swap should have evicted something"
        victim = evicted[0]
        # Engine table was kept in sync by the eviction callback.
        assert node.engine.table.get(victim) is None
        results = node.get_profile_topk(victim, 1, 1, WINDOW)
        assert results[0].fid == victim

    def test_shutdown_makes_all_writes_durable(self, clock):
        node = make_node(clock, isolation=True)
        for profile_id in range(10):
            node.add_profile(profile_id, NOW, 1, 1, 7, {"click": 1})
        node.shutdown()
        # A fresh node over the same store sees everything.
        fresh = IPSNode(
            "node-1", node.engine.config,
            node.persistence._store if hasattr(node.persistence, "_store") else None,
            clock=clock,
        )
        results = fresh.get_profile_topk(3, 1, 1, WINDOW)
        assert results and results[0].fid == 7

    def test_fine_grained_persistence_mode(self, clock):
        node = make_node(clock, isolation=False, fine_grained=True)
        node.add_profile(1, NOW, 1, 1, 42, {"click": 1})
        node.shutdown()
        from repro.storage.persistence import FineGrainedPersistence

        assert isinstance(node.persistence, FineGrainedPersistence)
        assert node.persistence.load(1) is not None


class TestQuotas:
    def test_quota_rejection_on_reads_and_writes(self, clock):
        node = make_node(clock, isolation=False)
        node.quota.set_quota("greedy", qps=10, burst=2)
        node.add_profile(1, NOW, 1, 1, 1, {"click": 1}, caller="greedy")
        node.get_profile_topk(1, 1, 1, WINDOW, caller="greedy")
        with pytest.raises(QuotaExceededError):
            node.get_profile_topk(1, 1, 1, WINDOW, caller="greedy")

    def test_stats_count_reads_and_writes(self, clock):
        node = make_node(clock, isolation=False)
        node.add_profile(1, NOW, 1, 1, 1, {"click": 1})
        node.get_profile_topk(1, 1, 1, WINDOW)
        node.get_profile_filter(1, 1, 1, WINDOW, lambda s: True)
        node.get_profile_decay(1, 1, 1, WINDOW)
        assert node.stats.writes == 1
        assert node.stats.reads == 3


class TestMaintenanceIntegration:
    def test_node_maintenance_compacts_old_profiles(self, clock):
        node = make_node(clock, isolation=False)
        node.engine.maintenance_slice_threshold = 4
        for hour in range(48):
            node.add_profile(1, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour, {"click": 1})
        before = node.engine.table.get(1).slice_count()
        reports = node.run_maintenance()
        assert reports
        assert node.engine.table.get(1).slice_count() < before
