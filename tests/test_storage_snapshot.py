"""Tests for table snapshot export/import."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.errors import SerializationError
from repro.server.node import IPSNode
from repro.storage import InMemoryKVStore
from repro.storage.snapshot import export_table, import_table, read_snapshot

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def populated_store():
    """A store holding 20 flushed profiles of table 't'."""
    store = InMemoryKVStore()
    config = TableConfig(name="t", attributes=("click",))
    node = IPSNode("n0", config, store, clock=SimulatedClock(NOW))
    for profile_id in range(20):
        node.add_profile(profile_id, NOW, 1, 0, profile_id % 5, {"click": 2})
    node.shutdown()
    return store


class TestExport:
    def test_exports_every_profile(self, populated_store, tmp_path):
        path = tmp_path / "t.snapshot"
        assert export_table(populated_store, "t", path) == 20
        assert path.stat().st_size > 0

    def test_only_named_table_is_exported(self, populated_store, tmp_path):
        # Add another table's profile to the same store.
        config = TableConfig(name="other", attributes=("click",))
        node = IPSNode("n1", config, populated_store, clock=SimulatedClock(NOW))
        node.add_profile(99, NOW, 1, 0, 1, {"click": 1})
        node.shutdown()
        path = tmp_path / "t.snapshot"
        assert export_table(populated_store, "t", path) == 20

    def test_empty_table_exports_zero(self, tmp_path):
        path = tmp_path / "empty.snapshot"
        assert export_table(InMemoryKVStore(), "t", path) == 0
        table, profiles = read_snapshot(path)
        assert table == "t"
        assert list(profiles) == []


class TestRoundTrip:
    def test_read_snapshot_yields_profiles(self, populated_store, tmp_path):
        path = tmp_path / "t.snapshot"
        export_table(populated_store, "t", path)
        table, profiles = read_snapshot(path)
        assert table == "t"
        decoded = list(profiles)
        assert len(decoded) == 20
        assert {profile.profile_id for profile in decoded} == set(range(20))
        assert all(profile.feature_count() == 1 for profile in decoded)

    def test_import_into_fresh_cluster(self, populated_store, tmp_path):
        path = tmp_path / "t.snapshot"
        export_table(populated_store, "t", path)
        fresh_store = InMemoryKVStore()
        assert import_table(fresh_store, path) == 20
        config = TableConfig(name="t", attributes=("click",))
        node = IPSNode("n0", config, fresh_store, clock=SimulatedClock(NOW))
        results = node.get_profile_topk(7, 1, 0, WINDOW, k=5)
        assert results and results[0].counts == (2,)

    def test_import_with_rename(self, populated_store, tmp_path):
        path = tmp_path / "t.snapshot"
        export_table(populated_store, "t", path)
        fresh_store = InMemoryKVStore()
        import_table(fresh_store, path, table="experiment")
        config = TableConfig(name="experiment", attributes=("click",))
        node = IPSNode("n0", config, fresh_store, clock=SimulatedClock(NOW))
        assert node.get_profile_topk(3, 1, 0, WINDOW, k=1)


class TestCorruption:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\x01\x02\x03")
        with pytest.raises(SerializationError):
            read_snapshot(path)

    def test_truncated_record_rejected(self, populated_store, tmp_path):
        path = tmp_path / "t.snapshot"
        export_table(populated_store, "t", path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        _, profiles = read_snapshot(path)
        with pytest.raises(SerializationError):
            list(profiles)
