"""Tests for the unified metrics registry (counters, gauges, histograms)."""

import json
import random

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    unescape_label_value,
)
from repro.sim.metrics import percentile as brute_force_percentile
from repro.tools.dashboard import parse_exposition


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_quantile_accuracy_vs_brute_force_oracle(self):
        """Histogram quantiles must land within one growth factor of the
        exact value computed from the raw samples."""
        rng = random.Random(5)
        growth = 1.05
        hist = Histogram(min_ms=0.01, max_ms=60_000.0, growth=growth)
        samples = [rng.lognormvariate(2.0, 1.2) for _ in range(20_000)]
        hist.record_many(samples)
        for q in (10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = brute_force_percentile(samples, q)
            approx = hist.percentile(q)
            # Upper-edge estimate: at most one growth step above the exact
            # value, never more than one step below.
            assert approx <= exact * growth * growth
            assert approx >= exact / growth

    def test_power_of_two_buckets_are_exact_for_counts(self):
        hist = Histogram(min_ms=1.0, max_ms=1024.0, growth=2.0)
        for value in (1, 2, 3, 8, 100, 1024):
            hist.record(value)
        assert hist.count == 6
        # count_le has one-bucket resolution; probe between bucket edges.
        assert hist.count_le(0.5) == 0
        assert hist.count_le(5) == 3  # 1, 2, 3
        assert hist.count_le(2048) == 6
        assert hist.max == 1024

    def test_summary_and_properties(self):
        hist = Histogram()
        hist.record_many([1.0, 2.0, 3.0, 4.0])
        assert hist.count == 4
        assert hist.sum == pytest.approx(10.0)
        assert hist.mean == pytest.approx(2.5)
        summary = hist.summary()
        assert summary["count"] == 4.0
        assert {"p50", "p95", "p99", "max", "mean"} <= set(summary)

    def test_empty_histogram(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.quantile(0.5)
        assert hist.summary() == {"count": 0.0, "sum": 0.0}

    def test_merge(self):
        a = Histogram()
        b = Histogram()
        a.record_many([1.0, 2.0])
        b.record_many([3.0, 400.0])
        a.merge(b)
        assert a.count == 4
        assert a.max == 400.0

    def test_merge_incompatible_layouts(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(min_ms=1.0, max_ms=10.0, growth=2.0))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Histogram(min_ms=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            Histogram().record(-1.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("reqs", region="eu")
        second = registry.counter("reqs", region="eu")
        assert first is second
        other = registry.counter("reqs", region="us")
        assert other is not first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_get_without_create(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        registry.gauge("mem", node="n0").set(5)
        assert registry.get("mem", node="n0").value == 5.0
        assert registry.get("mem", node="n1") is None

    def test_families_listing(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.histogram("a")
        assert registry.families() == [("a", "histogram"), ("b", "counter")]

    def test_text_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", region="eu").inc(3)
        hist = registry.histogram("read_ms", caller="app")
        hist.record_many([0.2, 1.5, 7.0, 80.0])
        text = registry.render_text()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{region="eu"} 3' in text
        assert "# TYPE read_ms histogram" in text
        assert 'read_ms_bucket{caller="app",le="+Inf"} 4' in text
        assert 'read_ms_count{caller="app"} 4' in text
        assert 'read_ms{caller="app",quantile="0.5"}' in text
        # Cumulative bucket counts never decrease along the edges.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("read_ms_bucket")
        ]
        assert counts == sorted(counts)

    def test_json_export(self):
        registry = MetricsRegistry()
        registry.gauge("mem").set(0.5)
        registry.histogram("lat").record(2.0)
        data = json.loads(registry.to_json())
        assert data["mem"]["type"] == "gauge"
        assert data["mem"]["metrics"][0]["value"] == 0.5
        assert data["lat"]["metrics"][0]["count"] == 1.0
        assert "p99" in data["lat"]["metrics"][0]

    def test_sim_metrics_reexports_same_class(self):
        """Exactly one histogram implementation in the codebase."""
        from repro.sim.metrics import LatencyHistogram

        assert LatencyHistogram is Histogram


NASTY = 'back\\slash "quoted"\nnewline'


class TestLabelEscaping:
    def test_escape_round_trip(self):
        escaped = escape_label_value(NASTY)
        assert "\n" not in escaped
        assert '\\"' in escaped and "\\\\" in escaped and "\\n" in escaped
        assert unescape_label_value(escaped) == NASTY

    def test_unescape_leaves_unknown_sequences(self):
        assert unescape_label_value("a\\tb") == "a\\tb"

    def test_exposition_round_trips_nasty_labels(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", path=NASTY).inc(7)
        text = registry.render_text()
        # Every sample stays one line despite the embedded newline.
        assert all(
            line.startswith(("#", "reqs_total")) for line in text.splitlines()
        )
        parsed = parse_exposition(text)
        (entry,) = parsed["reqs_total"]["metrics"]
        assert entry["labels"] == {"path": NASTY}
        assert entry["value"] == 7.0


class TestExpositionStrictness:
    def test_help_and_type_exactly_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", region="eu").inc()
        registry.counter("reqs_total", region="us").inc()
        registry.describe("reqs_total", "requests by region")
        text = registry.render_text()
        assert text.count("# TYPE reqs_total ") == 1
        assert text.count("# HELP reqs_total ") == 1
        # The strict parser accepts it and surfaces the help text.
        parsed = parse_exposition(text)
        assert parsed["reqs_total"]["help"] == "requests by region"
        assert len(parsed["reqs_total"]["metrics"]) == 2

    def test_parser_rejects_duplicate_type_and_help(self):
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x counter\n# TYPE x counter\nx 1")
        with pytest.raises(ValueError):
            parse_exposition("# HELP x a\n# HELP x b\nx 1")

    def test_describe_unknown_family_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().describe("ghost", "boo")


class TestExemplars:
    def test_record_keeps_newest_per_bucket_bounded(self):
        hist = Histogram(min_ms=1.0, max_ms=1024.0, growth=2.0)
        hist.record(5.0, trace_id="t-00000001")
        hist.record(5.2, trace_id="t-00000002")  # same bucket: replaces
        hist.record(500.0, trace_id="t-00000003")
        hist.record(1.0)  # no trace id: no exemplar slot
        assert hist.exemplar_count() == 2
        exemplars = hist.exemplars()
        assert [trace for _, trace, _ in exemplars] == [
            "t-00000002", "t-00000003"
        ]
        assert hist.max_exemplar() == ("t-00000003", 500.0)
        assert hist.exemplar_in_range(100.0, 1000.0) == ("t-00000003", 500.0)
        assert hist.exemplar_in_range(1000.0, 2000.0) is None

    def test_exposition_carries_exemplars_and_round_trips(self):
        registry = MetricsRegistry()
        hist = registry.histogram("read_ms", caller="app")
        hist.observe(3.0, trace_id="t-00000007")
        hist.observe(900.0, trace_id="t-00000008")
        text = registry.render_text()
        assert '# {trace_id="t-00000008"} 900' in text
        parsed = parse_exposition(text)
        (entry,) = parsed["read_ms"]["metrics"]
        traces = {ex["trace_id"] for ex in entry["exemplars"]}
        assert traces == {"t-00000007", "t-00000008"}
        for exemplar in entry["exemplars"]:
            assert float(exemplar["le"]) >= exemplar["value"]

    def test_json_export_includes_exemplars(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(2.0, trace_id="t-00000001")
        data = json.loads(registry.to_json())
        (entry,) = data["lat"]["metrics"]
        assert entry["exemplars"] == [
            {"le": entry["exemplars"][0]["le"], "trace_id": "t-00000001",
             "value": 2.0}
        ]
