"""Every example in examples/ must run cleanly end to end.

The examples are part of the public deliverable; running them as
subprocesses keeps them from rotting as the API evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_to_completion(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{example} failed:\nstdout:\n{completed.stdout}\n"
        f"stderr:\n{completed.stderr}"
    )
    assert "OK" in completed.stdout, f"{example} did not print its OK line"
