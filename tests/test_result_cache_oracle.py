"""Differential invalidation oracle for the server-side result cache.

Two nodes share one simulated clock: one runs the full hot-read path
(result cache + singleflight + batch windows), the other runs bare.  A
seeded plan interleaves every write path the node has — direct puts,
batched puts, ingestion applies, isolation merges, full and partial
maintenance (compaction / truncation), cache cycles, checkpoints, crash +
recovery — and after every step a battery of reads (top-K across sort
types, decay, filter, over CURRENT / RELATIVE / ABSOLUTE windows) must be
*byte-identical* between the two nodes, with the cached node read twice
so the second read is served from the cache whenever the query is
cacheable.

If any mutation path missed its invalidation hook, the cached node would
keep serving the pre-mutation result and the oracle trips.  The teeth
tests prove the oracle has teeth: deliberately unhooking an invalidation
seam makes it fail.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig, TruncateConfig
from repro.core.query import SortType, cacheable_filter
from repro.core.timerange import TimeRange
from repro.ingest import IngestionJob, InstanceRecord, Topic, default_extraction
from repro.server import CoalesceConfig, IPSNode, attach_memory_durability
from repro.storage import InMemoryKVStore

NOW_MS = 400 * MILLIS_PER_DAY

ATTRIBUTES = ("like", "comment", "share")
PROFILE_IDS = (1, 2, 3, 7)


@cacheable_filter(("likes_at_least", 2))
def _likes_at_least_two(stat):
    return stat.counts[0] >= 2


def _opaque_filter(stat):  # Deliberately unmarked: uncacheable.
    return sum(stat.counts) >= 3


def _table_config() -> TableConfig:
    # Truncation makes maintenance lossy, so a missed maintenance-path
    # invalidation changes real results (compaction alone preserves sums).
    return TableConfig(
        name="oracle",
        attributes=ATTRIBUTES,
        truncate=TruncateConfig(max_slices=200, max_age_ms=10 * MILLIS_PER_DAY),
    )


def _make_node(clock: SimulatedClock, cached: bool, durable: bool) -> IPSNode:
    node = IPSNode(
        "cached" if cached else "plain",
        _table_config(),
        InMemoryKVStore(),
        clock=clock,
        cache_capacity_bytes=4 * 1024 * 1024,
        result_cache=512 if cached else None,
        coalesce=CoalesceConfig(window_ms=0.0) if cached else None,
    )
    if durable:
        attach_memory_durability(node, checkpoint_interval_records=64)
    return node


class _NodeIngestClient:
    """Adapter giving IngestionJob the client surface over one node."""

    def __init__(self, node: IPSNode) -> None:
        self._node = node

    def add_profile(self, profile_id, timestamp_ms, slot, type_id, fid, counts):
        self._node.add_profile(
            profile_id, timestamp_ms, slot, type_id, fid, counts,
            caller="ingest",
        )
        return 1


# ----------------------------------------------------------------------
# The seeded interleaving plan
# ----------------------------------------------------------------------


def _random_write(rng: random.Random, now_ms: int) -> tuple:
    return (
        rng.choice(PROFILE_IDS),
        now_ms - rng.randrange(12 * MILLIS_PER_DAY),
        rng.randrange(2),
        rng.randrange(2),
        rng.randrange(40),
        {attr: rng.randrange(1, 5) for attr in rng.sample(ATTRIBUTES, 2)},
    )


_REQUIRED_OPS = (
    "put", "put_many", "ingest", "merge", "maintain_full",
    "maintain_partial", "cache_cycle", "checkpoint", "crash_revert",
)


def _make_op(op: str, rng: random.Random, now_ms: int) -> tuple:
    if op == "put":
        return ("put", _random_write(rng, now_ms))
    if op == "put_many":
        profile_id = rng.choice(PROFILE_IDS)
        timestamp = now_ms - rng.randrange(8 * MILLIS_PER_DAY)
        fids = rng.sample(range(40), rng.randrange(2, 6))
        counts = [
            {attr: rng.randrange(1, 4) for attr in ATTRIBUTES} for _ in fids
        ]
        return (
            "put_many",
            (profile_id, timestamp, rng.randrange(2), rng.randrange(2),
             fids, counts),
        )
    if op == "ingest":
        records = [
            InstanceRecord(
                request_id=f"r{rng.randrange(10**6)}",
                user_id=rng.choice(PROFILE_IDS),
                item_id=rng.randrange(40),
                timestamp_ms=now_ms - rng.randrange(5 * MILLIS_PER_DAY),
                actions={
                    attr: rng.randrange(1, 3)
                    for attr in rng.sample(ATTRIBUTES, 1)
                },
                signals={"slot": rng.randrange(2), "type": rng.randrange(2)},
            )
            for _ in range(rng.randrange(1, 4))
        ]
        return ("ingest", tuple(records))
    return (op, None)


def _build_plan(rng: random.Random, steps: int) -> list[tuple]:
    """A concrete op list (no randomness left) applied to both nodes."""
    ops = [
        "put", "put", "put", "put_many", "put_many", "ingest", "merge",
        "merge", "maintain_full", "maintain_partial", "cache_cycle",
        "checkpoint", "crash_revert", "advance_clock",
    ]
    plan: list[tuple] = []
    now_ms = NOW_MS
    for _ in range(steps):
        op = rng.choice(ops)
        if op == "advance_clock":
            delta = rng.randrange(1, 18) * MILLIS_PER_HOUR
            now_ms += delta
            plan.append(("advance_clock", delta))
        else:
            plan.append(_make_op(op, rng, now_ms))
    # Every op class must appear, whatever the draw — otherwise the oracle
    # silently proves less than it claims.
    exercised = {op for op, _ in plan}
    for op in _REQUIRED_OPS:
        if op not in exercised:
            plan.insert(rng.randrange(len(plan) + 1), _make_op(op, rng, now_ms))
    return plan


def _apply(node: IPSNode, op: str, arg) -> None:
    if op == "put":
        node.add_profile(*arg)
    elif op == "put_many":
        node.add_profiles(*arg)
    elif op == "ingest":
        topic = Topic("instances", num_partitions=2)
        for record in arg:
            topic.produce(record.user_id, record, record.timestamp_ms)
        job = IngestionJob(
            topic, _NodeIngestClient(node), default_extraction(ATTRIBUTES)
        )
        job.run_until_drained()
    elif op == "merge":
        node.merge_write_table()
    elif op == "maintain_full":
        node.run_maintenance(full=True)
    elif op == "maintain_partial":
        node.run_maintenance(full=False)
    elif op == "cache_cycle":
        node.run_cache_cycle()
    elif op == "checkpoint":
        node.checkpoint()
    elif op == "crash_revert":
        # The chaos engine's node_crash fault followed by its revert:
        # RPCNodeProxy.crash() -> node.crash(), restart() -> node.recover().
        node.crash()
        node.recover()
    elif op != "advance_clock":  # pragma: no cover - plan/apply drift guard
        raise AssertionError(f"unknown op {op}")


# ----------------------------------------------------------------------
# The read battery
# ----------------------------------------------------------------------


def _query_battery():
    """(name, callable(node, profile_id)) pairs covering the read APIs."""
    current_2d = TimeRange.current(2 * MILLIS_PER_DAY)
    current_7d = TimeRange.current(7 * MILLIS_PER_DAY)
    relative_3d = TimeRange.relative(3 * MILLIS_PER_DAY)
    full_window = TimeRange.absolute(0, NOW_MS + 400 * MILLIS_PER_DAY)
    return [
        (
            "topk_total_full",
            lambda node, pid: node.get_profile_topk(
                pid, 1, 0, full_window, SortType.TOTAL, 10
            ),
        ),
        (
            "topk_attr_current",
            lambda node, pid: node.get_profile_topk(
                pid, 1, 0, current_2d, SortType.ATTRIBUTE, 5,
                sort_attribute="like",
            ),
        ),
        (
            "topk_weighted_current",
            lambda node, pid: node.get_profile_topk(
                pid, 0, None, current_7d, SortType.WEIGHTED, 8,
                sort_weights={"share": 3, "like": 1},
            ),
        ),
        (
            "topk_explicit_default_aggregate",
            lambda node, pid: node.get_profile_topk(
                pid, 1, 0, full_window, SortType.FEATURE_ID, 6, aggregate="sum"
            ),
        ),
        (
            "decay_exponential_relative",
            lambda node, pid: node.get_profile_decay(
                pid, 1, 0, relative_3d, "exponential", MILLIS_PER_DAY / 2.0
            ),
        ),
        (
            "decay_linear_attr",
            lambda node, pid: node.get_profile_decay(
                pid, 0, None, current_7d, "linear", 5 * MILLIS_PER_DAY,
                k=5, sort_attribute="comment",
            ),
        ),
        (
            "filter_cacheable",
            lambda node, pid: node.get_profile_filter(
                pid, 1, 0, current_7d, _likes_at_least_two
            ),
        ),
        (
            "filter_opaque",
            lambda node, pid: node.get_profile_filter(
                pid, 0, None, full_window, _opaque_filter
            ),
        ),
    ]


def _assert_reads_identical(cached: IPSNode, plain: IPSNode, step: str) -> None:
    """Every battery read, byte-identical, cached node read twice."""
    for name, query in _query_battery():
        for profile_id in PROFILE_IDS:
            expected = query(plain, profile_id)
            first = query(cached, profile_id)
            second = query(cached, profile_id)  # Cache-hit path when cacheable.
            assert repr(first) == repr(expected), (
                f"{step}: {name}(profile={profile_id}) diverged on first "
                f"read:\n  cached={first!r}\n  plain ={expected!r}"
            )
            assert repr(second) == repr(expected), (
                f"{step}: {name}(profile={profile_id}) diverged on cached "
                f"re-read:\n  cached={second!r}\n  plain ={expected!r}"
            )


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("durable", [True, False], ids=["wal", "no-wal"])
def test_oracle_all_mutation_paths(rng, durable):
    """Seeded interleavings of every write path stay byte-identical."""
    clock = SimulatedClock(start_ms=NOW_MS)
    cached = _make_node(clock, cached=True, durable=durable)
    plain = _make_node(clock, cached=False, durable=durable)
    plan = _build_plan(rng, steps=50)
    exercised = {op for op, _ in plan}
    assert set(_REQUIRED_OPS) <= exercised

    for index, (op, arg) in enumerate(plan):
        if op == "advance_clock":
            clock.advance(arg)
        else:
            _apply(cached, op, arg)
            _apply(plain, op, arg)
        _assert_reads_identical(cached, plain, step=f"step {index} ({op})")

    # The run must have exercised the cache for the comparison to mean
    # anything: hits come from the double reads, invalidations from writes.
    stats = cached.result_cache.stats
    assert stats.hits > 0
    assert stats.installs > 0
    assert stats.invalidations > 0
    assert stats.uncacheable > 0  # The opaque filter bypassed the cache.


def test_oracle_many_seeds():
    """Shorter interleavings across independent seeds."""
    for seed in range(5):
        clock = SimulatedClock(start_ms=NOW_MS)
        cached = _make_node(clock, cached=True, durable=True)
        plain = _make_node(clock, cached=False, durable=True)
        for index, (op, arg) in enumerate(
            _build_plan(random.Random(seed), steps=20)
        ):
            if op == "advance_clock":
                clock.advance(arg)
            else:
                _apply(cached, op, arg)
                _apply(plain, op, arg)
            _assert_reads_identical(
                cached, plain, step=f"seed {seed} step {index} ({op})"
            )


# ----------------------------------------------------------------------
# Teeth: a deliberately skipped hook must be caught
# ----------------------------------------------------------------------


def test_oracle_teeth_write_hook_removed():
    """Unhooking GCache's invalidation seam makes the oracle trip."""
    clock = SimulatedClock(start_ms=NOW_MS)
    cached = _make_node(clock, cached=True, durable=False)
    plain = _make_node(clock, cached=False, durable=False)
    write = (1, NOW_MS - MILLIS_PER_HOUR, 1, 0, 5, {"like": 3})
    for node in (cached, plain):
        _apply(node, "put", write)
        _apply(node, "merge", None)
    _assert_reads_identical(cached, plain, step="warmup")

    cached.cache.set_invalidation_hook(None)  # The deliberate bug.
    newer = (1, NOW_MS, 1, 0, 5, {"like": 40, "share": 7})
    for node in (cached, plain):
        _apply(node, "put", newer)
        _apply(node, "merge", None)
    with pytest.raises(AssertionError, match="diverged"):
        _assert_reads_identical(cached, plain, step="unhooked write")


def test_oracle_teeth_maintenance_hook_removed():
    """Unhooking the engine's maintenance listener makes the oracle trip.

    Truncation during maintenance drops out-of-retention slices, so a
    cached wide-window read that survives maintenance is provably stale.
    """
    clock = SimulatedClock(start_ms=NOW_MS)
    cached = _make_node(clock, cached=True, durable=False)
    plain = _make_node(clock, cached=False, durable=False)
    old = (2, NOW_MS - 9 * MILLIS_PER_DAY, 1, 0, 7, {"comment": 9})
    fresh = (2, NOW_MS - MILLIS_PER_HOUR, 1, 0, 8, {"like": 1})
    for node in (cached, plain):
        _apply(node, "put", old)
        _apply(node, "put", fresh)
        _apply(node, "merge", None)
    _assert_reads_identical(cached, plain, step="warmup")

    cached.engine._mutation_listeners.clear()  # The deliberate bug.
    clock.advance(2 * MILLIS_PER_DAY)  # The old write leaves retention.
    for node in (cached, plain):
        node.engine._maintenance_pending.add(2)
        _apply(node, "maintain_full", None)
    with pytest.raises(AssertionError, match="diverged"):
        _assert_reads_identical(cached, plain, step="unhooked maintenance")
