"""Tests for the sharded LRU list (§III-C, Figs. 7-8)."""

import threading

import pytest

from repro.cache.lru import LRUShard, ShardedLRU


class TestLRUShard:
    def test_touch_inserts_and_accounts_bytes(self):
        shard = LRUShard(0)
        shard.touch(1, 100)
        shard.touch(2, 50)
        assert len(shard) == 2
        assert shard.size_bytes == 150

    def test_touch_refreshes_recency(self):
        shard = LRUShard(0)
        shard.touch(1, 10)
        shard.touch(2, 10)
        shard.touch(1, 10)  # 1 becomes most recent.
        popped = shard.pop_lru()
        assert popped == (2, 10)

    def test_touch_replaces_cost(self):
        shard = LRUShard(0)
        shard.touch(1, 100)
        shard.touch(1, 40)
        assert shard.size_bytes == 40

    def test_update_cost_keeps_recency(self):
        shard = LRUShard(0)
        shard.touch(1, 10)
        shard.touch(2, 10)
        assert shard.update_cost(1, 99)
        assert shard.size_bytes == 109
        # 1 is still the LRU entry despite the cost update.
        assert shard.pop_lru() == (1, 99)

    def test_update_cost_missing_returns_false(self):
        assert not LRUShard(0).update_cost(1, 10)

    def test_remove(self):
        shard = LRUShard(0)
        shard.touch(1, 10)
        assert shard.remove(1)
        assert not shard.remove(1)
        assert shard.size_bytes == 0

    def test_pop_lru_empty_returns_none(self):
        assert LRUShard(0).pop_lru() is None

    def test_pop_lru_skip_discipline(self):
        """The try_lock skip: a skipped entry stays; the next one pops."""
        shard = LRUShard(0)
        shard.touch(1, 10)
        shard.touch(2, 10)
        popped = shard.pop_lru(skip=lambda pid: pid == 1)
        assert popped == (2, 10)
        assert 1 in shard

    def test_pop_lru_all_skipped_returns_none(self):
        shard = LRUShard(0)
        shard.touch(1, 10)
        assert shard.pop_lru(skip=lambda pid: True) is None
        assert len(shard) == 1


class TestShardedLRU:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedLRU(0)

    def test_same_id_same_shard(self):
        lru = ShardedLRU(8)
        assert lru.shard_for(42) is lru.shard_for(42)

    def test_total_accounting_spans_shards(self):
        lru = ShardedLRU(4)
        for profile_id in range(100):
            lru.touch(profile_id, 10)
        assert lru.total_entries() == 100
        assert lru.total_bytes() == 1000

    def test_entries_spread_over_shards(self):
        lru = ShardedLRU(8)
        for profile_id in range(1000):
            lru.touch(profile_id, 1)
        occupied = sum(1 for shard in lru.iter_shards() if len(shard) > 0)
        assert occupied == 8

    def test_shards_by_size_largest_first(self):
        lru = ShardedLRU(4)
        for profile_id in range(200):
            lru.touch(profile_id, profile_id % 7 + 1)
        ordered = lru.shards_by_size()
        sizes = [shard.size_bytes for shard in ordered]
        assert sizes == sorted(sizes, reverse=True)

    def test_remove_and_contains(self):
        lru = ShardedLRU(4)
        lru.touch(7, 10)
        assert 7 in lru
        assert lru.remove(7)
        assert 7 not in lru

    def test_concurrent_touches_are_safe(self):
        lru = ShardedLRU(4)

        def touch_range(base):
            for index in range(500):
                lru.touch(base + index, 1)

        threads = [
            threading.Thread(target=touch_range, args=(base * 1000,))
            for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert lru.total_entries() == 2000
