"""Tests for the capped-parallelism maintenance pool (§III-D)."""

import time

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.engine import ProfileEngine
from repro.server.maintenance import MaintenancePool

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def engine():
    config = TableConfig(name="t", attributes=("click",))
    engine = ProfileEngine(config, SimulatedClock(NOW))
    engine.maintenance_slice_threshold = 4
    return engine


def populate(engine, profiles=5, hours=30):
    for profile_id in range(profiles):
        for hour in range(hours):
            engine.add_profile(
                profile_id, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour % 5, [1]
            )


class TestStrategySelection:
    def test_low_load_runs_full(self, engine):
        pool = MaintenancePool(engine, load_fn=lambda: 0.2)
        assert pool.choose_strategy() == "full"

    def test_medium_load_runs_partial(self, engine):
        pool = MaintenancePool(engine, load_fn=lambda: 0.7)
        assert pool.choose_strategy() == "partial"

    def test_high_load_pauses(self, engine):
        pool = MaintenancePool(engine, load_fn=lambda: 0.95)
        assert pool.choose_strategy() == "pause"

    def test_rejects_bad_configuration(self, engine):
        with pytest.raises(ValueError):
            MaintenancePool(engine, max_parallelism=0)
        with pytest.raises(ValueError):
            MaintenancePool(engine, full_compaction_load=0.9, pause_load=0.5)


class TestRunOnce:
    def test_drains_pending_at_low_load(self, engine):
        populate(engine)
        assert len(engine.pending_maintenance()) == 5
        pool = MaintenancePool(engine, load_fn=lambda: 0.1)
        maintained = pool.run_once()
        assert maintained == 5
        assert engine.pending_maintenance() == frozenset()
        assert pool.stats.full_passes == 5

    def test_partial_under_medium_load(self, engine):
        populate(engine)
        pool = MaintenancePool(engine, load_fn=lambda: 0.7)
        pool.run_once()
        assert pool.stats.partial_passes == 5
        assert pool.stats.full_passes == 0

    def test_pauses_under_peak_load(self, engine):
        populate(engine)
        pool = MaintenancePool(engine, load_fn=lambda: 0.95)
        assert pool.run_once() == 0
        assert pool.stats.paused_rounds == 1
        assert len(engine.pending_maintenance()) == 5  # Untouched.

    def test_batch_limit_respected(self, engine):
        populate(engine, profiles=10)
        pool = MaintenancePool(engine, load_fn=lambda: 0.0, batch_per_round=3)
        assert pool.run_once() == 3
        assert len(engine.pending_maintenance()) == 7

    def test_adaptive_strategy_switch(self, engine):
        """Load drops mid-run: strategy flips from partial to full."""
        populate(engine, profiles=4)
        load = {"value": 0.7}
        pool = MaintenancePool(
            engine, load_fn=lambda: load["value"], batch_per_round=2
        )
        pool.run_once()
        assert pool.stats.partial_passes == 2
        load["value"] = 0.1
        populate(engine, profiles=4)
        pool.run_once()
        assert pool.stats.full_passes >= 2


class TestBackgroundWorkers:
    def test_workers_drain_pending(self, engine):
        populate(engine, profiles=8)
        pool = MaintenancePool(engine, load_fn=lambda: 0.0, max_parallelism=3)
        pool.start(interval_s=0.005)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not engine.pending_maintenance():
                    break
                time.sleep(0.01)
        finally:
            pool.stop()
        assert engine.pending_maintenance() == frozenset()
        assert pool.stats.full_passes == 8

    def test_double_start_rejected(self, engine):
        pool = MaintenancePool(engine)
        pool.start(interval_s=0.01)
        try:
            with pytest.raises(RuntimeError):
                pool.start()
        finally:
            pool.stop()

    def test_pause_requeues_claimed_profile(self, engine):
        populate(engine, profiles=1)
        load = {"value": 0.95}
        pool = MaintenancePool(engine, load_fn=lambda: load["value"])
        pool._claim_and_run()
        # Paused: the claimed profile went back on the pending set.
        assert len(engine.pending_maintenance()) == 1


class TestQueryEquivalence:
    def test_pool_maintenance_preserves_window_queries(self, engine):
        from repro.core.timerange import TimeRange

        populate(engine, profiles=1, hours=100)
        window = TimeRange.current(2 * MILLIS_PER_DAY)
        before = engine.get_profile_topk(0, 1, 0, window, k=10)
        pool = MaintenancePool(engine, load_fn=lambda: 0.0)
        pool.run_once()
        after = engine.get_profile_topk(0, 1, 0, window, k=10)
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }
