"""Tests for the calibrated cluster simulator and fault schedules.

These check the *mechanisms* behind each figure's shape: flat p50 vs
load-sensitive p99, the hit/miss gap, isolation's effect on write tails,
bounded error rates under the production fault schedule.
"""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.sim import (
    ClusterSimulator,
    FaultEvent,
    FaultSchedule,
    ServiceProfile,
    calibrate_service_times,
)
from repro.workload import spring_festival_curve


@pytest.fixture(scope="module")
def simulator():
    return ClusterSimulator(num_nodes=1000, seed=7, samples_per_step=2500)


@pytest.fixture(scope="module")
def read_curve():
    return spring_festival_curve(read_traffic=True, seed=7)


@pytest.fixture(scope="module")
def write_curve():
    return spring_festival_curve(read_traffic=False, seed=7)


@pytest.fixture(scope="module")
def read_result(simulator, read_curve):
    return simulator.simulate_queries(
        read_curve, 0, MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR
    )


class TestQuerySimulation:
    def test_throughput_tracks_offered_load(self, read_result):
        assert 28e6 < read_result.trough("offered_qps") < 33e6
        assert 37e6 < read_result.peak("offered_qps") < 43e6

    def test_p50_flat_near_one_ms(self, read_result):
        """Fig. 16's signature: the median barely moves with load."""
        assert 0.8 < read_result.trough("p50_ms") < 1.6
        assert read_result.peak("p50_ms") - read_result.trough("p50_ms") < 0.7

    def test_p99_grows_with_load(self, read_result):
        """...while the tail visibly responds to traffic."""
        assert read_result.peak("p99_ms") > read_result.trough("p99_ms") + 1.0
        assert 4.0 < read_result.trough("p99_ms") < 11.0
        assert 6.0 < read_result.peak("p99_ms") < 13.0

    def test_hit_ratio_stays_above_ninety(self, read_result):
        assert read_result.trough("hit_ratio") > 0.90

    def test_memory_hovers_near_threshold(self, read_result):
        """Fig. 18: memory oscillates in the swap target/threshold band."""
        assert 0.78 < read_result.trough("memory_ratio")
        assert read_result.peak("memory_ratio") < 0.87

    def test_utilization_has_headroom(self, read_result):
        assert read_result.peak("utilization") < 0.8


class TestWriteSimulation:
    def test_write_p50_near_half_ms(self, simulator, write_curve, read_curve):
        result = simulator.simulate_writes(
            write_curve, 0, MILLIS_PER_DAY, 3 * MILLIS_PER_HOUR,
            isolation=True, read_traffic_model=read_curve,
        )
        assert 0.35 < result.mean("p50_ms") < 0.8

    def test_isolation_cuts_write_tail(self, simulator, write_curve, read_curve):
        """§IV-C: enabling isolation cut write p99 by ~80 %."""
        on = simulator.simulate_writes(
            write_curve, 0, MILLIS_PER_DAY, 3 * MILLIS_PER_HOUR,
            isolation=True, read_traffic_model=read_curve,
        )
        off = simulator.simulate_writes(
            write_curve, 0, MILLIS_PER_DAY, 3 * MILLIS_PER_HOUR,
            isolation=False, read_traffic_model=read_curve,
        )
        reduction = 1.0 - on.mean("p99_ms") / off.mean("p99_ms")
        assert 0.6 < reduction < 0.95

    def test_isolation_does_not_change_median_much(
        self, simulator, write_curve, read_curve
    ):
        on = simulator.simulate_writes(
            write_curve, 0, MILLIS_PER_DAY, 4 * MILLIS_PER_HOUR,
            isolation=True, read_traffic_model=read_curve,
        )
        off = simulator.simulate_writes(
            write_curve, 0, MILLIS_PER_DAY, 4 * MILLIS_PER_HOUR,
            isolation=False, read_traffic_model=read_curve,
        )
        assert off.mean("p50_ms") < on.mean("p50_ms") * 4


class TestLatencyTable:
    def test_hit_saves_two_to_four_ms(self, simulator):
        """Table II: cache hits save ~2-4 ms on the mean."""
        table = simulator.latency_table(samples=3000)
        for side in ("client", "server"):
            saving = table[side]["miss_mean_ms"] - table[side]["hit_mean_ms"]
            assert 2.0 < saving < 4.5

    def test_network_adds_about_three_ms(self, simulator):
        table = simulator.latency_table(samples=3000)
        gap = table["client"]["hit_mean_ms"] - table["server"]["hit_mean_ms"]
        assert 2.5 < gap < 4.0

    def test_server_hit_median_about_one_ms(self, simulator):
        table = simulator.latency_table(samples=3000)
        assert 0.8 < table["server"]["hit_p50_ms"] < 1.6


class TestFaultSchedule:
    def test_event_activity_window(self):
        event = FaultEvent(1000, 500, "node_crash", 0.01)
        assert event.active_at(1000)
        assert event.active_at(1499)
        assert not event.active_at(1500)
        assert not event.active_at(999)

    def test_retry_leak_scales_observed_rate(self):
        event = FaultEvent(0, 10, "x", raw_error_fraction=0.01, retry_leak=0.05)
        assert event.observed_error_fraction == pytest.approx(0.0005)

    def test_production_schedule_matches_fig17_band(self, simulator, read_curve):
        """Fig. 17: max error ≈ 0.025 %, average < 0.01 %."""
        schedule = FaultSchedule.production_twenty_days(seed=3)
        result = simulator.simulate_queries(
            read_curve, 0, 20 * MILLIS_PER_DAY, 4 * MILLIS_PER_HOUR,
            fault_schedule=schedule,
        )
        max_error = result.peak("error_rate")
        mean_error = result.mean("error_rate")
        assert max_error < 0.0005     # well under 0.05 %
        assert max_error > 0.00005    # the failover spike is visible
        assert mean_error < 0.0001    # average below 0.01 %

    def test_sla_implied_by_schedule(self, simulator, read_curve):
        """Mean error rate must keep the SLA above 99.99 % (§IV-B)."""
        schedule = FaultSchedule.production_twenty_days(seed=5)
        result = simulator.simulate_queries(
            read_curve, 0, 20 * MILLIS_PER_DAY, 6 * MILLIS_PER_HOUR,
            fault_schedule=schedule,
        )
        assert 1.0 - result.mean("error_rate") > 0.9999

    def test_background_floor_without_events(self):
        schedule = FaultSchedule(events=[], background_error_rate=0.00002, seed=1)
        rates = [schedule.error_rate_at(t * 1000) for t in range(100)]
        assert all(rate < 0.0001 for rate in rates)

    def test_error_rate_is_a_pure_function_of_seed_and_time(self):
        """Querying must not mutate state: the same (seed, time) pair gives
        the same rate regardless of how often or in what order it's asked."""
        first = FaultSchedule(events=[], background_error_rate=0.0001, seed=9)
        second = FaultSchedule(events=[], background_error_rate=0.0001, seed=9)
        times = [0, 5_000, 1_000, 5_000, 999_999, 0]
        for _ in range(3):  # Repeated queries on `first` change nothing.
            forward = [first.error_rate_at(t) for t in times]
        fresh = [second.error_rate_at(t) for t in times]
        assert forward == fresh
        assert first.error_rate_at(5_000) == first.error_rate_at(5_000)

    def test_noise_varies_with_seed_and_time(self):
        schedule = FaultSchedule(events=[], background_error_rate=0.0001, seed=1)
        other = FaultSchedule(events=[], background_error_rate=0.0001, seed=2)
        assert schedule.error_rate_at(1_000) != other.error_rate_at(1_000)
        assert schedule.error_rate_at(1_000) != schedule.error_rate_at(2_000)


class TestCalibration:
    def test_calibration_measures_positive_costs(self):
        calibration = calibrate_service_times(repeats=20)
        assert calibration.query_topk_ms > 0
        assert calibration.write_ms > 0
        assert calibration.serialize_ms > 0
        assert calibration.deserialize_ms > 0
        assert calibration.profile_bytes > 0
        assert calibration.serialized_bytes > 0

    def test_serialized_smaller_than_memory(self):
        calibration = calibrate_service_times(repeats=10)
        assert calibration.serialized_bytes < calibration.profile_bytes

    def test_miss_penalty_within_paper_band(self):
        calibration = calibrate_service_times(repeats=10)
        assert 2.0 <= calibration.miss_penalty_ms <= 4.0

    def test_service_profile_from_calibration(self):
        calibration = calibrate_service_times(repeats=10)
        profile = ServiceProfile.from_calibration(calibration)
        assert profile.miss_penalty_ms == calibration.miss_penalty_ms


class TestSimulatorValidation:
    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            ClusterSimulator(num_nodes=0)
