"""Differential oracle: the numpy kernels against the python reference.

The columnar backend's contract is **byte-identical** results — not
"close", not "same set, different order".  Every test here runs the same
query against both backends on seeded corpora (zipf-skewed fids,
schema-length mismatches, negative counts, int64-overflow sums) and
asserts the full ``FeatureResult`` lists *and* the ``QueryStats`` agree
exactly.  A teeth test proves the harness actually bites by checking it
rejects a deliberately broken kernel.

When the numpy backend is unavailable (not installed, or forced off via
``IPS_KERNEL_DISABLE_NUMPY=1`` — how ``make kernel-oracle`` exercises the
numpy-absent configuration), the differential tests skip and the
backend-selection tests prove the registry degrades correctly.
"""

from __future__ import annotations

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.config import TableConfig, TimeDimensionConfig
from repro.core.aggregate import get_aggregate
from repro.core.compaction import Compactor
from repro.core.decay import exponential_decay, linear_decay, step_decay
from repro.core.feature import INT64_MAX
from repro.core.profile import ProfileData
from repro.core.query import QueryEngine, QueryStats, SortType
from repro.core.kernels import (
    available_backends,
    default_backend_name,
    get_backend,
)
from repro.core.timerange import TimeRange
from repro.errors import ConfigError

NOW = 400 * MILLIS_PER_DAY
SPAN = 70 * MILLIS_PER_DAY
ATTRIBUTES = ("like", "comment", "share")
AGGREGATE_NAMES = ("sum", "max", "min", "last")

numpy_available = "numpy" in available_backends()
requires_numpy = pytest.mark.skipif(
    not numpy_available, reason="numpy kernel backend unavailable"
)


@pytest.fixture
def config():
    return TableConfig(name="kernel_oracle", attributes=ATTRIBUTES)


# ----------------------------------------------------------------------
# Seeded corpora
# ----------------------------------------------------------------------


def _fill(profile, rng, fids, counts_fn, num_writes, aggregate):
    for _ in range(num_writes):
        profile.add(
            NOW - rng.randrange(SPAN),
            rng.choice((1, 2)),
            rng.choice((1, 2, 3)),
            fids(),
            counts_fn(),
            aggregate,
        )
    return profile


def zipf_corpus(rng, aggregate, zipf=None):
    """Zipf-skewed fids: many collisions on hot features, a long tail."""
    profile = ProfileData(1, write_granularity_ms=6 * MILLIS_PER_HOUR)
    draw = zipf.sample if zipf is not None else lambda: rng.randrange(1, 40)
    return _fill(
        profile, rng, draw,
        lambda: [rng.randrange(0, 9) for _ in ATTRIBUTES],
        rng.randrange(40, 160), aggregate,
    )


def ragged_corpus(rng, aggregate, zipf=None):
    """Schema-length mismatches: count vectors shorter than the schema."""
    profile = ProfileData(1, write_granularity_ms=6 * MILLIS_PER_HOUR)
    return _fill(
        profile, rng, lambda: rng.randrange(1, 25),
        lambda: [rng.randrange(0, 9) for _ in range(rng.randrange(0, 4))],
        rng.randrange(40, 120), aggregate,
    )


def negative_corpus(rng, aggregate, zipf=None):
    """Negative counts (corrections / retractions) mixed with positives."""
    profile = ProfileData(1, write_granularity_ms=6 * MILLIS_PER_HOUR)
    return _fill(
        profile, rng, lambda: rng.randrange(1, 25),
        lambda: [rng.randrange(-20, 20) for _ in ATTRIBUTES],
        rng.randrange(40, 120), aggregate,
    )


def overflow_corpus(rng, aggregate, zipf=None):
    """Counts near INT64_MAX: stepwise clamping differs from a plain sum,
    so the columnar guards must trip and delegate."""
    profile = ProfileData(1, write_granularity_ms=6 * MILLIS_PER_HOUR)
    huge = (INT64_MAX // 2, INT64_MAX - 1, INT64_MAX, 7)
    return _fill(
        profile, rng, lambda: rng.randrange(1, 6),
        lambda: [rng.choice(huge) for _ in ATTRIBUTES],
        rng.randrange(10, 40), aggregate,
    )


CORPORA = [zipf_corpus, ragged_corpus, negative_corpus, overflow_corpus]
CORPUS_IDS = ["zipf", "ragged", "negative", "overflow"]


def random_time_range(rng) -> TimeRange:
    kind = rng.choice(("current", "relative", "absolute"))
    if kind == "current":
        return TimeRange.current(rng.randrange(1, SPAN))
    if kind == "relative":
        return TimeRange.relative(rng.randrange(1, SPAN))
    start = NOW - rng.randrange(1, SPAN)
    return TimeRange.absolute(start, start + rng.randrange(1, SPAN))


# ----------------------------------------------------------------------
# The comparator (shared with the teeth tests)
# ----------------------------------------------------------------------


def assert_backends_agree(config, aggregate, run, candidate="numpy"):
    """Run one query on the reference and ``candidate``; demand identity.

    ``run(engine, stats)`` executes the query.  Both the result lists and
    the ``QueryStats`` must match exactly; returns the reference result.
    """
    reference_stats, candidate_stats = QueryStats(), QueryStats()
    reference = run(
        QueryEngine(config, aggregate, backend="python"), reference_stats
    )
    got = run(QueryEngine(config, aggregate, backend=candidate), candidate_stats)
    assert got == reference
    assert candidate_stats == reference_stats
    return reference


SORT_CASES = [
    (SortType.TOTAL, {}),
    (SortType.TIMESTAMP, {}),
    (SortType.FEATURE_ID, {}),
    (SortType.ATTRIBUTE, {"sort_attribute": "comment"}),
    (SortType.WEIGHTED, {"sort_weights": {"share": 3.0, "like": 1.0}}),
]


# ----------------------------------------------------------------------
# Differential suites: every query shape x sort type x aggregate
# ----------------------------------------------------------------------


@requires_numpy
class TestTopKDifferential:
    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "sort_type,extra", SORT_CASES, ids=[case[0].value for case in SORT_CASES]
    )
    def test_topk_identical(
        self, config, rng, make_zipf, aggregate_name, sort_type, extra
    ):
        aggregate = get_aggregate(aggregate_name)
        zipf = make_zipf(200, seed=rng.randrange(2**32))
        for corpus in CORPORA:
            for _ in range(3):
                profile = corpus(rng, aggregate, zipf)
                time_range = random_time_range(rng)
                slot = rng.choice((1, 2))
                type_id = rng.choice((None, 1, 2, 3))
                k = rng.randrange(1, 50)
                descending = rng.random() < 0.8

                def run(engine, stats):
                    return engine.top_k(
                        profile, slot, type_id, time_range, sort_type, k,
                        now_ms=NOW, descending=descending, stats=stats,
                        **extra,
                    )

                assert_backends_agree(config, aggregate, run)


@requires_numpy
class TestFilterDifferential:
    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "corpus", CORPORA, ids=CORPUS_IDS
    )
    def test_filter_identical(self, config, rng, aggregate_name, corpus):
        aggregate = get_aggregate(aggregate_name)
        for _ in range(4):
            profile = corpus(rng, aggregate)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            threshold = rng.randrange(-10, 25)

            def run(engine, stats):
                return engine.filter(
                    profile, slot, type_id, time_range,
                    lambda stat: stat.total() > threshold,
                    now_ms=NOW, stats=stats,
                )

            assert_backends_agree(config, aggregate, run)


@requires_numpy
class TestDecayDifferential:
    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "decay_fn,factor",
        [
            (exponential_decay, 7 * MILLIS_PER_DAY),
            (linear_decay, 30 * MILLIS_PER_DAY),
            (step_decay, 10 * MILLIS_PER_DAY),
        ],
        ids=["exponential", "linear", "step"],
    )
    def test_decay_identical(
        self, config, rng, aggregate_name, decay_fn, factor
    ):
        aggregate = get_aggregate(aggregate_name)
        for corpus in CORPORA:
            for _ in range(2):
                profile = corpus(rng, aggregate)
                time_range = random_time_range(rng)
                slot = rng.choice((1, 2))
                type_id = rng.choice((None, 1, 2, 3))
                k = rng.choice((None, rng.randrange(1, 30)))
                sort_attribute = rng.choice((None, "share"))

                def run(engine, stats):
                    return engine.decay(
                        profile, slot, type_id, time_range, decay_fn,
                        factor, now_ms=NOW, k=k,
                        sort_attribute=sort_attribute, stats=stats,
                    )

                assert_backends_agree(config, aggregate, run)


@requires_numpy
class TestUdafDelegation:
    def test_udaf_identical(self, config, rng):
        """An unrecognised reduce fn must route through the reference on
        both backends — and still agree exactly."""

        def clipped_sum(left: int, right: int) -> int:
            return min(left + right, 100)

        for _ in range(5):
            profile = zipf_corpus(rng, clipped_sum)
            time_range = random_time_range(rng)
            type_id = rng.choice((None, 1, 2))

            def run(engine, stats):
                return engine.top_k(
                    profile, 1, type_id, time_range,
                    SortType.TOTAL, 10, now_ms=NOW, stats=stats,
                )

            assert_backends_agree(config, clipped_sum, run)


@requires_numpy
class TestCacheInvalidation:
    def test_identical_across_interleaved_writes(self, config, rng):
        """Warm columnar caches must be dropped on every mutation path:
        plain writes, compaction folds and direct slice merges."""
        aggregate = get_aggregate("sum")
        profile = zipf_corpus(rng, aggregate)
        time_range = TimeRange.current(SPAN)

        def run(engine, stats):
            return engine.top_k(
                profile, 1, None, time_range, SortType.TOTAL, 25,
                now_ms=NOW, stats=stats,
            )

        assert_backends_agree(config, aggregate, run)  # caches now warm
        for _ in range(30):  # hit existing slices, not just the head
            profile.add(
                NOW - rng.randrange(SPAN), 1, rng.choice((1, 2)),
                rng.randrange(1, 40),
                [rng.randrange(0, 9) for _ in ATTRIBUTES], aggregate,
            )
        assert_backends_agree(config, aggregate, run)
        Compactor(
            TimeDimensionConfig.production_default(), aggregate,
            backend="python",
        ).compact(profile, NOW)
        assert_backends_agree(config, aggregate, run)


# ----------------------------------------------------------------------
# Batch differential oracle: multi-get == N independent single gets
# ----------------------------------------------------------------------
#
# The batch kernels' contract mirrors the single-query one: for every
# batch shape, each profile's result list AND QueryStats must be
# byte-identical to an independent single get.  These tests run on the
# session-selected backend, so `make kernel-oracle` exercises all three
# configurations (auto / pinned-python / numpy-disabled).


def _batch_profiles(rng, aggregate, zipf=None):
    """A mixed-shape batch: every corpus plus an empty profile."""
    profiles = []
    for _ in range(rng.randrange(1, 4)):
        corpus = rng.choice(CORPORA)
        profiles.append(
            corpus(rng, aggregate, zipf if corpus is zipf_corpus else None)
        )
    if rng.random() < 0.5:  # no slices: the window resolves to None
        profiles.append(ProfileData(99, write_granularity_ms=MILLIS_PER_DAY))
    rng.shuffle(profiles)
    return profiles


def assert_batch_matches_singles(singles_fn, batch_fn, n_profiles):
    """Run singles then the batch; demand per-profile identity."""
    single_stats = [QueryStats() for _ in range(n_profiles)]
    singles = [singles_fn(i, single_stats[i]) for i in range(n_profiles)]
    batch_stats = [QueryStats() for _ in range(n_profiles)]
    batched = batch_fn(batch_stats)
    assert batched == singles
    assert batch_stats == single_stats
    return singles


class TestBatchDifferential:
    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "sort_type,extra", SORT_CASES, ids=[case[0].value for case in SORT_CASES]
    )
    def test_topk_batch_matches_singles(
        self, config, rng, make_zipf, aggregate_name, sort_type, extra
    ):
        aggregate = get_aggregate(aggregate_name)
        zipf = make_zipf(200, seed=rng.randrange(2**32))
        engine = QueryEngine(config, aggregate)
        for _ in range(4):
            profiles = _batch_profiles(rng, aggregate, zipf)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            k = rng.randrange(1, 50)
            descending = rng.random() < 0.8
            assert_batch_matches_singles(
                lambda i, stats: engine.top_k(
                    profiles[i], slot, type_id, time_range, sort_type, k,
                    now_ms=NOW, descending=descending, stats=stats, **extra,
                ),
                lambda stats_list: engine.top_k_batch(
                    profiles, slot, type_id, time_range, sort_type, k,
                    now_ms=NOW, descending=descending,
                    stats_list=stats_list, **extra,
                ),
                len(profiles),
            )

    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    def test_filter_batch_matches_singles(self, config, rng, aggregate_name):
        aggregate = get_aggregate(aggregate_name)
        engine = QueryEngine(config, aggregate)
        for _ in range(4):
            profiles = _batch_profiles(rng, aggregate)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            threshold = rng.randrange(-10, 25)
            predicate = lambda stat: stat.total() > threshold  # noqa: E731
            assert_batch_matches_singles(
                lambda i, stats: engine.filter(
                    profiles[i], slot, type_id, time_range, predicate,
                    now_ms=NOW, stats=stats,
                ),
                lambda stats_list: engine.filter_batch(
                    profiles, slot, type_id, time_range, predicate,
                    now_ms=NOW, stats_list=stats_list,
                ),
                len(profiles),
            )

    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "decay_fn,factor",
        [
            (exponential_decay, 7 * MILLIS_PER_DAY),
            (linear_decay, 30 * MILLIS_PER_DAY),
            (step_decay, 10 * MILLIS_PER_DAY),
        ],
        ids=["exponential", "linear", "step"],
    )
    def test_decay_batch_matches_singles(
        self, config, rng, aggregate_name, decay_fn, factor
    ):
        aggregate = get_aggregate(aggregate_name)
        engine = QueryEngine(config, aggregate)
        for _ in range(3):
            profiles = _batch_profiles(rng, aggregate)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            k = rng.choice((None, rng.randrange(1, 30)))
            sort_attribute = rng.choice((None, "share"))
            assert_batch_matches_singles(
                lambda i, stats: engine.decay(
                    profiles[i], slot, type_id, time_range, decay_fn,
                    factor, now_ms=NOW, k=k, sort_attribute=sort_attribute,
                    stats=stats,
                ),
                lambda stats_list: engine.decay_batch(
                    profiles, slot, type_id, time_range, decay_fn, factor,
                    now_ms=NOW, k=k, sort_attribute=sort_attribute,
                    stats_list=stats_list,
                ),
                len(profiles),
            )

    def test_udaf_batch_matches_singles(self, config, rng):
        """UDAF batches route through the reference loop on every backend."""

        def clipped_sum(left: int, right: int) -> int:
            return min(left + right, 100)

        engine = QueryEngine(config, clipped_sum)
        for _ in range(3):
            profiles = _batch_profiles(rng, clipped_sum)
            time_range = random_time_range(rng)
            assert_batch_matches_singles(
                lambda i, stats: engine.top_k(
                    profiles[i], 1, None, time_range, SortType.TOTAL, 10,
                    now_ms=NOW, stats=stats,
                ),
                lambda stats_list: engine.top_k_batch(
                    profiles, 1, None, time_range, SortType.TOTAL, 10,
                    now_ms=NOW, stats_list=stats_list,
                ),
                len(profiles),
            )

    @requires_numpy
    def test_batch_cross_backend_identical(self, config, rng, make_zipf):
        """numpy batch vs python batch: same bytes, same stats."""
        aggregate = get_aggregate("sum")
        zipf = make_zipf(200, seed=rng.randrange(2**32))
        for sort_type, extra in SORT_CASES:
            profiles = _batch_profiles(rng, aggregate, zipf)
            time_range = random_time_range(rng)
            k = rng.randrange(1, 40)

            def run(engine, stats_list):
                return engine.top_k_batch(
                    profiles, 1, None, time_range, sort_type, k,
                    now_ms=NOW, stats_list=stats_list, **extra,
                )

            reference_stats = [QueryStats() for _ in profiles]
            candidate_stats = [QueryStats() for _ in profiles]
            reference = run(
                QueryEngine(config, aggregate, backend="python"),
                reference_stats,
            )
            got = run(
                QueryEngine(config, aggregate, backend="numpy"),
                candidate_stats,
            )
            assert got == reference
            assert candidate_stats == reference_stats


# ----------------------------------------------------------------------
# Batch teeth: a broken batch kernel must be caught
# ----------------------------------------------------------------------


class TestBatchOracleTeeth:
    def _profiles(self, rng):
        aggregate = get_aggregate("sum")
        return [zipf_corpus(rng, aggregate) for _ in range(4)]

    def _assert_caught(self, config, rng, broken_backend):
        profiles = self._profiles(rng)
        engine = QueryEngine(config, get_aggregate("sum"), backend=broken_backend)
        with pytest.raises(AssertionError):
            assert_batch_matches_singles(
                lambda i, stats: engine.top_k(
                    profiles[i], 1, None, TimeRange.current(SPAN),
                    SortType.TOTAL, 20, now_ms=NOW, stats=stats,
                ),
                lambda stats_list: engine.top_k_batch(
                    profiles, 1, None, TimeRange.current(SPAN),
                    SortType.TOTAL, 20, now_ms=NOW, stats_list=stats_list,
                ),
                len(profiles),
            )

    def test_catches_dropped_batch_results(self, config, rng):
        """Works on every backend: the planted bug drops one result."""
        from repro.core.kernels.python_backend import PythonBackend

        class DroppingBatchBackend(PythonBackend):
            name = "broken-batch-drop"

            def run_topk_batch(self, *args, **kwargs):
                out = super().run_topk_batch(*args, **kwargs)
                for results in out:
                    if results:
                        results.pop()  # the planted bug
                        break
                return out

        self._assert_caught(config, rng, DroppingBatchBackend())

    @requires_numpy
    def test_catches_wrong_batch_counts(self, config, rng):
        from repro.core.kernels.numpy_backend import NumpyBackend

        class OffByOneBatchKernel(NumpyBackend):
            name = "broken-batch-counts"

            def _reduce_batch(self, gathered, pid_arr, agg):
                reduced = super()._reduce_batch(gathered, pid_arr, agg)
                if reduced is not None:
                    merged, group_pids = reduced
                    if merged.counts.size:
                        merged.counts = merged.counts + 1  # the planted bug
                    return merged, group_pids
                return reduced

        self._assert_caught(config, rng, OffByOneBatchKernel())

    @requires_numpy
    def test_catches_wrong_batch_order(self, config, rng):
        from repro.core.kernels.numpy_backend import NumpyBackend

        class NonDescendingBatchKernel(NumpyBackend):
            name = "broken-batch-order"

            def _finish_batch(
                self, profiles, gathered_list, merged, group_pids,
                ascending, k, descending, stats_list,
            ):
                return super()._finish_batch(
                    profiles, gathered_list, merged, group_pids,
                    ascending, k, False, stats_list,  # the planted bug
                )

        self._assert_caught(config, rng, NonDescendingBatchKernel())

    @requires_numpy
    def test_catches_wrong_batch_stats(self, config, rng):
        from repro.core.kernels.numpy_backend import NumpyBackend

        class UndercountingBatchKernel(NumpyBackend):
            name = "broken-batch-stats"

            def run_topk_batch(self, *args, **kwargs):
                stats_list = args[-1] if args else kwargs["stats_list"]
                out = super().run_topk_batch(*args, **kwargs)
                for stats in stats_list:
                    if stats is not None and stats.features_merged:
                        stats.features_merged -= 1  # the planted bug
                return out

        self._assert_caught(config, rng, UndercountingBatchKernel())


# ----------------------------------------------------------------------
# Compaction folds: whole-profile equivalence
# ----------------------------------------------------------------------


def profile_snapshot(profile):
    """Full structural fingerprint of a profile's slices and stats."""
    out = []
    for profile_slice in profile.slices:
        slots = {}
        for slot, instance_set in profile_slice.slots_items():
            slots[slot] = {
                type_id: sorted(
                    (stat.fid, tuple(stat.counts), stat.last_timestamp_ms,
                     stat.fid_index)
                    for stat in instance_set.features_for_type(type_id)
                )
                for type_id in instance_set.type_ids
            }
        out.append((profile_slice.start_ms, profile_slice.end_ms, slots))
    return out


@requires_numpy
class TestCompactionDifferential:
    @pytest.mark.parametrize("aggregate_name", AGGREGATE_NAMES)
    @pytest.mark.parametrize(
        "corpus", CORPORA, ids=CORPUS_IDS
    )
    def test_fold_identical(self, rng, aggregate_name, corpus):
        aggregate = get_aggregate(aggregate_name)
        seed = rng.randrange(2**32)
        import random as _random

        reference_profile = corpus(_random.Random(seed), aggregate)
        columnar_profile = corpus(_random.Random(seed), aggregate)
        assert profile_snapshot(reference_profile) == profile_snapshot(
            columnar_profile
        )

        time_dimension = TimeDimensionConfig.production_default()
        columnar_backend = type(get_backend("numpy"))()
        columnar_backend.fold_min_features = 0  # force the columnar fold
        reference_stats = Compactor(
            time_dimension, aggregate, backend="python"
        ).compact(reference_profile, NOW)
        columnar_stats = Compactor(
            time_dimension, aggregate, backend=columnar_backend
        ).compact(columnar_profile, NOW)

        assert profile_snapshot(columnar_profile) == profile_snapshot(
            reference_profile
        )
        assert columnar_stats == reference_stats
        assert (
            columnar_profile.memory_bytes() == reference_profile.memory_bytes()
        )


# ----------------------------------------------------------------------
# Teeth: the oracle must catch a broken kernel
# ----------------------------------------------------------------------


@requires_numpy
class TestOracleTeeth:
    def _profile(self, rng):
        return zipf_corpus(rng, get_aggregate("sum"))

    def _run(self, profile):
        def run(engine, stats):
            return engine.top_k(
                profile, 1, None, TimeRange.current(SPAN), SortType.TOTAL,
                20, now_ms=NOW, stats=stats,
            )

        return run

    def test_catches_wrong_counts(self, config, rng):
        from repro.core.kernels.numpy_backend import NumpyBackend

        class OffByOneKernel(NumpyBackend):
            name = "broken-counts"

            def _reduce(self, gathered, agg, need_first_row):
                merged = super()._reduce(gathered, agg, need_first_row)
                if merged is not None and merged.counts.size:
                    merged.counts = merged.counts + 1  # the planted bug
                return merged

        profile = self._profile(rng)
        with pytest.raises(AssertionError):
            assert_backends_agree(
                config, get_aggregate("sum"), self._run(profile),
                candidate=OffByOneKernel(),
            )

    def test_catches_wrong_stats(self, config, rng):
        from repro.core.kernels.numpy_backend import NumpyBackend

        class UndercountingKernel(NumpyBackend):
            name = "broken-stats"

            @staticmethod
            def _commit_stats(stats, gathered, results):
                if stats is not None:
                    stats.slices_scanned += gathered.slices_scanned
                    stats.features_merged += max(0, gathered.n_rows - 1)
                    stats.results_returned = len(results)

        profile = self._profile(rng)
        with pytest.raises(AssertionError):
            assert_backends_agree(
                config, get_aggregate("sum"), self._run(profile),
                candidate=UndercountingKernel(),
            )


# ----------------------------------------------------------------------
# Backend selection (runs with or without numpy)
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_python_always_available(self):
        assert "python" in available_backends()
        assert get_backend("python").name == "python"

    def test_auto_resolves_to_available(self):
        assert get_backend("auto").name in available_backends()
        assert get_backend(None).name == default_backend_name()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            get_backend("cuda")

    def test_instance_passthrough(self):
        backend = get_backend("python")
        assert get_backend(backend) is backend

    def test_config_field_selects_backend(self):
        config = TableConfig(
            name="t", attributes=ATTRIBUTES, kernel_backend="python"
        )
        engine = QueryEngine(config, get_aggregate("sum"))
        assert engine.backend.name == "python"

    def test_disable_env_forces_python(self, monkeypatch):
        monkeypatch.setenv("IPS_KERNEL_DISABLE_NUMPY", "1")
        assert available_backends() == ("python",)
        assert get_backend(None).name == "python"
        with pytest.raises(ConfigError):
            get_backend("numpy")

    @requires_numpy
    def test_env_override_picks_python(self, monkeypatch):
        monkeypatch.setenv("IPS_KERNEL_BACKEND", "python")
        assert default_backend_name() == "python"
        assert get_backend(None).name == "python"

    @requires_numpy
    def test_numpy_selectable_when_available(self):
        assert get_backend("numpy").name == "numpy"
