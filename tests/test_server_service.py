"""Tests for the multi-table IPSService (table-first paper API)."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import ConfigError, QuotaExceededError, TableNotFoundError
from repro.server.service import IPSService
from repro.storage import InMemoryKVStore

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def service():
    svc = IPSService(InMemoryKVStore(), clock=SimulatedClock(NOW))
    svc.create_table(TableConfig(name="feed", attributes=("click", "like")))
    svc.create_table(
        TableConfig(name="ads", attributes=("impression", "conversion"),
                    aggregate="sum")
    )
    return svc


class TestTableManagement:
    def test_create_and_list(self, service):
        assert service.table_names() == ["ads", "feed"]

    def test_duplicate_table_rejected(self, service):
        with pytest.raises(ConfigError):
            service.create_table(TableConfig(name="feed", attributes=("x",)))

    def test_unknown_table_raises(self, service):
        with pytest.raises(TableNotFoundError):
            service.add_profile("nope", 1, NOW, 1, 0, 1, {"click": 1})
        with pytest.raises(TableNotFoundError):
            service.get_profile_topk("nope", 1, 1, 0, WINDOW)

    def test_drop_table(self, service):
        service.drop_table("ads")
        assert service.table_names() == ["feed"]
        with pytest.raises(TableNotFoundError):
            service.drop_table("ads")


class TestTableIsolation:
    def test_tables_are_separate_namespaces(self, service):
        """The same profile id in two tables holds independent data."""
        service.add_profile("feed", 7, NOW, 1, 0, 100, {"click": 3})
        service.add_profile("ads", 7, NOW, 1, 0, 200, {"impression": 5})
        service.run_background_cycle()
        feed = service.get_profile_topk("feed", 7, 1, 0, WINDOW)
        ads = service.get_profile_topk("ads", 7, 1, 0, WINDOW)
        assert [r.fid for r in feed] == [100]
        assert [r.fid for r in ads] == [200]

    def test_schemas_are_per_table(self, service):
        with pytest.raises(ConfigError):
            service.add_profile("feed", 1, NOW, 1, 0, 1, {"impression": 1})

    def test_persistence_keys_do_not_collide(self, service):
        service.add_profile("feed", 7, NOW, 1, 0, 100, {"click": 1})
        service.add_profile("ads", 7, NOW, 1, 0, 200, {"impression": 1})
        service.run_background_cycle()
        service.shutdown()
        # Rebuild the service over the same store: both tables recover.
        fresh = IPSService(service._store, clock=SimulatedClock(NOW + 1))
        fresh.create_table(TableConfig(name="feed", attributes=("click", "like")))
        fresh.create_table(
            TableConfig(name="ads", attributes=("impression", "conversion"))
        )
        assert fresh.get_profile_topk("feed", 7, 1, 0, WINDOW)[0].fid == 100
        assert fresh.get_profile_topk("ads", 7, 1, 0, WINDOW)[0].fid == 200


class TestPaperSignatures:
    def test_filter_and_decay_surface(self, service):
        service.add_profile("feed", 1, NOW, 1, 0, 10, {"click": 1})
        service.add_profile("feed", 1, NOW, 1, 0, 20, {"click": 5})
        service.run_background_cycle()
        filtered = service.get_profile_filter(
            "feed", 1, 1, 0, WINDOW, lambda stat: stat.count_at(0) > 2
        )
        assert [r.fid for r in filtered] == [20]
        decayed = service.get_profile_decay(
            "feed", 1, 1, 0, WINDOW, "exponential", MILLIS_PER_DAY
        )
        assert len(decayed) == 2

    def test_batched_write(self, service):
        service.add_profiles(
            "feed", 1, NOW, 1, 0, [1, 2, 3], [{"click": 1}] * 3
        )
        service.run_background_cycle()
        assert len(service.get_profile_topk("feed", 1, 1, 0, WINDOW)) == 3

    def test_weighted_topk_through_service(self, service):
        service.add_profile("feed", 1, NOW, 1, 0, 10, {"click": 9})
        service.add_profile("feed", 1, NOW, 1, 0, 20, {"like": 1})
        service.run_background_cycle()
        ranked = service.get_profile_topk(
            "feed", 1, 1, 0, WINDOW, SortType.WEIGHTED, k=2,
            sort_weights={"like": 100.0},
        )
        assert ranked[0].fid == 20


class TestSharedQuota:
    def test_quota_spans_tables(self, service):
        """One caller's quota is enforced across every table it touches."""
        service.quota.set_quota("tenant", qps=10, burst=2)
        service.add_profile("feed", 1, NOW, 1, 0, 1, {"click": 1},
                            caller="tenant")
        service.add_profile("ads", 1, NOW, 1, 0, 1, {"impression": 1},
                            caller="tenant")
        with pytest.raises(QuotaExceededError):
            service.add_profile("feed", 1, NOW, 1, 0, 2, {"click": 1},
                                caller="tenant")

    def test_other_callers_unaffected(self, service):
        service.quota.set_quota("tenant", qps=10, burst=1)
        service.add_profile("feed", 1, NOW, 1, 0, 1, {"click": 1},
                            caller="tenant")
        service.add_profile("feed", 1, NOW, 1, 0, 1, {"click": 1},
                            caller="other")


class TestMaintenanceAcrossTables:
    def test_run_maintenance_covers_all_tables(self, service):
        from repro.clock import MILLIS_PER_HOUR

        for table in ("feed", "ads"):
            node = service.table_node(table)
            node.engine.maintenance_slice_threshold = 4
            counts = {"click": 1} if table == "feed" else {"impression": 1}
            for hour in range(30):
                service.add_profile(
                    table, 1, NOW - hour * MILLIS_PER_HOUR, 1, 0, hour, counts
                )
        service.run_background_cycle()
        before = {
            table: service.table_node(table).engine.table.get(1).slice_count()
            for table in ("feed", "ads")
        }
        service.run_maintenance()
        for table in ("feed", "ads"):
            after = service.table_node(table).engine.table.get(1).slice_count()
            assert after < before[table]
