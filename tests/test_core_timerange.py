"""Tests for CURRENT / RELATIVE / ABSOLUTE time ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.core.timerange import ResolvedWindow, TimeRange, TimeRangeKind
from repro.errors import InvalidTimeRangeError

NOW = 1_000_000


class TestConstructors:
    def test_current(self):
        tr = TimeRange.current(5000)
        assert tr.kind is TimeRangeKind.CURRENT
        assert tr.span_ms == 5000

    def test_relative(self):
        tr = TimeRange.relative(5000)
        assert tr.kind is TimeRangeKind.RELATIVE

    def test_absolute(self):
        tr = TimeRange.absolute(100, 200)
        assert tr.kind is TimeRangeKind.ABSOLUTE

    @pytest.mark.parametrize("span", [0, -1])
    def test_current_rejects_nonpositive_span(self, span):
        with pytest.raises(InvalidTimeRangeError):
            TimeRange.current(span)

    @pytest.mark.parametrize("span", [0, -1])
    def test_relative_rejects_nonpositive_span(self, span):
        with pytest.raises(InvalidTimeRangeError):
            TimeRange.relative(span)

    def test_absolute_rejects_empty_window(self):
        with pytest.raises(InvalidTimeRangeError):
            TimeRange.absolute(200, 200)

    def test_absolute_rejects_negative_start(self):
        with pytest.raises(InvalidTimeRangeError):
            TimeRange.absolute(-1, 200)


class TestResolution:
    def test_current_window_ends_after_now(self):
        window = TimeRange.current(5000).resolve(NOW, None)
        assert window.start_ms == NOW - 5000
        assert window.end_ms == NOW + 1  # Inclusive of the current instant.

    def test_current_write_stamped_now_is_inside(self):
        window = TimeRange.current(5000).resolve(NOW, None)
        assert window.start_ms <= NOW < window.end_ms

    def test_current_clamps_start_at_zero(self):
        window = TimeRange.current(5000).resolve(1000, None)
        assert window.start_ms == 0

    def test_relative_anchors_to_profile_newest(self):
        window = TimeRange.relative(5000).resolve(NOW, profile_newest_ms=500_000)
        assert window.end_ms == 500_000
        assert window.start_ms == 495_000

    def test_relative_empty_profile_returns_none(self):
        assert TimeRange.relative(5000).resolve(NOW, None) is None

    def test_relative_anchor_never_exceeds_now(self):
        window = TimeRange.relative(5000).resolve(NOW, profile_newest_ms=NOW + 999)
        assert window.end_ms <= NOW + 1

    def test_absolute_passes_through(self):
        window = TimeRange.absolute(100, 200).resolve(NOW, None)
        assert (window.start_ms, window.end_ms) == (100, 200)

    @given(
        st.integers(min_value=1, max_value=10**10),
        st.integers(min_value=0, max_value=10**12),
    )
    def test_current_windows_are_never_empty(self, span, now):
        window = TimeRange.current(span).resolve(now, None)
        assert window.end_ms > window.start_ms
        assert window.span_ms <= span + 1

    @given(
        st.integers(min_value=1, max_value=10**10),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=10**12),
    )
    def test_relative_windows_are_never_empty(self, span, now, newest):
        window = TimeRange.relative(span).resolve(now, newest)
        assert window is None or window.end_ms > window.start_ms


class TestResolvedWindow:
    def test_rejects_empty(self):
        with pytest.raises(InvalidTimeRangeError):
            ResolvedWindow(10, 10)

    def test_span(self):
        assert ResolvedWindow(10, 25).span_ms == 15
