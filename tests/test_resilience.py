"""Tests for the resilience layer: deadlines, backoff, breakers, hedging."""

import pytest

from repro.clock import MILLIS_PER_DAY, SimulatedClock
from repro.cluster import IPSCluster, MultiRegionDeployment
from repro.cluster.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffPolicy,
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    ResilienceConfig,
    ResilientExecutor,
)
from repro.config import TableConfig
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    IPSError,
    is_retryable,
)
from repro.obs.registry import MetricsRegistry
from repro.server.proxy import wrap_region_with_proxies

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def clock():
    return SimulatedClock(NOW)


class TestDeadline:
    def test_counts_down_with_the_clock(self, clock):
        deadline = Deadline(clock, 100.0)
        assert deadline.remaining_ms() == pytest.approx(100.0)
        clock.advance(60)
        assert deadline.remaining_ms() == pytest.approx(40.0)
        assert not deadline.expired

    def test_check_raises_once_expired(self, clock):
        deadline = Deadline(clock, 50.0)
        deadline.check("get_profile_topk")  # Fine while budget remains.
        clock.advance(50)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("get_profile_topk")
        assert "get_profile_topk" in str(excinfo.value)

    def test_deadline_exceeded_is_not_retryable(self, clock):
        # Retrying a request whose budget is gone only multiplies load.
        assert not is_retryable(DeadlineExceededError("op", 10.0))

    def test_rejects_non_positive_budget(self, clock):
        with pytest.raises(ValueError):
            Deadline(clock, 0.0)


class TestBackoffPolicy:
    def test_grows_geometrically_and_caps(self):
        import random

        policy = BackoffPolicy(base_ms=10, multiplier=2, max_ms=50, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_ms(attempt, rng) for attempt in range(5)]
        assert delays == [10, 20, 40, 50, 50]

    def test_jitter_only_shrinks_the_delay(self):
        import random

        policy = BackoffPolicy(base_ms=10, multiplier=2, max_ms=500, jitter=0.5)
        rng = random.Random(1)
        for attempt in range(6):
            delay = policy.delay_ms(attempt, rng)
            ceiling = min(500, 10 * 2**attempt)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_ms=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3, recovery_ms=1000)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_and_close(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, recovery_ms=1000)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1000)
        assert breaker.state == HALF_OPEN
        # Only one probe slot: the first caller gets it, the second waits.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, recovery_ms=1000)
        breaker.record_failure()
        clock.advance(1000)
        assert breaker.allow()  # The probe.
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1000)
        assert breaker.state == HALF_OPEN

    def test_transitions_are_recorded(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, recovery_ms=100)
        breaker.record_failure()
        clock.advance(100)
        breaker.allow()
        breaker.record_success()
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]


class TestHedgePolicy:
    def test_not_armed_until_min_samples(self):
        policy = HedgePolicy(percentile=95, min_samples=10)
        for _ in range(9):
            policy.observe(5.0)
        assert policy.current_threshold_ms() is None
        assert not policy.should_hedge(1000.0)

    def test_fires_above_trailing_percentile(self):
        policy = HedgePolicy(percentile=90, min_samples=10, min_threshold_ms=0.5)
        for _ in range(50):
            policy.observe(4.0)
        threshold = policy.current_threshold_ms()
        assert threshold is not None
        assert not policy.should_hedge(threshold)
        assert policy.should_hedge(threshold * 4)

    def test_fixed_threshold_override(self):
        policy = HedgePolicy(threshold_ms=25.0)
        assert policy.should_hedge(26.0)
        assert not policy.should_hedge(24.0)


class TestResilientExecutor:
    def test_admit_raises_circuit_open(self, clock):
        executor = ResilientExecutor(
            clock, ResilienceConfig(breaker_failure_threshold=1)
        )
        executor.admit("n0")
        executor.record_failure("n0")
        with pytest.raises(CircuitOpenError):
            executor.admit("n0")
        assert executor.stats.breaker_rejections == 1
        assert executor.open_nodes() == {"n0"}
        assert executor.breaker_states() == {"n0": "open"}

    def test_circuit_open_error_is_retryable(self):
        # Rejection by one node's breaker must reroute, not fail the read.
        assert is_retryable(CircuitOpenError("n0"))

    def test_backoff_charges_the_simulated_clock(self, clock):
        executor = ResilientExecutor(clock, ResilienceConfig())
        before = clock.now_ms()
        executor.backoff_before_retry(0, None)
        assert clock.now_ms() > before
        assert executor.stats.backoff_waits == 1
        assert executor.stats.backoff_wait_ms > 0

    def test_backoff_never_overshoots_the_deadline(self, clock):
        executor = ResilientExecutor(
            clock,
            ResilienceConfig(
                backoff=BackoffPolicy(base_ms=500, max_ms=500, jitter=0.0)
            ),
        )
        deadline = Deadline(clock, 20.0)
        executor.backoff_before_retry(0, deadline)
        # Waited at most the remaining budget, not the full 500 ms.
        assert clock.now_ms() - NOW <= 20

    def test_registry_counters_flow(self, clock):
        registry = MetricsRegistry()
        executor = ResilientExecutor(
            clock,
            ResilienceConfig(breaker_failure_threshold=1),
            registry=registry,
        )
        executor.record_failure("n0")
        executor.backoff_before_retry(0, None)
        executor.record_hedge(won=True)
        executor.record_deadline_exceeded()
        text = registry.render_text()
        assert "resilience_retries" in text
        assert 'resilience_breaker_transitions{node="n0",to="open"}' in text
        assert 'resilience_hedges{outcome="won"}' in text
        assert "resilience_deadline_exceeded" in text


# ----------------------------------------------------------------------
# Client integration
# ----------------------------------------------------------------------


@pytest.fixture
def proxied_cluster(clock):
    config = TableConfig(name="t", attributes=("click",))
    cluster = IPSCluster(config, num_nodes=4, clock=clock)
    wrap_region_with_proxies(cluster)
    client = cluster.client("app", resilience=ResilienceConfig(seed=3))
    for profile_id in range(100):
        client.add_profile(profile_id, NOW, 1, 1, profile_id % 9, {"click": 1})
    cluster.run_background_cycle()
    return cluster, client


class TestClientIntegration:
    def test_breaker_opens_and_excludes_a_dead_node(self, proxied_cluster, clock):
        cluster, client = proxied_cluster
        victim_id = sorted(cluster.region.nodes)[0]
        cluster.region.nodes[victim_id].crash()
        # Hammer reads: the victim's breaker should open, after which its
        # keys reroute without even touching the dead transport.
        for profile_id in range(100):
            client.get_profile_topk(profile_id, 1, 1, WINDOW, SortType.TOTAL, k=3)
        summary = client.resilience_summary()
        assert summary["breaker_states"][victim_id] == "open"
        assert summary["retries"] > 0
        rejections_mid = summary["breaker_rejections"]
        for profile_id in range(100):
            client.get_profile_topk(profile_id, 1, 1, WINDOW, SortType.TOTAL, k=3)
        assert (
            client.resilience_summary()["breaker_rejections"] >= rejections_mid
        )

    def test_recovered_node_closes_its_breaker(self, proxied_cluster, clock):
        cluster, client = proxied_cluster
        victim_id = sorted(cluster.region.nodes)[0]
        victim = cluster.region.nodes[victim_id]
        victim.crash()
        for profile_id in range(100):
            client.get_profile_topk(profile_id, 1, 1, WINDOW, SortType.TOTAL, k=3)
        assert client.resilience_summary()["breaker_states"][victim_id] == "open"
        victim.restart()
        clock.advance(10_000)  # Past breaker recovery: half-open probes.
        for _ in range(3):
            for profile_id in range(100):
                client.get_profile_topk(
                    profile_id, 1, 1, WINDOW, SortType.TOTAL, k=3
                )
        assert (
            client.resilience_summary()["breaker_states"][victim_id] == "closed"
        )

    def test_expired_deadline_fails_single_reads(self, clock):
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        proxies = wrap_region_with_proxies(cluster)
        client = cluster.client(
            "app", resilience=ResilienceConfig(deadline_ms=1.0, hedge=None)
        )
        client.add_profile(5, NOW, 1, 1, 1, {"click": 1})
        cluster.run_background_cycle()
        client.get_profile_topk(5, 1, 1, WINDOW, SortType.TOTAL, k=3)  # Warm.
        # With every node down the first attempt fails, the backoff burns
        # the 1 ms budget on the simulated clock, and the second attempt's
        # deadline check fires instead of retrying forever.
        for proxy in proxies:
            proxy.crash()
        with pytest.raises(DeadlineExceededError):
            client.get_profile_topk(5, 1, 1, WINDOW, SortType.TOTAL, k=3)
        assert client.resilience_summary()["deadline_exceeded"] >= 1

    def test_expired_deadline_fails_batch_keys(self, clock):
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=2, clock=clock)
        proxies = wrap_region_with_proxies(cluster)
        client = cluster.client(
            "app", resilience=ResilienceConfig(deadline_ms=1.0, hedge=None)
        )
        for profile_id in range(8):
            client.add_profile(profile_id, NOW, 1, 1, 1, {"click": 1})
        cluster.run_background_cycle()
        for proxy in proxies:
            proxy.crash()
        batch = client.multi_get_topk(
            list(range(8)), 1, 1, WINDOW, SortType.TOTAL, k=3
        )
        failed = [entry for entry in batch if not entry.ok]
        assert failed, "expected deadline failures in the batch"
        # The batch never raises; expired keys carry the deadline error in
        # their per-key envelope.
        assert any(
            entry.error == "DeadlineExceededError" for entry in failed
        )

    def test_hedging_fires_on_slow_calls(self, clock):
        config = TableConfig(name="t", attributes=("click",))
        cluster = IPSCluster(config, num_nodes=4, clock=clock)
        proxies = wrap_region_with_proxies(cluster)
        client = cluster.client(
            "app",
            resilience=ResilienceConfig(
                hedge=HedgePolicy(threshold_ms=0.0), deadline_ms=None
            ),
        )
        for profile_id in range(50):
            client.add_profile(profile_id, NOW, 1, 1, 1, {"click": 1})
        cluster.run_background_cycle()
        for profile_id in range(50):
            client.get_profile_topk(profile_id, 1, 1, WINDOW, SortType.TOTAL, k=3)
        summary = client.resilience_summary()
        # Threshold 0 means every successful read hedges (4 nodes, so an
        # alternate replica always exists).
        assert summary["hedges_fired"] > 0
        assert summary["hedges_won"] <= summary["hedges_fired"]

    def test_resilient_client_survives_multiregion_outage(self, clock):
        config = TableConfig(name="t", attributes=("click",))
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=2, clock=clock
        )
        wrap_region_with_proxies(deployment)
        client = deployment.client(
            "eu", caller="app", resilience=ResilienceConfig(seed=1)
        )
        for profile_id in range(40):
            client.add_profile(profile_id, NOW, 1, 0, profile_id % 5, {"click": 1})
        deployment.run_background_cycle()
        deployment.fail_region("eu")
        errors = 0
        for profile_id in range(40):
            try:
                client.get_profile_topk(
                    profile_id, 1, 0, WINDOW, SortType.TOTAL, k=3
                )
            except IPSError:
                errors += 1
        assert errors == 0  # us serves everything eu cannot.
        assert client.stats.region_failovers > 0

    def test_region_failover_flag_disables_failover(self, clock):
        config = TableConfig(name="t", attributes=("click",))
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=2, clock=clock
        )
        client = deployment.client("eu", caller="app", region_failover=False)
        for profile_id in range(10):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        deployment.run_background_cycle()
        deployment.fail_region("eu")
        with pytest.raises(IPSError):
            client.get_profile_topk(0, 1, 0, WINDOW, SortType.TOTAL, k=3)
