"""Tests for long-tail shrink (Listing 4 and the three §III-D principles)."""

import pytest

from repro.clock import MILLIS_PER_DAY
from repro.config import ShrinkConfig, SlotShrinkPolicy, TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.core.shrink import Shrinker

NOW = 400 * MILLIS_PER_DAY
SUM = get_aggregate("sum")


def make_shrinker(retain_by_slot, **kwargs):
    table = TableConfig(name="t", attributes=("like", "comment", "share"))
    config = ShrinkConfig.from_mapping(retain_by_slot, **kwargs)
    return Shrinker(table, config)


def profile_with_features(slot, count, likes_fn, day_fn=None):
    """One feature per fid with likes_fn(fid) likes at day_fn(fid) days ago."""
    profile = ProfileData(1, 1000)
    for fid in range(count):
        days_ago = day_fn(fid) if day_fn is not None else 1
        profile.add(
            NOW - days_ago * MILLIS_PER_DAY, slot, 1, fid,
            [likes_fn(fid), 0, 0], SUM,
        )
    return profile


class TestShrinkBudget:
    def test_retains_top_features_by_count(self):
        profile = profile_with_features(1, 10, likes_fn=lambda fid: fid + 1)
        shrinker = make_shrinker({1: 3})
        stats = shrinker.shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {7, 8, 9}  # The three highest like counts.
        assert stats.features_dropped == 7

    def test_under_budget_is_noop(self):
        profile = profile_with_features(1, 3, likes_fn=lambda fid: 1)
        stats = make_shrinker({1: 10}).shrink(profile, NOW)
        assert stats.features_dropped == 0

    def test_unconfigured_slot_untouched(self):
        profile = profile_with_features(5, 10, likes_fn=lambda fid: 1)
        stats = make_shrinker({1: 2}).shrink(profile, NOW)
        assert stats.features_dropped == 0

    def test_default_policy_covers_unlisted_slots(self):
        profile = profile_with_features(5, 10, likes_fn=lambda fid: fid)
        stats = make_shrinker({1: 2}, default_retain=4).shrink(profile, NOW)
        assert stats.features_dropped == 6

    def test_budget_is_profile_wide_not_per_slice(self):
        """A feature spread over many slices counts once against the budget."""
        profile = ProfileData(1, 1000)
        for day in range(5):
            profile.add(NOW - day * MILLIS_PER_DAY, 1, 1, 42, [1, 0, 0], SUM)
        profile.add(NOW, 1, 1, 7, [1, 0, 0], SUM)
        make_shrinker({1: 2}).shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {42, 7}

    def test_empty_slices_removed_after_shrink(self):
        profile = profile_with_features(
            1, 10, likes_fn=lambda fid: fid, day_fn=lambda fid: fid
        )
        make_shrinker({1: 1}).shrink(profile, NOW)
        assert all(not s.is_empty() for s in profile.slices)


class TestMultiDimensionalSorting:
    def test_attribute_weights_rank_importance(self):
        """A share (weight 3) outranks two likes (weight 1 each)."""
        profile = ProfileData(1, 1000)
        profile.add(NOW, 1, 1, 100, [2, 0, 0], SUM)  # Two likes.
        profile.add(NOW, 1, 1, 200, [0, 0, 1], SUM)  # One share.
        shrinker = make_shrinker(
            {1: 1}, attribute_weights={"like": 1.0, "share": 3.0}
        )
        shrinker.shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {200}

    def test_unweighted_uses_total_counts(self):
        profile = ProfileData(1, 1000)
        profile.add(NOW, 1, 1, 100, [2, 0, 0], SUM)
        profile.add(NOW, 1, 1, 200, [0, 0, 1], SUM)
        make_shrinker({1: 1}).shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {100}


class TestDataFreshness:
    def test_fresh_low_count_beats_stale_low_count(self):
        """Freshness principle: same count, recent feature survives."""
        profile = ProfileData(1, 1000)
        profile.add(NOW - 30 * MILLIS_PER_DAY, 1, 1, 100, [1, 0, 0], SUM)
        profile.add(NOW, 1, 1, 200, [1, 0, 0], SUM)
        shrinker = make_shrinker(
            {1: 1}, freshness_half_life_ms=MILLIS_PER_DAY
        )
        shrinker.shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {200}

    def test_strong_old_interest_survives_weak_fad(self):
        """Balance principle: a much-engaged old interest outlives a weak
        recent one — the boost adds at most ~1 virtual count."""
        profile = ProfileData(1, 1000)
        profile.add(NOW - 30 * MILLIS_PER_DAY, 1, 1, 100, [10, 0, 0], SUM)
        profile.add(NOW, 1, 1, 200, [1, 0, 0], SUM)
        shrinker = make_shrinker(
            {1: 1}, freshness_half_life_ms=MILLIS_PER_DAY
        )
        shrinker.shrink(profile, NOW)
        survivors = {
            stat.fid for s in profile.slices for stat in s.features(1, None)
        }
        assert survivors == {100}


class TestShrinkAccounting:
    def test_stats_track_bytes(self):
        profile = profile_with_features(1, 50, likes_fn=lambda fid: fid)
        stats = make_shrinker({1: 5}).shrink(profile, NOW)
        assert stats.features_before == 50
        assert stats.features_after == 5
        assert stats.bytes_saved > 0

    def test_types_shrink_independently(self):
        """The retain budget applies per (slot, type) group."""
        profile = ProfileData(1, 1000)
        for fid in range(4):
            profile.add(NOW, 1, 1, fid, [fid + 1, 0, 0], SUM)
        for fid in range(10, 14):
            profile.add(NOW, 1, 2, fid, [fid, 0, 0], SUM)
        make_shrinker({1: 2}).shrink(profile, NOW)
        type1 = {stat.fid for s in profile.slices for stat in s.features(1, 1)}
        type2 = {stat.fid for s in profile.slices for stat in s.features(1, 2)}
        assert len(type1) == 2 and len(type2) == 2
