"""Extra property tests on query semantics and cross-API consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import TableConfig
from repro.core.decay import exponential_decay, linear_decay
from repro.core.engine import ProfileEngine
from repro.core.query import SortType
from repro.core.timerange import TimeRange

NOW = 400 * MILLIS_PER_DAY

write_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=25 * 24),  # age in hours
        st.integers(min_value=0, max_value=15),  # fid
        st.integers(min_value=1, max_value=50),  # like count
        st.integers(min_value=0, max_value=20),  # comment count
    ),
    min_size=1,
    max_size=50,
)


def build_engine(writes):
    config = TableConfig(name="t", attributes=("like", "comment"))
    engine = ProfileEngine(config, SimulatedClock(NOW))
    for age_hours, fid, likes, comments in writes:
        engine.add_profile(
            1, NOW - age_hours * MILLIS_PER_HOUR, 1, 0, fid, [likes, comments]
        )
    return engine


WINDOW = TimeRange.current(30 * MILLIS_PER_DAY)


class TestDecayProperties:
    @given(write_lists)
    @settings(max_examples=40, deadline=None)
    def test_decayed_counts_never_exceed_raw(self, writes):
        """Decay weights are <= 1, so decayed counts <= raw counts per fid."""
        engine = build_engine(writes)
        raw = {
            r.fid: r.counts
            for r in engine.get_profile_topk(1, 1, 0, WINDOW, k=100)
        }
        decayed = engine.get_profile_decay(
            1, 1, 0, WINDOW, "exponential", decay_factor=MILLIS_PER_DAY
        )
        for row in decayed:
            for index, value in enumerate(row.counts):
                assert value <= raw[row.fid][index]

    @given(write_lists)
    @settings(max_examples=40, deadline=None)
    def test_longer_half_life_decays_less(self, writes):
        engine = build_engine(writes)
        short = {
            r.fid: r.total()
            for r in engine.get_profile_decay(
                1, 1, 0, WINDOW, "exponential", decay_factor=MILLIS_PER_HOUR
            )
        }
        long = {
            r.fid: r.total()
            for r in engine.get_profile_decay(
                1, 1, 0, WINDOW, "exponential", decay_factor=100 * MILLIS_PER_DAY
            )
        }
        for fid, short_total in short.items():
            assert short_total <= long[fid]

    def test_decay_function_monotonicity(self):
        """Both families weight older ages no more than newer ones."""
        for age in range(0, 48):
            newer = age * MILLIS_PER_HOUR
            older = (age + 1) * MILLIS_PER_HOUR
            assert exponential_decay(older, MILLIS_PER_DAY) <= exponential_decay(
                newer, MILLIS_PER_DAY
            )
            assert linear_decay(older, 2 * MILLIS_PER_DAY) <= linear_decay(
                newer, 2 * MILLIS_PER_DAY
            )


class TestCrossAPIConsistency:
    @given(write_lists)
    @settings(max_examples=40, deadline=None)
    def test_filter_true_equals_topk_universe(self, writes):
        """filter(always True) returns exactly the top-K universe."""
        engine = build_engine(writes)
        top = engine.get_profile_topk(1, 1, 0, WINDOW, k=1000)
        filtered = engine.get_profile_filter(1, 1, 0, WINDOW, lambda s: True)
        assert {r.fid for r in top} == {r.fid for r in filtered}
        assert {(r.fid, r.counts) for r in top} == {
            (r.fid, r.counts) for r in filtered
        }

    @given(write_lists)
    @settings(max_examples=40, deadline=None)
    def test_weighted_single_attribute_matches_attribute_sort(self, writes):
        """WEIGHTED with one unit weight ranks exactly like ATTRIBUTE."""
        engine = build_engine(writes)
        by_attribute = engine.get_profile_topk(
            1, 1, 0, WINDOW, SortType.ATTRIBUTE, k=100, sort_attribute="like"
        )
        by_weight = engine.get_profile_topk(
            1, 1, 0, WINDOW, SortType.WEIGHTED, k=100,
            sort_weights={"like": 1.0},
        )
        assert [r.fid for r in by_attribute] == [r.fid for r in by_weight]

    @given(write_lists)
    @settings(max_examples=40, deadline=None)
    def test_current_equals_equivalent_absolute_window(self, writes):
        """A CURRENT range equals the ABSOLUTE window it resolves to."""
        engine = build_engine(writes)
        span = 30 * MILLIS_PER_DAY
        current = engine.get_profile_topk(
            1, 1, 0, TimeRange.current(span), k=100
        )
        absolute = engine.get_profile_topk(
            1, 1, 0, TimeRange.absolute(NOW - span, NOW + 1), k=100
        )
        assert {(r.fid, r.counts) for r in current} == {
            (r.fid, r.counts) for r in absolute
        }

    @given(write_lists)
    @settings(max_examples=30, deadline=None)
    def test_sub_window_counts_bounded_by_full_window(self, writes):
        """Counts over a sub-window never exceed the full window (sum agg)."""
        engine = build_engine(writes)
        full = {
            r.fid: r.total()
            for r in engine.get_profile_topk(1, 1, 0, WINDOW, k=1000)
        }
        sub = engine.get_profile_topk(
            1, 1, 0, TimeRange.current(3 * MILLIS_PER_DAY), k=1000
        )
        for row in sub:
            assert row.total() <= full[row.fid]


class TestBoundaryValues:
    def test_uint64_profile_id_boundary(self):
        config = TableConfig(name="t", attributes=("like",))
        engine = ProfileEngine(config, SimulatedClock(NOW))
        max_id = 2**64 - 1
        engine.add_profile(max_id, NOW, 1, 0, 1, [1])
        assert engine.get_profile_topk(max_id, 1, 0, WINDOW, k=1)
        with pytest.raises(ValueError):
            engine.add_profile(2**64, NOW, 1, 0, 1, [1])
        with pytest.raises(ValueError):
            engine.add_profile(-1, NOW, 1, 0, 1, [1])

    def test_zero_counts_write_is_recorded(self):
        config = TableConfig(name="t", attributes=("like",))
        engine = ProfileEngine(config, SimulatedClock(NOW))
        engine.add_profile(1, NOW, 1, 0, 42, [0])
        results = engine.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert results and results[0].counts == (0,)

    def test_empty_batch_write_is_noop(self):
        config = TableConfig(name="t", attributes=("like",))
        engine = ProfileEngine(config, SimulatedClock(NOW))
        engine.add_profiles(1, NOW, 1, 0, [], [])
        assert engine.get_profile_topk(1, 1, 0, WINDOW, k=1) == []

    def test_last_aggregate_respects_merge_order_in_slices(self):
        """'last' keeps the most recently *merged* value within a slice."""
        config = TableConfig(name="t", attributes=("bid",), aggregate="last")
        engine = ProfileEngine(config, SimulatedClock(NOW))
        engine.add_profile(1, NOW, 1, 0, 42, [100])
        engine.add_profile(1, NOW, 1, 0, 42, [250])
        results = engine.get_profile_topk(1, 1, 0, WINDOW, k=1)
        assert results[0].counts == (250,)

    def test_huge_fid_survives_roundtrip(self):
        from repro.storage import BulkPersistence, InMemoryKVStore

        config = TableConfig(name="t", attributes=("like",))
        engine = ProfileEngine(config, SimulatedClock(NOW))
        huge_fid = 2**63 + 7
        engine.add_profile(1, NOW, 1, 0, huge_fid, [1])
        persistence = BulkPersistence(InMemoryKVStore(), "t")
        persistence.flush(engine.table.get(1))
        loaded = persistence.load(1)
        fids = [
            stat.fid for s in loaded.slices for stat in s.features(1, 0)
        ]
        assert fids == [huge_fid]
