"""Tests for GCache: write-back caching, swap, flush, try_lock skip."""

import threading
import time

import pytest

from repro.cache import GCache
from repro.core.aggregate import get_aggregate
from repro.core.profile import ProfileData
from repro.errors import StorageError
from repro.storage import BulkPersistence, FailureInjector, InMemoryKVStore

SUM = get_aggregate("sum")


def make_profile(profile_id, writes=1):
    profile = ProfileData(profile_id, 1000)
    for index in range(writes):
        profile.add(1_000_000 + index * 1000, 1, 1, index, [1], SUM)
    return profile


def make_cache(capacity=10_000, injector=None, **kwargs):
    store = InMemoryKVStore(failure_injector=injector)
    persistence = BulkPersistence(store, "t")
    cache = GCache(
        load_fn=persistence.load,
        flush_fn=persistence.flush,
        capacity_bytes=capacity,
        swap_threshold=kwargs.pop("swap_threshold", 0.5),
        swap_target=kwargs.pop("swap_target", 0.3),
        **kwargs,
    )
    return cache, persistence, store


class TestBasicOperations:
    def test_put_get_hit(self):
        cache, _, _ = make_cache()
        profile = make_profile(1)
        cache.put(profile)
        assert cache.get(1) is profile
        assert cache.metrics.hits == 1

    def test_miss_on_absent_everywhere(self):
        cache, _, _ = make_cache()
        assert cache.get(99) is None
        assert cache.metrics.misses == 1

    def test_miss_loads_from_storage(self):
        cache, persistence, _ = make_cache()
        persistence.flush(make_profile(7, writes=3))
        loaded = cache.get(7)
        assert loaded is not None and loaded.feature_count() == 3
        assert cache.metrics.loads == 1
        # Second access is a hit.
        cache.get(7)
        assert cache.metrics.hits == 1

    def test_get_resident_never_loads(self):
        cache, persistence, _ = make_cache()
        persistence.flush(make_profile(7))
        assert cache.get_resident(7) is None
        assert cache.metrics.loads == 0

    def test_invalid_configuration_rejected(self):
        store = InMemoryKVStore()
        persistence = BulkPersistence(store, "t")
        with pytest.raises(ValueError):
            GCache(persistence.load, persistence.flush, capacity_bytes=0)
        with pytest.raises(ValueError):
            GCache(
                persistence.load, persistence.flush,
                swap_threshold=0.5, swap_target=0.9,
            )


class TestFlush:
    def test_dirty_entries_flush_to_store(self):
        cache, _, store = make_cache()
        cache.put(make_profile(1))
        cache.put(make_profile(2))
        assert cache.dirty.total_entries() == 2
        flushed = cache.run_flush_once()
        assert flushed == 2
        assert cache.dirty.total_entries() == 0
        assert len(store) == 2

    def test_clean_put_does_not_dirty(self):
        cache, _, store = make_cache()
        cache.put(make_profile(1), dirty=False)
        assert cache.run_flush_once() == 0
        assert len(store) == 0

    def test_mark_dirty_requeues(self):
        cache, _, _ = make_cache()
        cache.put(make_profile(1))
        cache.run_flush_once()
        cache.mark_dirty(1)
        assert cache.dirty.total_entries() == 1

    def test_flush_failure_keeps_entry_dirty(self):
        injector = FailureInjector()
        cache, _, _ = make_cache(injector=injector)
        cache.put(make_profile(1))
        injector.fail_next(1)
        assert cache.run_flush_once() == 0
        assert cache.metrics.flush_failures == 1
        assert cache.dirty.total_entries() == 1
        # Next pass succeeds.
        assert cache.run_flush_once() == 1

    def test_flush_all_drains(self):
        cache, _, _ = make_cache()
        for profile_id in range(10):
            cache.put(make_profile(profile_id))
        assert cache.flush_all() == 10
        assert cache.dirty.total_entries() == 0

    def test_flush_ids_targets_only_given_profiles(self):
        cache, _, store = make_cache()
        cache.put(make_profile(1))
        cache.put(make_profile(2))
        assert cache.flush_ids([1]) == []
        assert len(store) == 1
        assert cache.dirty.total_entries() == 1  # Profile 2 untouched.
        assert 2 in cache.dirty

    def test_flush_ids_reports_failures(self):
        injector = FailureInjector()
        cache, _, _ = make_cache(injector=injector)
        cache.put(make_profile(1))
        injector.fail_next(1)
        assert cache.flush_ids([1]) == [1]
        assert cache.metrics.flush_failures == 1
        assert cache.dirty.total_entries() == 1  # Still queued.
        assert cache.flush_ids([1]) == []  # Next attempt succeeds.
        assert cache.dirty.total_entries() == 0

    def test_flush_ids_skips_clean_and_absent(self):
        cache, _, store = make_cache()
        cache.put(make_profile(1), dirty=False)
        assert cache.flush_ids([1, 99]) == []
        assert len(store) == 0


class TestSwap:
    def test_swap_reduces_memory_to_target(self):
        cache, _, _ = make_cache(capacity=10_000)
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        assert cache.needs_swap()
        evicted = cache.run_swap_once()
        assert evicted > 0
        assert cache.memory_ratio() <= 0.3 + 1e-9

    def test_swap_noop_below_threshold(self):
        cache, _, _ = make_cache(capacity=10_000_000)
        cache.put(make_profile(1))
        assert cache.run_swap_once() == 0

    def test_dirty_eviction_flushes_first(self):
        cache, persistence, store = make_cache(capacity=10_000)
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        cache.run_swap_once()
        # Every evicted profile must be durable.
        evicted_ids = [
            profile_id for profile_id in range(50)
            if cache.get_resident(profile_id) is None
        ]
        assert evicted_ids
        for profile_id in evicted_ids:
            assert persistence.load(profile_id) is not None

    def test_evicted_profile_reloads_on_get(self):
        cache, _, _ = make_cache(capacity=10_000)
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        cache.run_swap_once()
        victim = next(
            profile_id for profile_id in range(50)
            if cache.get_resident(profile_id) is None
        )
        reloaded = cache.get(victim)
        assert reloaded is not None
        assert reloaded.profile_id == victim

    def test_eviction_callback_invoked(self):
        evicted = []
        store = InMemoryKVStore()
        persistence = BulkPersistence(store, "t")
        cache = GCache(
            persistence.load,
            persistence.flush,
            capacity_bytes=10_000,
            swap_threshold=0.5,
            swap_target=0.3,
            evict_callback=lambda profile: evicted.append(profile.profile_id),
        )
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        count = cache.run_swap_once()
        assert len(evicted) == count > 0

    def test_locked_entries_skipped_not_blocked(self):
        """The Fig. 8 try_lock discipline."""
        cache, _, _ = make_cache(capacity=10_000)
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        # Hold every entry's lock: the swap pass must skip them all and
        # return without blocking.
        locks = []
        for profile_id in range(50):
            lock = cache.entry_lock(profile_id)
            lock.acquire()
            locks.append(lock)
        try:
            start = time.monotonic()
            evicted = cache.run_swap_once()
            elapsed = time.monotonic() - start
        finally:
            for lock in locks:
                lock.release()
        assert evicted == 0
        assert cache.metrics.swap_skips > 0
        assert elapsed < 1.0  # No blocking on held locks.

    def test_flush_failure_blocks_eviction(self):
        injector = FailureInjector()
        cache, _, _ = make_cache(capacity=10_000, injector=injector)
        for profile_id in range(50):
            cache.put(make_profile(profile_id))
        injector.fail_next(1000)
        evicted = cache.run_swap_once()
        # Nothing evictable: dirty entries cannot flush, so data stays put.
        assert evicted == 0
        assert cache.resident_count() == 50


class TestBackgroundWorkers:
    def test_workers_flush_and_swap(self):
        cache, _, store = make_cache(capacity=50_000)
        cache.start_workers(num_swap_threads=1, interval_s=0.01)
        try:
            for profile_id in range(100):
                cache.put(make_profile(profile_id))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if cache.dirty.total_entries() == 0 and not cache.needs_swap():
                    break
                time.sleep(0.02)
        finally:
            cache.stop_workers()
        assert cache.dirty.total_entries() == 0
        assert len(store) > 0
        assert not cache.needs_swap()

    def test_flush_thread_count_must_be_multiple(self):
        cache, _, _ = make_cache(dirty_shards=4)
        with pytest.raises(ValueError):
            cache.start_workers(num_flush_threads=3)

    def test_double_start_rejected(self):
        cache, _, _ = make_cache()
        cache.start_workers(interval_s=0.01)
        try:
            with pytest.raises(RuntimeError):
                cache.start_workers()
        finally:
            cache.stop_workers()

    def test_concurrent_writers_and_flushers(self):
        """Stress: serving threads mutate while flushers persist."""
        cache, _, store = make_cache(capacity=1_000_000)
        cache.start_workers(interval_s=0.005)
        errors = []

        def writer(base):
            try:
                for index in range(200):
                    profile_id = base + (index % 20)
                    profile = cache.get(profile_id)
                    if profile is None:
                        profile = make_profile(profile_id)
                        cache.put(profile)
                    else:
                        lock = cache.entry_lock(profile_id)
                        with lock:
                            profile.add(
                                2_000_000 + index, 1, 1, index, [1], SUM
                            )
                        cache.mark_dirty(profile_id)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(base * 100,)) for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.stop_workers()
        assert not errors
        assert cache.dirty.total_entries() == 0
