"""Tests for the operational CLI tools."""

import pytest

from repro.tools.calibration_report import main as calibration_main
from repro.tools.inspect_profile import format_profile, main as inspect_main
from repro.tools.loadgen import main as loadgen_main, run_load


class TestLoadgen:
    def test_run_load_summary_shape(self):
        summary = run_load(
            requests=500, nodes=2, users=100, seed=1, isolation=True
        )
        assert summary["ops_per_second"] > 0
        assert summary["read_p50_ms"] >= 0
        assert summary["write_p50_ms"] >= 0
        assert "cluster @" in summary["report"]

    def test_cli_entrypoint(self, capsys):
        code = loadgen_main(["--requests", "300", "--nodes", "1", "--users", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reads:" in out and "writes:" in out

    def test_no_isolation_flag(self, capsys):
        code = loadgen_main(
            ["--requests", "200", "--nodes", "1", "--users", "50", "--no-isolation"]
        )
        assert code == 0
        assert "isolation=off" in capsys.readouterr().out


class TestCalibrationReport:
    def test_cli_entrypoint(self, capsys):
        code = calibration_main(["--repeats", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-K query" in out
        assert "miss penalty" in out


class TestSnapshotTool:
    def test_cli_round_trip(self, capsys, tmp_path):
        from repro.tools.snapshot_tool import main as snapshot_main

        out_path = tmp_path / "demo.snapshot"
        code = snapshot_main(["--profiles", "30", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "exported 30 profiles" in out
        assert "snapshot round trip OK" in out
        assert out_path.exists()


class TestFiguresToolImportable:
    def test_module_has_figure_builders(self):
        from repro.tools import figures

        for name in ("figure16", "figure17", "figure18", "figure19"):
            assert callable(getattr(figures, name))


class TestInspectProfile:
    def test_cli_entrypoint_plain(self, capsys):
        assert inspect_main([]) == 0
        out = capsys.readouterr().out
        assert "before maintenance" in out
        assert "slices" in out

    def test_cli_entrypoint_with_maintenance(self, capsys):
        assert inspect_main(["--maintain"]) == 0
        out = capsys.readouterr().out
        assert "after maintenance" in out
        assert "compaction:" in out

    def test_format_profile_truncates_long_lists(self):
        from repro.clock import SimulatedClock
        from repro.config import TableConfig
        from repro.core.engine import ProfileEngine

        clock = SimulatedClock(10**9)
        engine = ProfileEngine(TableConfig(name="t", attributes=("c",)), clock)
        for index in range(100):
            engine.add_profile(1, 10**9 - index * 10_000, 1, 0, index, [1])
        text = format_profile(engine.table.get(1), 10**9, limit=5)
        assert "more slices" in text
