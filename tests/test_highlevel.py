"""Tests for the scenario-level FeatureClient (§V-a)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster
from repro.config import TableConfig
from repro.errors import ConfigError
from repro.highlevel import CTRFeature, FeatureClient

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def setup():
    config = TableConfig(
        name="feed", attributes=("impression", "click", "like", "share")
    )
    cluster = IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))
    client = cluster.client("app")
    features = FeatureClient(client, config.attributes)
    return cluster, client, features


class TestTopInterests:
    def test_by_attribute(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW, 1, 0, 10, {"like": 5})
        client.add_profile(1, NOW, 1, 0, 20, {"like": 2})
        cluster.run_background_cycle()
        top = features.top_interests(1, slot=1, by="like", k=1)
        assert top[0].fid == 10

    def test_by_total_when_unspecified(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW, 1, 0, 10, {"like": 1})
        client.add_profile(1, NOW, 1, 0, 20, {"click": 2, "share": 2})
        cluster.run_background_cycle()
        top = features.top_interests(1, slot=1, k=1)
        assert top[0].fid == 20

    def test_unknown_attribute_rejected_early(self, setup):
        _, _, features = setup
        with pytest.raises(ConfigError):
            features.top_interests(1, slot=1, by="bogus")


class TestCTR:
    def test_ctr_computation(self, setup):
        cluster, client, features = setup
        for _ in range(10):
            client.add_profile(1, NOW, 1, 0, 10, {"impression": 1})
        for _ in range(3):
            client.add_profile(1, NOW, 1, 0, 10, {"click": 1})
        client.add_profile(1, NOW, 1, 0, 20, {"impression": 1})
        cluster.run_background_cycle()
        rows = features.ctr(1, slot=1, min_impressions=2)
        assert len(rows) == 1
        assert rows[0] == CTRFeature(fid=10, impressions=10, clicks=3)
        assert rows[0].ctr == pytest.approx(0.3)

    def test_zero_impressions_guard(self):
        assert CTRFeature(fid=1, impressions=0, clicks=0).ctr == 0.0

    def test_window_bounds_ctr(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW - 3 * MILLIS_PER_DAY, 1, 0, 10, {"impression": 5})
        client.add_profile(1, NOW, 1, 0, 10, {"impression": 2, "click": 1})
        cluster.run_background_cycle()
        rows = features.ctr(1, slot=1, hours=24)
        assert rows[0].impressions == 2  # Only the recent write.


class TestRecentAndTrending:
    def test_recent_activity_newest_first(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW - 2 * MILLIS_PER_HOUR, 1, 0, 10, {"click": 9})
        client.add_profile(1, NOW, 1, 0, 20, {"click": 1})
        cluster.run_background_cycle()
        recent = features.recent_activity(1, slot=1, k=2)
        assert recent[0].fid == 20

    def test_trending_prefers_the_last_hour(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW - 5 * MILLIS_PER_HOUR, 1, 0, 10, {"click": 6})
        client.add_profile(1, NOW, 1, 0, 20, {"click": 2})
        cluster.run_background_cycle()
        trending = features.trending(1, slot=1, hours=6, half_life_hours=1.0)
        assert trending[0].fid == 20


class TestEngagementAndLifetime:
    def test_engagement_score_weights(self, setup):
        cluster, client, features = setup
        client.add_profile(1, NOW, 1, 0, 10, {"like": 4})
        client.add_profile(1, NOW, 1, 0, 20, {"share": 2})
        cluster.run_background_cycle()
        ranked = features.engagement_score(
            1, slot=1, weights={"like": 1.0, "share": 5.0}
        )
        assert ranked[0].fid == 20

    def test_engagement_requires_weights(self, setup):
        _, _, features = setup
        with pytest.raises(ConfigError):
            features.engagement_score(1, slot=1, weights={})

    def test_lifetime_favorites_for_dormant_user(self, setup):
        cluster, client, features = setup
        clock = cluster.clock
        client.add_profile(1, NOW, 1, 0, 10, {"like": 3})
        cluster.run_background_cycle()
        clock.advance(200 * MILLIS_PER_DAY)  # The user goes dormant.
        favorites = features.lifetime_favorites(1, slot=1)
        assert favorites and favorites[0].fid == 10
