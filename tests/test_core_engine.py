"""Tests for the single-node ProfileEngine (write/read/maintenance APIs)."""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.config import ShrinkConfig, TableConfig, TruncateConfig
from repro.core.engine import ProfileEngine
from repro.core.query import SortType
from repro.core.timerange import TimeRange
from repro.errors import ConfigError

NOW = 400 * MILLIS_PER_DAY


@pytest.fixture
def clock():
    return SimulatedClock(NOW)


@pytest.fixture
def engine(clock):
    config = TableConfig(name="t", attributes=("like", "comment", "share"))
    return ProfileEngine(config, clock)


class TestWriteAPIs:
    def test_add_profile_with_dict_counts(self, engine):
        engine.add_profile(1, NOW, 1, 1, 42, {"comment": 3})
        results = engine.get_profile_topk(
            1, 1, 1, TimeRange.current(1000), k=1
        )
        assert results[0].counts == (0, 3, 0)

    def test_add_profile_with_vector_counts(self, engine):
        engine.add_profile(1, NOW, 1, 1, 42, [1, 2, 3])
        results = engine.get_profile_topk(1, 1, 1, TimeRange.current(1000), k=1)
        assert results[0].counts == (1, 2, 3)

    def test_short_vector_is_padded_implicitly(self, engine):
        engine.add_profile(1, NOW, 1, 1, 42, [5])
        results = engine.get_profile_topk(1, 1, 1, TimeRange.current(1000), k=1)
        assert results[0].counts[0] == 5

    def test_oversized_vector_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.add_profile(1, NOW, 1, 1, 42, [1, 2, 3, 4])

    def test_unknown_attribute_rejected(self, engine):
        with pytest.raises(ConfigError):
            engine.add_profile(1, NOW, 1, 1, 42, {"bogus": 1})

    def test_add_profiles_batch(self, engine):
        engine.add_profiles(
            1, NOW, 1, 1, [10, 20, 30], [{"like": 1}, {"like": 2}, {"like": 3}]
        )
        results = engine.get_profile_topk(
            1, 1, 1, TimeRange.current(1000), SortType.ATTRIBUTE,
            k=3, sort_attribute="like",
        )
        assert [r.fid for r in results] == [30, 20, 10]

    def test_add_profiles_rejects_misaligned(self, engine):
        with pytest.raises(ValueError):
            engine.add_profiles(1, NOW, 1, 1, [1, 2], [{"like": 1}])


class TestReadAPIs:
    def test_missing_profile_returns_empty(self, engine):
        assert engine.get_profile_topk(999, 1, 1, TimeRange.current(1000)) == []
        assert engine.get_profile_filter(
            999, 1, 1, TimeRange.current(1000), lambda s: True
        ) == []
        assert engine.get_profile_decay(999, 1, 1, TimeRange.current(1000)) == []

    def test_decay_accepts_function_name(self, engine):
        engine.add_profile(1, NOW - MILLIS_PER_HOUR, 1, 1, 42, {"like": 4})
        results = engine.get_profile_decay(
            1, 1, 1, TimeRange.current(MILLIS_PER_DAY),
            decay_function="step", decay_factor=2 * MILLIS_PER_HOUR,
        )
        assert results[0].counts[0] == 4

    def test_decay_rejects_unknown_function(self, engine):
        engine.add_profile(1, NOW, 1, 1, 42, {"like": 1})
        with pytest.raises(ConfigError):
            engine.get_profile_decay(
                1, 1, 1, TimeRange.current(1000), decay_function="bogus"
            )

    def test_filter_predicate(self, engine):
        engine.add_profile(1, NOW, 1, 1, 10, {"like": 1})
        engine.add_profile(1, NOW, 1, 1, 20, {"like": 5})
        results = engine.get_profile_filter(
            1, 1, 1, TimeRange.current(1000), lambda s: s.count_at(0) > 2
        )
        assert [r.fid for r in results] == [20]


class TestMaintenance:
    def test_write_marks_profile_pending_beyond_threshold(self, engine):
        engine.maintenance_slice_threshold = 3
        for hour in range(5):
            engine.add_profile(1, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour, [1])
        assert 1 in engine.pending_maintenance()

    def test_maintain_profile_compacts(self, engine, clock):
        for hour in range(48):
            engine.add_profile(1, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour, [1])
        before = engine.table.get(1).slice_count()
        report = engine.maintain_profile(1)
        after = engine.table.get(1).slice_count()
        assert after < before
        assert report.compaction.merges > 0

    def test_maintain_applies_truncation(self, clock):
        config = TableConfig(
            name="t",
            attributes=("like",),
            truncate=TruncateConfig(max_slices=2),
        )
        engine = ProfileEngine(config, clock)
        for day in range(5):
            engine.add_profile(1, NOW - day * MILLIS_PER_DAY, 1, 1, day, [1])
        report = engine.maintain_profile(1)
        assert engine.table.get(1).slice_count() <= 2
        assert report.truncation.slices_dropped > 0

    def test_maintain_applies_shrink(self, clock):
        config = TableConfig(
            name="t",
            attributes=("like",),
            shrink=ShrinkConfig.from_mapping({1: 2}),
        )
        engine = ProfileEngine(config, clock)
        for fid in range(10):
            engine.add_profile(1, NOW, 1, 1, fid, [fid])
        report = engine.maintain_profile(1)
        assert report.shrink.features_after == 2

    def test_run_maintenance_drains_pending(self, engine):
        engine.maintenance_slice_threshold = 2
        for profile_id in (1, 2, 3):
            for hour in range(4):
                engine.add_profile(
                    profile_id, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour, [1]
                )
        assert len(engine.pending_maintenance()) == 3
        reports = engine.run_maintenance()
        assert len(reports) == 3
        assert engine.pending_maintenance() == frozenset()

    def test_run_maintenance_respects_limit(self, engine):
        engine.maintenance_slice_threshold = 2
        for profile_id in (1, 2, 3):
            for hour in range(4):
                engine.add_profile(
                    profile_id, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour, [1]
                )
        reports = engine.run_maintenance(max_profiles=2)
        assert len(reports) == 2
        assert len(engine.pending_maintenance()) == 1

    def test_maintain_missing_profile_is_noop(self, engine):
        report = engine.maintain_profile(999)
        assert report.compaction is None

    def test_query_results_unchanged_by_compaction(self, engine):
        """Compaction must be invisible to window queries (§III-D)."""
        for hour in range(72):
            engine.add_profile(
                1, NOW - hour * MILLIS_PER_HOUR, 1, 1, hour % 5, {"like": 1}
            )
        window = TimeRange.current(4 * MILLIS_PER_DAY)
        before = engine.get_profile_topk(
            1, 1, 1, window, SortType.ATTRIBUTE, k=10, sort_attribute="like"
        )
        engine.maintain_profile(1)
        after = engine.get_profile_topk(
            1, 1, 1, window, SortType.ATTRIBUTE, k=10, sort_attribute="like"
        )
        assert {(r.fid, r.counts) for r in before} == {
            (r.fid, r.counts) for r in after
        }
