"""Behavior sweep: small public behaviors not covered elsewhere.

These are deliberately tiny, one-behavior-per-test checks on corners of
the public surface (secondary parameters, accounting helpers, shutdown
paths) so regressions in them fail loudly rather than silently.
"""

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from repro.cluster import IPSCluster, MultiRegionDeployment
from repro.config import TableConfig
from repro.core.timerange import TimeRange
from repro.highlevel import FeatureClient

NOW = 400 * MILLIS_PER_DAY
WINDOW = TimeRange.current(MILLIS_PER_DAY)


@pytest.fixture
def cluster():
    config = TableConfig(
        name="t", attributes=("impression", "click", "like")
    )
    return IPSCluster(config, num_nodes=2, clock=SimulatedClock(NOW))


class TestHighLevelSecondaryPaths:
    def test_trending_with_sort_attribute(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 10, {"click": 3, "like": 9})
        client.add_profile(1, NOW, 1, 0, 20, {"click": 8, "like": 1})
        cluster.run_background_cycle()
        features = FeatureClient(client, cluster.config.attributes)
        by_click = features.trending(1, slot=1, by="click")
        assert by_click[0].fid == 20

    def test_top_interests_with_type_filter(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 1, 10, {"click": 1})
        client.add_profile(1, NOW, 1, 2, 20, {"click": 9})
        cluster.run_background_cycle()
        features = FeatureClient(client, cluster.config.attributes)
        only_type_1 = features.top_interests(1, slot=1, type_id=1, by="click")
        assert [r.fid for r in only_type_1] == [10]

    def test_ctr_with_type_none_merges_types(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 1, 10, {"impression": 4, "click": 1})
        client.add_profile(1, NOW, 1, 2, 20, {"impression": 2, "click": 2})
        cluster.run_background_cycle()
        features = FeatureClient(client, cluster.config.attributes)
        rows = features.ctr(1, slot=1, type_id=None)
        assert {row.fid for row in rows} == {10, 20}


class TestRegionAccounting:
    def test_memory_bytes_sums_nodes(self, cluster):
        client = cluster.client("app")
        for profile_id in range(20):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        region_total = cluster.region.memory_bytes()
        node_sum = sum(
            node.memory_bytes() for node in cluster.region.nodes.values()
        )
        assert region_total == node_sum > 0

    def test_repr_mentions_health(self, cluster):
        cluster.region.fail_node("local-node-0")
        text = repr(cluster.region)
        assert "healthy=1" in text
        assert "nodes=2" in text

    def test_heartbeat_without_discovery_is_noop(self):
        from repro.cluster.region import Region
        from repro.storage import InMemoryKVStore

        region = Region(
            "r", TableConfig(name="t", attributes=("c",)),
            InMemoryKVStore(), SimulatedClock(NOW), num_nodes=1,
        )
        region.heartbeat_all()  # Must not raise.


class TestShutdownPaths:
    def test_cluster_shutdown_flushes_everything(self, cluster):
        client = cluster.client("app")
        for profile_id in range(10):
            client.add_profile(profile_id, NOW, 1, 0, 1, {"click": 1})
        cluster.shutdown()
        for node in cluster.region.nodes.values():
            assert node.cache.dirty.total_entries() == 0
            assert node.write_table.pending_count == 0
        assert len(cluster.store) > 0

    def test_deployment_shutdown_covers_every_region(self):
        config = TableConfig(name="t", attributes=("click",))
        deployment = MultiRegionDeployment(
            config, ["us", "eu"], nodes_per_region=1, clock=SimulatedClock(NOW)
        )
        client = deployment.client("us")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        deployment.shutdown()
        for region in deployment.regions.values():
            for node in region.nodes.values():
                assert node.write_table.pending_count == 0


class TestNodeRepr:
    def test_node_repr_shows_residency(self, cluster):
        node = next(iter(cluster.region.nodes.values()))
        assert "resident=0" in repr(node)

    def test_profile_and_table_reprs(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 1, {"click": 1})
        cluster.run_background_cycle()
        node = cluster.region.node_for(1)
        profile = node.engine.table.get(1)
        assert "ProfileData" in repr(profile)
        assert "ProfileTable" in repr(node.engine.table)
        assert "Slice" in repr(profile.slices[0])


class TestClockEdgeCases:
    def test_relative_window_far_future_query(self, cluster):
        """Querying long after the last action via RELATIVE still works."""
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 42, {"click": 1})
        cluster.run_background_cycle()
        cluster.clock.advance(500 * MILLIS_PER_DAY)
        results = client.get_profile_topk(
            1, 1, 0, TimeRange.relative(MILLIS_PER_DAY), k=1
        )
        assert results and results[0].fid == 42

    def test_absolute_window_in_far_past_is_empty(self, cluster):
        client = cluster.client("app")
        client.add_profile(1, NOW, 1, 0, 42, {"click": 1})
        cluster.run_background_cycle()
        results = client.get_profile_topk(
            1, 1, 0, TimeRange.absolute(1000, 2000), k=1
        )
        assert results == []
