"""Property tests: core/query.py against a brute-force oracle.

The query engine's merge is heavily optimised (hash-map merge plus
``heapq.nlargest`` cuts).  The oracle here recomputes every query the
dumb, obviously-correct way — walk *all* slices, check window overlap by
hand, sum counts into a dict, full-sort with an independently written key
— and the two must agree exactly, across randomized profiles, sort types
and time ranges.  All randomness is seeded (no hypothesis needed): the
per-test ``rng`` fixture derives its seed from the test's node id.
"""

from __future__ import annotations

import pytest

from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.config import TableConfig
from repro.core.aggregate import get_aggregate
from repro.core.decay import exponential_decay, linear_decay, step_decay
from repro.core.profile import ProfileData
from repro.core.query import QueryEngine, SortType
from repro.core.timerange import TimeRange

NOW = 400 * MILLIS_PER_DAY
SPAN = 70 * MILLIS_PER_DAY  # writes land in [NOW - SPAN, NOW]
ATTRIBUTES = ("like", "comment", "share")


@pytest.fixture
def config():
    return TableConfig(name="oracle", attributes=ATTRIBUTES)


@pytest.fixture
def query_engine(config):
    return QueryEngine(config, get_aggregate("sum"))


# ----------------------------------------------------------------------
# Random inputs
# ----------------------------------------------------------------------


def random_profile(rng, num_writes: int | None = None) -> ProfileData:
    aggregate = get_aggregate("sum")
    profile = ProfileData(1, write_granularity_ms=6 * MILLIS_PER_HOUR)
    if num_writes is None:
        num_writes = rng.randrange(0, 120)
    for _ in range(num_writes):
        profile.add(
            NOW - rng.randrange(SPAN),
            rng.choice((1, 2)),
            rng.choice((1, 2, 3)),
            rng.randrange(1, 40),
            [rng.randrange(0, 9) for _ in ATTRIBUTES],
            aggregate,
        )
    return profile


def random_time_range(rng) -> TimeRange:
    kind = rng.choice(("current", "relative", "absolute"))
    if kind == "current":
        return TimeRange.current(rng.randrange(1, SPAN))
    if kind == "relative":
        return TimeRange.relative(rng.randrange(1, SPAN))
    start = NOW - rng.randrange(1, SPAN)
    end = start + rng.randrange(1, SPAN)
    return TimeRange.absolute(start, end)


# ----------------------------------------------------------------------
# The oracle: full scan, dict merge, full sort
# ----------------------------------------------------------------------


def oracle_merge(profile, slot, type_id, window, decay=None):
    """fid -> (counts list, last_ts), by brute force over all slices."""
    merged: dict[int, tuple[list[int], int]] = {}
    for profile_slice in profile.slices:
        overlaps = (
            profile_slice.start_ms < window.end_ms
            and profile_slice.end_ms > window.start_ms
        )
        if not overlaps:
            continue
        weight = 1.0
        if decay is not None:
            decay_fn, factor = decay
            midpoint = (profile_slice.start_ms + profile_slice.end_ms) // 2
            weight = decay_fn(max(0, window.end_ms - midpoint), factor)
            if weight <= 0.0:
                continue
        for stat in profile_slice.features(slot, type_id):
            counts = (
                list(stat.counts)
                if weight == 1.0
                else [int(count * weight) for count in stat.counts]
            )
            existing = merged.get(stat.fid)
            if existing is None:
                merged[stat.fid] = (counts, stat.last_timestamp_ms)
            else:
                summed = [a + b for a, b in zip(existing[0], counts)]
                merged[stat.fid] = (
                    summed,
                    max(existing[1], stat.last_timestamp_ms),
                )
    return merged


def oracle_key(sort_type, counts, ts, fid, sort_attribute=None, sort_weights=None):
    total = sum(counts)
    if sort_type is SortType.TOTAL:
        return (total, ts, -fid)
    if sort_type is SortType.TIMESTAMP:
        return (ts, total, -fid)
    if sort_type is SortType.FEATURE_ID:
        return (fid,)
    if sort_type is SortType.ATTRIBUTE:
        index = ATTRIBUTES.index(sort_attribute)
        value = counts[index] if index < len(counts) else 0
        return (value, ts, -fid)
    assert sort_type is SortType.WEIGHTED
    weighted = sum(
        (counts[ATTRIBUTES.index(name)] if ATTRIBUTES.index(name) < len(counts) else 0)
        * weight
        for name, weight in sort_weights.items()
    )
    return (weighted, ts, -fid)


def oracle_topk(merged, sort_type, k, sort_attribute=None, sort_weights=None):
    rows = [
        (fid, tuple(counts), ts) for fid, (counts, ts) in merged.items()
    ]
    rows.sort(
        key=lambda row: oracle_key(
            sort_type, row[1], row[2], row[0], sort_attribute, sort_weights
        ),
        reverse=True,
    )
    return rows[:k]


def as_rows(results):
    return [(r.fid, r.counts, r.last_timestamp_ms) for r in results]


def resolve(profile, time_range):
    return time_range.resolve(NOW, profile.newest_timestamp_ms())


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

SORT_CASES = [
    (SortType.TOTAL, {}),
    (SortType.TIMESTAMP, {}),
    (SortType.FEATURE_ID, {}),
    (SortType.ATTRIBUTE, {"sort_attribute": "comment"}),
    (SortType.WEIGHTED, {"sort_weights": {"share": 3.0, "like": 1.0}}),
]


class TestTopKOracle:
    @pytest.mark.parametrize(
        "sort_type,extra", SORT_CASES, ids=[case[0].value for case in SORT_CASES]
    )
    def test_topk_matches_bruteforce(self, query_engine, rng, sort_type, extra):
        for _ in range(25):
            profile = random_profile(rng)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            k = rng.randrange(1, 50)
            got = query_engine.top_k(
                profile, slot, type_id, time_range, sort_type, k,
                now_ms=NOW, **extra,
            )
            window = resolve(profile, time_range)
            expected = (
                []
                if window is None
                else oracle_topk(
                    oracle_merge(profile, slot, type_id, window),
                    sort_type,
                    k,
                    extra.get("sort_attribute"),
                    extra.get("sort_weights"),
                )
            )
            assert as_rows(got) == expected

    def test_empty_profile_returns_empty(self, query_engine, rng):
        profile = random_profile(rng, num_writes=0)
        for time_range in (
            TimeRange.current(MILLIS_PER_DAY),
            TimeRange.relative(MILLIS_PER_DAY),
        ):
            assert (
                query_engine.top_k(
                    profile, 1, 1, time_range, SortType.TOTAL, 10, now_ms=NOW
                )
                == []
            )


class TestFilterOracle:
    def test_filter_matches_bruteforce(self, query_engine, rng):
        for _ in range(40):
            profile = random_profile(rng)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            threshold = rng.randrange(0, 20)
            got = query_engine.filter(
                profile, slot, type_id, time_range,
                lambda stat: stat.total() > threshold, now_ms=NOW,
            )
            window = resolve(profile, time_range)
            if window is None:
                assert got == []
                continue
            merged = oracle_merge(profile, slot, type_id, window)
            kept = [
                (fid, tuple(counts), ts)
                for fid, (counts, ts) in merged.items()
                if sum(counts) > threshold
            ]
            # get_profile_filter orders by (total, fid) descending.
            kept.sort(key=lambda row: (sum(row[1]), row[0]), reverse=True)
            assert as_rows(got) == kept


class TestDecayOracle:
    @pytest.mark.parametrize(
        "decay_fn,factor",
        [
            (exponential_decay, 7 * MILLIS_PER_DAY),
            (linear_decay, 30 * MILLIS_PER_DAY),
            (step_decay, 10 * MILLIS_PER_DAY),
        ],
        ids=["exponential", "linear", "step"],
    )
    def test_decay_matches_bruteforce(self, query_engine, rng, decay_fn, factor):
        for _ in range(20):
            profile = random_profile(rng)
            time_range = random_time_range(rng)
            slot = rng.choice((1, 2))
            type_id = rng.choice((None, 1, 2, 3))
            k = rng.choice((None, rng.randrange(1, 30)))
            got = query_engine.decay(
                profile, slot, type_id, time_range, decay_fn, factor,
                now_ms=NOW, k=k,
            )
            window = resolve(profile, time_range)
            if window is None:
                assert got == []
                continue
            merged = oracle_merge(
                profile, slot, type_id, window, decay=(decay_fn, factor)
            )
            cut = len(merged) if k is None else k
            expected = oracle_topk(merged, SortType.TOTAL, cut)
            assert as_rows(got) == expected

    def test_decay_with_sort_attribute(self, query_engine, rng):
        for _ in range(10):
            profile = random_profile(rng)
            time_range = random_time_range(rng)
            got = query_engine.decay(
                profile, 1, 1, time_range, exponential_decay,
                7 * MILLIS_PER_DAY, now_ms=NOW, sort_attribute="share",
            )
            window = resolve(profile, time_range)
            if window is None:
                assert got == []
                continue
            merged = oracle_merge(
                profile, 1, 1, window,
                decay=(exponential_decay, 7 * MILLIS_PER_DAY),
            )
            expected = oracle_topk(
                merged, SortType.ATTRIBUTE, len(merged), sort_attribute="share"
            )
            assert as_rows(got) == expected
