"""The README quickstart snippet must actually work.

Documentation rots silently; this test executes the exact flow the
README shows (modulo the placeholder timestamp) so a breaking API change
fails CI instead of the first new user.
"""

from repro import IPSCluster, MILLIS_PER_DAY, SimulatedClock, SortType, TableConfig, TimeRange


def test_readme_quickstart_flow():
    config = TableConfig(name="feed", attributes=("click", "like"))
    cluster = IPSCluster(
        config, num_nodes=4, clock=SimulatedClock(400 * MILLIS_PER_DAY)
    )
    client = cluster.client("my-app")

    now = cluster.clock.now_ms()
    client.add_profile(
        profile_id=1, timestamp_ms=now, slot=0, type_id=0,
        fid=42, counts={"click": 1},
    )
    cluster.run_background_cycle()  # merge write tables, flush cache
    top = client.get_profile_topk(
        1, 0, 0, TimeRange.current(86_400_000),
        SortType.ATTRIBUTE, k=10, sort_attribute="click",
    )
    assert top and top[0].fid == 42


def test_readme_alice_snippet():
    config = TableConfig(
        name="user_profile", attributes=("like", "comment", "share")
    )
    cluster = IPSCluster(
        config, num_nodes=4, clock=SimulatedClock(400 * MILLIS_PER_DAY)
    )
    client = cluster.client(caller="my-app")
    now = cluster.clock.now_ms()
    client.add_profile(1001, now - 10 * MILLIS_PER_DAY, slot=7, type_id=3,
                       fid=111, counts={"like": 1, "comment": 1, "share": 1})
    client.add_profile(1001, now - 2 * MILLIS_PER_DAY, slot=7, type_id=3,
                       fid=222, counts={"like": 2})
    cluster.run_background_cycle()
    top = client.get_profile_topk(
        1001, 7, 3, TimeRange.current(10 * MILLIS_PER_DAY),
        SortType.ATTRIBUTE, k=1, sort_attribute="like",
    )
    assert top[0].fid == 222  # Golden State Warriors
