PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint bench-batch bench-trace dash

## check: lint + tier-1 tests + benchmark smoke runs (batch query, tracing overhead).
check: lint test bench-batch bench-trace

test:
	$(PYTHON) -m pytest -x -q

## lint: fail on direct time.time() usage outside clock.py.
lint:
	$(PYTHON) tools/check_clock_usage.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_query.py --smoke

## bench-trace: tracing must cost <10% enabled and ~0 disabled.
bench-trace:
	$(PYTHON) benchmarks/bench_trace_overhead.py --smoke

## dash: one-screen ASCII observability dashboard over a demo workload.
dash:
	$(PYTHON) -m repro.tools.dashboard
