PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-batch

## check: tier-1 test suite plus the batch-query benchmark smoke run.
check: test bench-batch

test:
	$(PYTHON) -m pytest -x -q

bench-batch:
	$(PYTHON) benchmarks/bench_batch_query.py --smoke
