PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint bench-batch bench-trace bench-recovery chaos crashcheck dash

## check: lint + tier-1 tests + benchmark smoke runs + chaos determinism smoke
## + seeded crash-point recovery schedules.
check: lint test bench-batch bench-trace bench-recovery chaos crashcheck

test:
	$(PYTHON) -m pytest -x -q

## lint: fail on direct time.time() usage outside clock.py.
lint:
	$(PYTHON) tools/check_clock_usage.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_query.py --smoke

## bench-trace: tracing must cost <10% enabled and ~0 disabled.
bench-trace:
	$(PYTHON) benchmarks/bench_trace_overhead.py --smoke

## bench-recovery: WAL replay cost vs length/checkpoint cadence + ack tax.
bench-recovery:
	$(PYTHON) benchmarks/bench_recovery.py --smoke

## chaos: seeded fault-injection smoke — no unhandled exceptions, and two
## same-seed runs must produce byte-identical fault/error counts.
chaos:
	$(PYTHON) -m repro.chaos.smoke

## crashcheck: 20 seeded crash-point schedules — every acked write must
## survive a byte/op-granular node death, same seed replays identically,
## and the oracle must prove it still catches loss with the WAL off.
crashcheck:
	$(PYTHON) -m repro.chaos.crashpoints --seeds 20

## dash: one-screen ASCII observability dashboard over a demo workload.
dash:
	$(PYTHON) -m repro.tools.dashboard
