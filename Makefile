PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint kernel-oracle serialization-oracle invalidation-oracle coverage-core bench-batch bench-kernels bench-trace bench-recovery bench-server chaos crashcheck slo-check bench-history bench-cluster bench-cluster-smoke bench-failover bench-failover-smoke net-smoke dash

## check: lint + tier-1 tests + kernel differential oracle (both backends)
## + result-cache invalidation oracle + coverage floors (core + server +
## obs) + benchmark smoke runs + chaos determinism smoke + seeded
## crash-point recovery schedules + SLO alert falsification + the
## process-cluster socket smoke (real workers, real SIGKILL failover) +
## the replicated-shard failover smoke + the perf-history
## snapshot/regression diff.
check: lint test kernel-oracle serialization-oracle invalidation-oracle coverage-core bench-batch bench-kernels bench-trace bench-recovery bench-server chaos crashcheck slo-check net-smoke bench-cluster-smoke bench-failover-smoke bench-history

test:
	$(PYTHON) -m pytest -x -q

## lint: fail on direct time.time() usage outside clock.py, and on numpy
## imports outside repro.core.kernels.
lint:
	$(PYTHON) tools/check_clock_usage.py
	$(PYTHON) tools/check_numpy_isolation.py

## kernel-oracle: the differential oracle + property suites three ways —
## numpy auto-detected, pinned to the python reference, and with numpy
## forced absent (IPS_KERNEL_DISABLE_NUMPY) so CI proves the numpy-free
## configuration keeps working without uninstalling anything.
kernel-oracle:
	$(PYTHON) -m pytest tests/test_kernel_oracle.py tests/test_kernel_properties.py -q
	IPS_KERNEL_BACKEND=python $(PYTHON) -m pytest tests/test_kernel_oracle.py tests/test_kernel_properties.py -q
	IPS_KERNEL_DISABLE_NUMPY=1 $(PYTHON) -m pytest tests/test_kernel_oracle.py tests/test_kernel_properties.py -q

## serialization-oracle: the zero-copy codec property suites — v2
## array-native round-trips, v1 dict-era bytes decoding losslessly, and
## the structured fuzzer over random corpora.
serialization-oracle:
	$(PYTHON) -m pytest tests/test_serialization_properties.py tests/test_serialization_fuzz.py tests/test_storage_serialization.py -q

## invalidation-oracle: the result-cache differential oracle — seeded
## interleavings of every mutation path against a cache-disabled node,
## byte-identical reads, plus the coalescing concurrency suite.
invalidation-oracle:
	$(PYTHON) -m pytest tests/test_result_cache_oracle.py tests/test_result_cache.py tests/test_server_coalesce.py -q

## coverage-core: stdlib-tracer line coverage over src/repro/core and
## src/repro/server with hard floors (no coverage/pytest-cov in the image).
coverage-core:
	$(PYTHON) tools/check_core_coverage.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_query.py --smoke

## bench-kernels: reference vs columnar kernels across profile sizes and K;
## asserts the 10k-feature top-K speedup gate when numpy is available.
bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py --smoke

## bench-trace: tracing must cost <10% enabled and ~0 disabled.
bench-trace:
	$(PYTHON) benchmarks/bench_trace_overhead.py --smoke

## bench-recovery: WAL replay cost vs length/checkpoint cadence + ack tax.
bench-recovery:
	$(PYTHON) benchmarks/bench_recovery.py --smoke

## bench-server: hot-read path A/B under diurnal Zipf load — gates the
## hot-tier hit ratio (>= 50%) and cached-vs-bare p99, and re-proves the
## cached node byte-identical to the baseline on the whole trace.
bench-server:
	$(PYTHON) benchmarks/bench_server_batching.py --smoke

## chaos: seeded fault-injection smoke — no unhandled exceptions, and two
## same-seed runs must produce byte-identical fault/error counts.
chaos:
	$(PYTHON) -m repro.chaos.smoke

## crashcheck: 20 seeded crash-point schedules — every acked write must
## survive a byte/op-granular node death, same seed replays identically,
## and the oracle must prove it still catches loss with the WAL off.
crashcheck:
	$(PYTHON) -m repro.chaos.crashpoints --seeds 20

## slo-check: burn-rate alerting must be falsifiable — the paper incident
## mix pages within the incident window, a fault-free run never alerts,
## the resilient tenant stays silent, and same-seed alert timelines
## replay byte-identically.
slo-check:
	$(PYTHON) benchmarks/bench_slo_alerts.py --smoke

## net-smoke: socket-transport smoke — the wire codec, registry and
## in-thread worker-server suites (no subprocesses; the subprocess suite
## runs under plain `make test`).
net-smoke:
	$(PYTHON) -m pytest tests/test_net_wire.py tests/test_net_registry.py tests/test_net_transport.py -q

## bench-cluster: process-per-node scale-out over real sockets — spawns
## 1/2/4 worker OS processes, gates 4-worker >= 2x 1-worker throughput on
## machines with >= 4 cores, then SIGKILLs a worker mid-run and gates the
## client-observed error rate < 1% via failover.
bench-cluster:
	$(PYTHON) benchmarks/bench_cluster_scaleout.py

bench-cluster-smoke:
	$(PYTHON) benchmarks/bench_cluster_scaleout.py --smoke

## bench-failover: replicated shards (R=2) under a SIGKILL of the
## roster-ring primary mid-run — gates < 1% client errors, zero
## ok-but-empty reads in the dead primary's key range, a registry
## promotion, hinted-handoff drain on rejoin, delta-proportional
## replication bytes, and same-seed final-state determinism.
bench-failover:
	$(PYTHON) benchmarks/bench_failover.py

bench-failover-smoke:
	$(PYTHON) benchmarks/bench_failover.py --smoke

## bench-history: run the gated benches, record a schema-versioned
## BENCH_<n>.json snapshot, and diff against the committed baseline with
## per-metric tolerance bands (exit 1 on regression).
bench-history:
	$(PYTHON) tools/bench_history.py

## dash: one-screen ASCII observability dashboard over a demo workload.
dash:
	$(PYTHON) -m repro.tools.dashboard
