PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint bench-batch bench-trace chaos dash

## check: lint + tier-1 tests + benchmark smoke runs + chaos determinism smoke.
check: lint test bench-batch bench-trace chaos

test:
	$(PYTHON) -m pytest -x -q

## lint: fail on direct time.time() usage outside clock.py.
lint:
	$(PYTHON) tools/check_clock_usage.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_query.py --smoke

## bench-trace: tracing must cost <10% enabled and ~0 disabled.
bench-trace:
	$(PYTHON) benchmarks/bench_trace_overhead.py --smoke

## chaos: seeded fault-injection smoke — no unhandled exceptions, and two
## same-seed runs must produce byte-identical fault/error counts.
chaos:
	$(PYTHON) -m repro.chaos.smoke

## dash: one-screen ASCII observability dashboard over a demo workload.
dash:
	$(PYTHON) -m repro.tools.dashboard
