"""ASCII line charts for regenerating the paper's figures in a terminal.

The §IV figures are time-series plots (throughput, latency percentiles,
error rate, memory/hit ratio).  :func:`render_chart` draws one or more
named series on a shared time axis using plain characters, so
``python -m repro.tools.figures`` can show the regenerated curves without
any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Series:
    """One named curve: (x, y) points sharing the chart's x axis."""

    name: str
    points: list[tuple[float, float]]
    marker: str = "*"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, round(position * (size - 1))))


def render_chart(
    title: str,
    series_list: list[Series],
    width: int = 72,
    height: int = 14,
    y_label: str = "",
    x_label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render series onto a character grid with axis annotations."""
    populated = [series for series in series_list if series.points]
    if not populated:
        return f"{title}\n(no data)"
    all_x = [x for series in populated for x, _ in series.points]
    all_y = [y for series in populated for _, y in series.points]
    x_low, x_high = min(all_x), max(all_x)
    y_low = y_min if y_min is not None else min(all_y)
    y_high = y_max if y_max is not None else max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series in populated:
        for x, y in series.points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = series.marker

    lines = [title]
    legend = "   ".join(
        f"{series.marker} {series.name}" for series in populated
    )
    lines.append(legend)
    top_label = f"{y_high:,.4g}"
    bottom_label = f"{y_low:,.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis_note = f"x: {x_low:,.4g} .. {x_high:,.4g}"
    if x_label:
        x_axis_note += f" ({x_label})"
    if y_label:
        x_axis_note += f"   y: {y_label}"
    lines.append(" " * (label_width + 2) + x_axis_note)
    return "\n".join(lines)
