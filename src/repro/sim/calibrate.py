"""Calibration: measure real per-operation costs from this implementation.

The simulator's service-time distributions are anchored two ways:

1. **Paper anchors** — Table II and §IV give the production costs (server
   hit ≈ 1 ms p50, miss penalty 2-4 ms, network ≈ 3 ms).
2. **Measured anchors** — this module times the actual Python engine on a
   representative profile (the §III-D production shape: ~62 slices, a few
   hundred features) and derives the Python/C++ scale factor implied by
   the paper's numbers.  DESIGN.md documents this substitution.

Running calibration keeps the simulator honest: if the real query path
regresses badly, the derived factor shifts and the benchmark reports it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from ..config import TableConfig
from ..core.engine import ProfileEngine
from ..core.query import SortType
from ..core.timerange import TimeRange
from ..storage.compression import compress, decompress
from ..storage.serialization import ProfileCodec

#: Server-side cost targets from the paper (milliseconds).
PAPER_SERVER_HIT_P50_MS = 1.0
PAPER_MISS_PENALTY_MS = 3.0  # "cache hit saves approximately 2 to 4 ms"
PAPER_NETWORK_MS = 3.0


@dataclass
class CalibrationResult:
    """Measured single-op costs of this Python implementation."""

    query_topk_ms: float
    write_ms: float
    serialize_ms: float
    deserialize_ms: float
    compress_ms: float
    decompress_ms: float
    profile_bytes: int
    serialized_bytes: int
    #: Kernel backend the query cost was measured under ("python" or
    #: "numpy").  Appended with a default so older positional callers
    #: keep working.
    kernel_backend: str = "python"

    @property
    def python_cpp_factor(self) -> float:
        """How much slower our Python query is than the paper's C++ server.

        The production server answers a feature query in about 1 ms at the
        median; the ratio of our measured query time to that anchors the
        simulator's conversion from measured costs to simulated costs.
        """
        return max(1.0, self.query_topk_ms / PAPER_SERVER_HIT_P50_MS)

    @property
    def miss_penalty_ms(self) -> float:
        """Simulated cache-miss penalty derived from measured load costs.

        A miss pays KV fetch + decompress + deserialize.  We scale the
        measured Python decode cost by the same factor as the query cost,
        then add a fixed KV round-trip of 2 ms, clamped to the paper's
        2-4 ms observation.
        """
        decode_ms = (self.decompress_ms + self.deserialize_ms) / self.python_cpp_factor
        return min(4.0, max(2.0, 2.0 + decode_ms))


def build_representative_profile(
    engine: ProfileEngine, profile_id: int, now_ms: int
) -> None:
    """Write the §III-D production shape: ~60 slices, hundreds of features."""
    for day in range(30):
        timestamp = now_ms - day * MILLIS_PER_DAY
        for hour_step in range(2):
            t = timestamp - hour_step * MILLIS_PER_HOUR
            for feature_index in range(8):
                engine.add_profile(
                    profile_id,
                    t,
                    slot=feature_index % 4,
                    type_id=feature_index % 2,
                    fid=day * 100 + feature_index,
                    counts=[1 + feature_index, day % 3, 1],
                )


def _time_ms(fn, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) * 1000.0 / repeats


def calibrate_service_times(
    repeats: int = 200, seed: int = 0, kernel_backend: str | None = None
) -> CalibrationResult:
    """Measure the real engine and codec costs on the representative profile.

    ``kernel_backend`` pins the query-kernel implementation ("python" or
    "numpy"); the default ``None`` keeps auto-detection, so the derived
    python/C++ factor reflects whatever backend production queries would
    actually use on this install.
    """
    clock = SimulatedClock(start_ms=365 * MILLIS_PER_DAY)
    config = TableConfig(
        name="calibration",
        attributes=("click", "like", "share"),
        kernel_backend=kernel_backend,
    )
    engine = ProfileEngine(config, clock)
    now_ms = clock.now_ms()
    build_representative_profile(engine, profile_id=1, now_ms=now_ms)
    profile = engine.table.get_or_raise(1)

    window = TimeRange.current(30 * MILLIS_PER_DAY)
    query_ms = _time_ms(
        lambda: engine.get_profile_topk(
            1, 1, 1, window, SortType.ATTRIBUTE, k=10, sort_attribute="click"
        ),
        repeats,
    )
    write_counter = iter(range(10_000_000))
    write_ms = _time_ms(
        lambda: engine.add_profile(
            2, now_ms - next(write_counter) % MILLIS_PER_DAY, 1, 1, 7, [1, 0, 0]
        ),
        repeats,
    )
    blob = ProfileCodec.encode_profile(profile)
    compressed = compress(blob)
    serialize_ms = _time_ms(lambda: ProfileCodec.encode_profile(profile), repeats)
    deserialize_ms = _time_ms(lambda: ProfileCodec.decode_profile(blob), repeats)
    compress_ms = _time_ms(lambda: compress(blob), max(10, repeats // 10))
    decompress_ms = _time_ms(lambda: decompress(compressed), repeats)

    return CalibrationResult(
        query_topk_ms=query_ms,
        write_ms=write_ms,
        serialize_ms=serialize_ms,
        deserialize_ms=deserialize_ms,
        compress_ms=compress_ms,
        decompress_ms=decompress_ms,
        profile_bytes=profile.memory_bytes(),
        serialized_bytes=len(compressed),
        kernel_backend=engine.kernel_backend.name,
    )
