"""Discrete-step cluster simulator producing the paper's §IV figures.

The simulator models a fleet of IPS nodes at a time-step granularity
(e.g. one step per 10 simulated minutes).  For each step it:

1. reads the offered QPS from a traffic model (diurnal curve);
2. computes per-node utilisation against the fleet's service capacity;
3. Monte-Carlo samples request latencies from the service-time model —
   lognormal service times, an M/M/1-flavoured queueing wait that grows
   with utilisation, a cache hit/miss mixture, and the network cost for
   client-side views;
4. records p50/p99 into log-bucketed histograms and emits a
   :class:`StepMetrics` row.

Write-path simulation adds the §III-F mechanism explicitly: with
isolation *off*, a write contends with concurrent reads on the main-table
locks, inflating its tail by the read utilisation; with isolation *on*, a
write appends to the write table at near-constant cost.  This is what
produces the paper's "write p99 down ~80 %" claim, mechanistically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from .faults import FaultSchedule
from .metrics import LatencyHistogram


@dataclass
class ServiceProfile:
    """Service-time parameters for one node, in milliseconds.

    Defaults are the paper's anchors; :meth:`from_calibration` rescales
    the shape using measurements of this repository's real code.
    """

    server_hit_p50_ms: float = 1.0
    miss_penalty_ms: float = 3.0
    network_base_ms: float = 3.0
    write_p50_ms: float = 0.5
    #: Lognormal sigma of service times (tail heaviness before queueing).
    service_sigma: float = 0.45
    #: Requests one node can serve per second at 100 % utilisation.  The
    #: production fleet runs with headroom: 40M QPS over 1000+ nodes means
    #: ~2/3 utilisation at peak.
    node_capacity_qps: float = 60_000.0
    #: Fraction of reads answered from cache (Fig. 18: >90 %).
    cache_hit_ratio: float = 0.92

    @classmethod
    def from_calibration(cls, calibration, **overrides) -> "ServiceProfile":
        """Anchor the miss penalty (and keep the documented factor visible)."""
        profile = cls(**overrides)
        profile.miss_penalty_ms = calibration.miss_penalty_ms
        return profile


@dataclass
class StepMetrics:
    """One simulation step's outputs (one point on a §IV figure)."""

    time_ms: int
    offered_qps: float
    utilization: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    error_rate: float
    hit_ratio: float
    memory_ratio: float


@dataclass
class SimulationResult:
    steps: list[StepMetrics] = field(default_factory=list)

    def series(self, attribute: str) -> list[tuple[int, float]]:
        return [(step.time_ms, getattr(step, attribute)) for step in self.steps]

    def peak(self, attribute: str) -> float:
        return max(getattr(step, attribute) for step in self.steps)

    def trough(self, attribute: str) -> float:
        return min(getattr(step, attribute) for step in self.steps)

    def mean(self, attribute: str) -> float:
        values = [getattr(step, attribute) for step in self.steps]
        return sum(values) / len(values)


class ClusterSimulator:
    """Monte-Carlo fleet simulator."""

    def __init__(
        self,
        num_nodes: int = 1000,
        service: ServiceProfile | None = None,
        seed: int = 0,
        samples_per_step: int = 4000,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.num_nodes = num_nodes
        self.service = service if service is not None else ServiceProfile()
        self.samples_per_step = samples_per_step
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Latency sampling primitives
    # ------------------------------------------------------------------

    def _lognormal_ms(self, median_ms: float) -> float:
        sigma = self.service.service_sigma
        return median_ms * math.exp(self._rng.gauss(0.0, sigma))

    def _queue_wait_ms(self, utilization: float, service_mean_ms: float) -> float:
        """M/M/c-flavoured wait.

        With many worker threads per node, the probability of queueing at
        all is far below the utilisation (Erlang-C); ``rho**4`` is a cheap
        proxy with the right behaviour — negligible at low load, steep near
        saturation.  A request that does queue waits ~ rho/(1-rho) service
        times on average.  This is what keeps p50 flat while p99 grows with
        load, the signature shape of Fig. 16.
        """
        rho = min(utilization, 0.97)
        if self._rng.random() >= rho**4:
            return 0.0
        mean_wait = service_mean_ms * rho / (1.0 - rho)
        return self._rng.expovariate(1.0 / mean_wait) if mean_wait > 0 else 0.0

    def _sample_read_ms(
        self, utilization: float, client_side: bool, hit_ratio: float
    ) -> tuple[float, bool]:
        """One read-request latency; returns (latency_ms, was_hit)."""
        hit = self._rng.random() < hit_ratio
        service = self._lognormal_ms(self.service.server_hit_p50_ms)
        if not hit:
            service += self._lognormal_ms(self.service.miss_penalty_ms)
        latency = service + self._queue_wait_ms(
            utilization, self.service.server_hit_p50_ms
        )
        if client_side:
            latency += self.service.network_base_ms + self._rng.uniform(0.0, 0.6)
        return latency, hit

    def _sample_write_ms(
        self,
        utilization: float,
        isolation: bool,
        read_utilization: float,
        client_side: bool,
    ) -> float:
        """One write-request latency.

        Without isolation the write competes with reads on main-table
        locks: a contention wait proportional to the read load joins the
        tail.  With isolation the write appends to the write table and the
        contention term disappears.
        """
        service = self._lognormal_ms(self.service.write_p50_ms)
        latency = service + self._queue_wait_ms(
            utilization, self.service.write_p50_ms
        )
        # A small fraction of writes roll a new slice and trigger the
        # maintenance check (§III-D), paying a few extra milliseconds; this
        # is what keeps write p99 in the paper's 4-6 ms band while p50
        # stays at ~0.5 ms.
        if self._rng.random() < 0.015:
            latency += self._lognormal_ms(3.0)
        if not isolation:
            # Main-table lock contention: with probability proportional to
            # the read load, the write waits behind read-side critical
            # sections (each ~ a read service time).
            contention_p = min(0.9, 0.65 * read_utilization)
            if self._rng.random() < contention_p:
                # Each wait sits behind a read critical section; long merges
                # and top-K sorts make these heavy (~2 ms each), and a write
                # can queue behind several of them.
                waits = 1 + int(self._rng.expovariate(0.45))
                latency += waits * self._lognormal_ms(
                    2.0 * self.service.server_hit_p50_ms
                )
        if client_side:
            latency += self.service.network_base_ms + self._rng.uniform(0.0, 0.6)
        return latency

    # ------------------------------------------------------------------
    # Figure drivers
    # ------------------------------------------------------------------

    def simulate_queries(
        self,
        traffic_model,
        start_ms: int,
        duration_ms: int,
        step_ms: int,
        fault_schedule: FaultSchedule | None = None,
        client_side: bool = False,
    ) -> SimulationResult:
        """Fig. 16 (and Fig. 17 when a fault schedule is given)."""
        result = SimulationResult()
        for time_ms in range(start_ms, start_ms + duration_ms, step_ms):
            offered_qps = traffic_model.qps_at(time_ms)
            utilization = offered_qps / (
                self.num_nodes * self.service.node_capacity_qps
            )
            hit_ratio = self._hit_ratio_at(time_ms)
            histogram = LatencyHistogram()
            hits = 0
            for _ in range(self.samples_per_step):
                latency, hit = self._sample_read_ms(
                    utilization, client_side, hit_ratio
                )
                histogram.record(latency)
                hits += hit
            error_rate = (
                fault_schedule.error_rate_at(time_ms)
                if fault_schedule is not None
                else 0.0
            )
            result.steps.append(
                StepMetrics(
                    time_ms=time_ms,
                    offered_qps=offered_qps,
                    utilization=utilization,
                    p50_ms=histogram.p50,
                    p99_ms=histogram.p99,
                    mean_ms=histogram.mean,
                    error_rate=error_rate,
                    hit_ratio=hits / self.samples_per_step,
                    memory_ratio=self._memory_ratio_at(time_ms),
                )
            )
        return result

    def simulate_writes(
        self,
        traffic_model,
        start_ms: int,
        duration_ms: int,
        step_ms: int,
        isolation: bool = True,
        read_traffic_model=None,
        client_side: bool = False,
    ) -> SimulationResult:
        """Fig. 19: write throughput/latency, with/without isolation."""
        result = SimulationResult()
        for time_ms in range(start_ms, start_ms + duration_ms, step_ms):
            offered_qps = traffic_model.qps_at(time_ms)
            utilization = offered_qps / (
                self.num_nodes * self.service.node_capacity_qps
            )
            read_utilization = (
                read_traffic_model.qps_at(time_ms)
                / (self.num_nodes * self.service.node_capacity_qps)
                if read_traffic_model is not None
                else 0.75
            )
            histogram = LatencyHistogram()
            for _ in range(self.samples_per_step):
                histogram.record(
                    self._sample_write_ms(
                        utilization, isolation, read_utilization, client_side
                    )
                )
            result.steps.append(
                StepMetrics(
                    time_ms=time_ms,
                    offered_qps=offered_qps,
                    utilization=utilization,
                    p50_ms=histogram.p50,
                    p99_ms=histogram.p99,
                    mean_ms=histogram.mean,
                    error_rate=0.0,
                    hit_ratio=0.0,
                    memory_ratio=self._memory_ratio_at(time_ms),
                )
            )
        return result

    def latency_table(
        self, samples: int = 20_000, utilization: float = 0.6
    ) -> dict[str, dict[str, float]]:
        """Table II: client/server query latency split by cache hit/miss."""
        histograms = {
            ("client", True): LatencyHistogram(),
            ("client", False): LatencyHistogram(),
            ("server", True): LatencyHistogram(),
            ("server", False): LatencyHistogram(),
        }
        for _ in range(samples):
            for client_side in (True, False):
                for forced_hit in (True, False):
                    latency, _ = self._sample_read_ms(
                        utilization, client_side, hit_ratio=1.0 if forced_hit else 0.0
                    )
                    histograms[("client" if client_side else "server", forced_hit)].record(
                        latency
                    )
        table: dict[str, dict[str, float]] = {}
        for (side, hit), histogram in histograms.items():
            row = table.setdefault(side, {})
            prefix = "hit" if hit else "miss"
            row[f"{prefix}_p50_ms"] = histogram.p50
            row[f"{prefix}_p99_ms"] = histogram.p99
            row[f"{prefix}_mean_ms"] = histogram.mean
        return table

    # ------------------------------------------------------------------
    # Cache / memory models (Fig. 18)
    # ------------------------------------------------------------------

    def _hit_ratio_at(self, time_ms: int) -> float:
        """Hit ratio wobbles slightly with traffic (new users at peaks)."""
        base = self.service.cache_hit_ratio
        wobble = 0.01 * math.sin(time_ms / 7.2e6)
        return min(1.0, max(0.0, base + wobble + self._rng.uniform(-0.004, 0.004)))

    def _memory_ratio_at(self, time_ms: int) -> float:
        """Sawtooth between swap target (0.80) and threshold (0.85).

        The swap threads let usage creep to the threshold then cut it back
        to the target (§III-C), so cluster memory hovers near 85 %.
        """
        period_ms = 97 * 60_000.0  # Not commensurate with hourly sampling.
        phase = (time_ms % period_ms) / period_ms
        ratio = 0.80 + 0.05 * phase
        return ratio + self._rng.uniform(-0.005, 0.005)
