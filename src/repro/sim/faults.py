"""Fault schedules for the availability experiment (Fig. 17).

A :class:`FaultSchedule` is a list of timed :class:`FaultEvent` entries —
machine crashes, network blips and a data-center failover — each
contributing extra request errors while active.  The client-side retry
policy absorbs most of a fault's impact, which is why the paper's error
ceiling stays near 0.025 % despite real incidents; the schedule models
that by applying a retry-survival factor to each event's raw impact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultEvent:
    """One incident.

    ``raw_error_fraction`` is the fraction of requests that would fail with
    no retries while the event is active; retries reduce the observed rate
    to ``raw_error_fraction * retry_leak`` (the fraction of failures that
    leak past retries).
    """

    start_ms: int
    duration_ms: int
    kind: str  # "node_crash" | "network_blip" | "region_failover"
    raw_error_fraction: float
    retry_leak: float = 0.05

    def active_at(self, time_ms: int) -> bool:
        return self.start_ms <= time_ms < self.start_ms + self.duration_ms

    @property
    def observed_error_fraction(self) -> float:
        return self.raw_error_fraction * self.retry_leak


class FaultSchedule:
    """Composable fault timeline with a background error floor."""

    def __init__(
        self,
        events: list[FaultEvent] | None = None,
        background_error_rate: float = 0.00002,
        seed: int = 0,
    ) -> None:
        self.events = list(events) if events is not None else []
        self.background_error_rate = background_error_rate
        self._seed = seed

    def add(self, event: FaultEvent) -> None:
        self.events.append(event)

    def _noise_at(self, time_ms: int) -> float:
        """Background-noise multiplier derived purely from (seed, time_ms).

        A shared RNG would make the rate depend on *how many times* the
        schedule had been queried; mixing the seed with the timestamp keeps
        ``error_rate_at`` a pure function, so replays and out-of-order
        queries see identical rates.
        """
        mixed = (self._seed * 0x9E3779B97F4A7C15 + int(time_ms)) & (2**64 - 1)
        return random.Random(mixed).uniform(0.2, 1.8)

    def error_rate_at(self, time_ms: int) -> float:
        """Observed client error rate at a moment (after retries)."""
        rate = self.background_error_rate * self._noise_at(time_ms)
        for event in self.events:
            if event.active_at(time_ms):
                rate += event.observed_error_fraction
        return min(rate, 1.0)

    @classmethod
    def production_twenty_days(cls, start_ms: int = 0, seed: int = 0) -> "FaultSchedule":
        """A 20-day schedule shaped like Fig. 17.

        A handful of brief node crashes, a couple of network blips and one
        region failover produce spikes up to ~0.025 % over a <0.01 % floor.
        """
        day = 24 * 3600 * 1000
        rng = random.Random(seed)
        events = []
        # Node crashes: most days see none, a few see one short crash.
        for day_index in (2, 5, 9, 13, 16):
            events.append(
                FaultEvent(
                    start_ms=start_ms + day_index * day + rng.randint(0, day // 2),
                    duration_ms=rng.randint(5, 20) * 60 * 1000,
                    kind="node_crash",
                    raw_error_fraction=0.002,
                    retry_leak=0.05,
                )
            )
        # Network blips: shorter but sharper.
        for day_index in (7, 18):
            events.append(
                FaultEvent(
                    start_ms=start_ms + day_index * day + rng.randint(0, day // 2),
                    duration_ms=rng.randint(2, 6) * 60 * 1000,
                    kind="network_blip",
                    raw_error_fraction=0.004,
                    retry_leak=0.05,
                )
            )
        # One region failover mid-window: the Fig. 17 maximum (~0.025 %).
        events.append(
            FaultEvent(
                start_ms=start_ms + 11 * day + day // 3,
                duration_ms=12 * 60 * 1000,
                kind="region_failover",
                raw_error_fraction=0.005,
                retry_leak=0.05,
            )
        )
        return cls(events, seed=seed)
