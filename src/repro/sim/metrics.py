"""Metric primitives: percentiles, latency histograms, time series."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a sample list."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper or ordered[lower] == ordered[upper]:
        return ordered[lower]
    weight = position - lower
    interpolated = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Guard against float rounding drifting outside the bracketing samples.
    return min(max(interpolated, ordered[lower]), ordered[upper])


class LatencyHistogram:
    """Log-bucketed latency histogram for high-volume percentile tracking.

    Buckets grow geometrically from ``min_ms`` so quantile error stays
    below the growth factor anywhere in the range; memory is O(buckets)
    regardless of sample count, which lets simulation steps record millions
    of request latencies.
    """

    def __init__(
        self,
        min_ms: float = 0.01,
        max_ms: float = 60_000.0,
        growth: float = 1.05,
    ) -> None:
        if not 0 < min_ms < max_ms:
            raise ValueError("need 0 < min_ms < max_ms")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self._min_ms = min_ms
        self._log_growth = math.log(growth)
        self._num_buckets = (
            int(math.log(max_ms / min_ms) / self._log_growth) + 2
        )
        self._counts = [0] * self._num_buckets
        self._total = 0
        self._sum_ms = 0.0
        self._max_seen = 0.0

    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency {latency_ms}")
        self._counts[self._bucket_index(latency_ms)] += 1
        self._total += 1
        self._sum_ms += latency_ms
        if latency_ms > self._max_seen:
            self._max_seen = latency_ms

    def record_many(self, latencies_ms: list[float]) -> None:
        for latency in latencies_ms:
            self.record(latency)

    def _bucket_index(self, latency_ms: float) -> int:
        if latency_ms <= self._min_ms:
            return 0
        index = int(math.log(latency_ms / self._min_ms) / self._log_growth) + 1
        return min(index, self._num_buckets - 1)

    def _bucket_upper_ms(self, index: int) -> float:
        if index == 0:
            return self._min_ms
        return self._min_ms * math.exp(index * self._log_growth)

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (upper bucket edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._total == 0:
            raise ValueError("histogram is empty")
        target = q * self._total
        running = 0
        for index, count in enumerate(self._counts):
            running += count
            if running >= target:
                return min(self._bucket_upper_ms(index), self._max_seen)
        return self._max_seen

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._sum_ms / self._total

    @property
    def max(self) -> float:
        return self._max_seen

    def merge(self, other: "LatencyHistogram") -> None:
        if len(other._counts) != len(self._counts):
            raise ValueError("histograms have incompatible bucket layouts")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._total += other._total
        self._sum_ms += other._sum_ms
        self._max_seen = max(self._max_seen, other._max_seen)


@dataclass
class TimeSeries:
    """A named (time_ms, value) series with small helpers for reporting."""

    name: str
    points: list[tuple[int, float]] = field(default_factory=list)

    def append(self, time_ms: int, value: float) -> None:
        self.points.append((time_ms, value))

    def values(self) -> list[float]:
        return [value for _, value in self.points]

    def min(self) -> float:
        return min(self.values())

    def max(self) -> float:
        return max(self.values())

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values)

    def __len__(self) -> int:
        return len(self.points)
