"""Metric primitives: percentiles, latency histograms, time series.

The log-bucketed histogram lives in :mod:`repro.obs.registry` (the one
histogram implementation in the codebase); ``LatencyHistogram`` is kept
here as a compatibility alias for the simulator and older callers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.registry import Histogram as LatencyHistogram

__all__ = ["LatencyHistogram", "TimeSeries", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a sample list."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper or ordered[lower] == ordered[upper]:
        return ordered[lower]
    weight = position - lower
    interpolated = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Guard against float rounding drifting outside the bracketing samples.
    return min(max(interpolated, ordered[lower]), ordered[upper])


@dataclass
class TimeSeries:
    """A named (time_ms, value) series with small helpers for reporting."""

    name: str
    points: list[tuple[int, float]] = field(default_factory=list)

    def append(self, time_ms: int, value: float) -> None:
        self.points.append((time_ms, value))

    def values(self) -> list[float]:
        return [value for _, value in self.points]

    def min(self) -> float:
        return min(self.values())

    def max(self) -> float:
        return max(self.values())

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values)

    def __len__(self) -> int:
        return len(self.points)
