"""Calibrated cluster simulator (reproduces §IV production metrics).

The paper's evaluation is telemetry from a >1000-machine production
cluster.  A pure-Python process cannot replay 40M QPS, so the macro
figures (16-19 and Table II) come from a discrete-step Monte-Carlo
simulator whose inputs are:

* per-operation service-time distributions, **calibrated against the real
  implementation in this repository** (:mod:`calibrate`) and scaled by a
  documented C++/Python factor;
* the paper's fleet size, cache-hit ratio and traffic curves
  (:mod:`~repro.workload.diurnal`);
* a fault schedule for the availability experiment (:mod:`faults`).

The mechanisms producing the curve *shapes* — queueing delay growing with
utilisation, the hit/miss latency gap, isolation removing write-path
contention — are modelled explicitly, so the simulator reproduces the
paper's qualitative claims rather than just replaying its numbers.
"""

from .calibrate import CalibrationResult, calibrate_service_times
from .driver import ClusterSimulator, ServiceProfile, StepMetrics
from .faults import FaultEvent, FaultSchedule
from .metrics import LatencyHistogram, TimeSeries, percentile

__all__ = [
    "CalibrationResult",
    "ClusterSimulator",
    "FaultEvent",
    "FaultSchedule",
    "LatencyHistogram",
    "ServiceProfile",
    "StepMetrics",
    "TimeSeries",
    "calibrate_service_times",
    "percentile",
]
