"""Configuration objects for IPS tables.

This module parses the JSON-style configurations the paper shows in
Listings 2-4: the *time-dimension* config that drives compaction (which
slice granularity applies to which age band), the *shrink* config that
bounds per-slot feature counts, and the overall per-table configuration
(attribute schema, aggregate function, truncation limits, cache and
persistence settings).

Durations are written as compact strings such as ``"10s"``, ``"5m"``,
``"1h"``, ``"30d"`` and parsed to integer milliseconds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .clock import (
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
)
from .errors import ConfigError

_DURATION_RE = re.compile(r"^(\d+)(ms|s|m|h|d)$")

_UNIT_MS = {
    "ms": 1,
    "s": MILLIS_PER_SECOND,
    "m": MILLIS_PER_MINUTE,
    "h": MILLIS_PER_HOUR,
    "d": MILLIS_PER_DAY,
}


def parse_duration_ms(text: str) -> int:
    """Parse a compact duration string like ``"10m"`` into milliseconds.

    ``"0s"`` is allowed (the paper's configs use it as a band start).

    >>> parse_duration_ms("1s")
    1000
    >>> parse_duration_ms("30d") == 30 * 24 * 3600 * 1000
    True
    """
    match = _DURATION_RE.match(text.strip())
    if match is None:
        raise ConfigError(
            f"invalid duration {text!r}; expected forms like '10s', '5m', '1h'"
        )
    value, unit = match.groups()
    return int(value) * _UNIT_MS[unit]


def format_duration_ms(duration_ms: int) -> str:
    """Render milliseconds back into the most compact duration string."""
    if duration_ms < 0:
        raise ConfigError(f"negative duration: {duration_ms}")
    for unit in ("d", "h", "m", "s"):
        unit_ms = _UNIT_MS[unit]
        if duration_ms >= unit_ms and duration_ms % unit_ms == 0:
            return f"{duration_ms // unit_ms}{unit}"
    return f"{duration_ms}ms"


@dataclass(frozen=True)
class TimeBand:
    """One band of the time-dimension config.

    Profile data whose *age* (relative to now) falls within
    ``[age_start_ms, age_end_ms)`` is kept in slices of ``granularity_ms``.
    """

    granularity_ms: int
    age_start_ms: int
    age_end_ms: int

    def __post_init__(self) -> None:
        if self.granularity_ms <= 0:
            raise ConfigError(
                f"band granularity must be positive, got {self.granularity_ms}"
            )
        if self.age_start_ms < 0 or self.age_end_ms <= self.age_start_ms:
            raise ConfigError(
                f"invalid band age range [{self.age_start_ms}, {self.age_end_ms})"
            )

    def contains_age(self, age_ms: int) -> bool:
        return self.age_start_ms <= age_ms < self.age_end_ms


class TimeDimensionConfig:
    """The paper's Listing 2/3 *time_dimension* configuration.

    Maps slice granularities to the age band they apply to, e.g.::

        TimeDimensionConfig.from_mapping({
            "1s":  ("0s", "1m"),
            "1m":  ("1m", "1h"),
            "1h":  ("1h", "24h"),
            "1d":  ("24h", "30d"),
            "30d": ("30d", "365d"),
        })

    Bands must be contiguous, start at age zero and have non-decreasing
    granularity as age grows (older data is coarser).  Data older than the
    last band's end is eligible for truncation by age.
    """

    def __init__(self, bands: Sequence[TimeBand]) -> None:
        if not bands:
            raise ConfigError("time-dimension config needs at least one band")
        ordered = sorted(bands, key=lambda band: band.age_start_ms)
        if ordered[0].age_start_ms != 0:
            raise ConfigError("first time band must start at age 0")
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.age_start_ms != prev.age_end_ms:
                raise ConfigError(
                    "time bands must be contiguous: "
                    f"band ending at {prev.age_end_ms} followed by band "
                    f"starting at {cur.age_start_ms}"
                )
            if cur.granularity_ms < prev.granularity_ms:
                raise ConfigError(
                    "granularity must not decrease with age: "
                    f"{prev.granularity_ms} then {cur.granularity_ms}"
                )
        self._bands = tuple(ordered)

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Sequence[str]]
    ) -> "TimeDimensionConfig":
        """Build from the Listing-3 JSON shape of granularity -> [start, end]."""
        bands = []
        for granularity, age_range in mapping.items():
            if len(age_range) != 2:
                raise ConfigError(
                    f"band {granularity!r} must map to a [start, end] pair"
                )
            bands.append(
                TimeBand(
                    granularity_ms=parse_duration_ms(granularity),
                    age_start_ms=parse_duration_ms(age_range[0]),
                    age_end_ms=parse_duration_ms(age_range[1]),
                )
            )
        return cls(bands)

    @classmethod
    def production_default(cls) -> "TimeDimensionConfig":
        """The widely used production config from the paper's Listing 3."""
        return cls.from_mapping(
            {
                "1s": ("0s", "1m"),
                "1m": ("1m", "1h"),
                "1h": ("1h", "24h"),
                "1d": ("24h", "30d"),
                "30d": ("30d", "365d"),
            }
        )

    @property
    def bands(self) -> tuple[TimeBand, ...]:
        return self._bands

    @property
    def horizon_ms(self) -> int:
        """Age beyond which data falls outside every band."""
        return self._bands[-1].age_end_ms

    def granularity_for_age(self, age_ms: int) -> int | None:
        """Return the slice granularity for data of the given age.

        Ages below zero (timestamps in the future) use the finest band;
        ages beyond the horizon return ``None`` (truncation territory).
        """
        if age_ms < 0:
            return self._bands[0].granularity_ms
        for band in self._bands:
            if band.contains_age(age_ms):
                return band.granularity_ms
        return None

    def to_mapping(self) -> dict[str, list[str]]:
        """Inverse of :meth:`from_mapping`, useful for hot-reload round trips."""
        return {
            format_duration_ms(band.granularity_ms): [
                format_duration_ms(band.age_start_ms),
                format_duration_ms(band.age_end_ms),
            ]
            for band in self._bands
        }


@dataclass(frozen=True)
class SlotShrinkPolicy:
    """Retention policy for one slot in the shrink config.

    ``retain_features`` bounds how many features survive per (slot, type)
    group.  ``attribute_weights`` implements the paper's multi-dimensional
    sorting: each action attribute contributes its count times its weight to
    a feature's importance score.  ``freshness_half_life_ms`` implements the
    data-freshness principle: recent features get a recency boost that decays
    with this half life (``None`` disables the boost).
    """

    retain_features: int
    attribute_weights: Mapping[str, float] | None = None
    freshness_half_life_ms: int | None = None

    def __post_init__(self) -> None:
        if self.retain_features < 0:
            raise ConfigError(
                f"retain_features must be >= 0, got {self.retain_features}"
            )
        if self.freshness_half_life_ms is not None and self.freshness_half_life_ms <= 0:
            raise ConfigError("freshness_half_life_ms must be positive")


class ShrinkConfig:
    """The paper's Listing-4 shrink configuration: per-slot retain counts."""

    def __init__(
        self,
        slot_policies: Mapping[int, SlotShrinkPolicy],
        default_policy: SlotShrinkPolicy | None = None,
    ) -> None:
        self._slot_policies = dict(slot_policies)
        self._default_policy = default_policy

    @classmethod
    def from_mapping(
        cls,
        retain_by_slot: Mapping[int, int],
        default_retain: int | None = None,
        attribute_weights: Mapping[str, float] | None = None,
        freshness_half_life_ms: int | None = None,
    ) -> "ShrinkConfig":
        """Build from the simple slot -> retain-count shape of Listing 4."""
        policies = {
            slot: SlotShrinkPolicy(
                retain_features=count,
                attribute_weights=attribute_weights,
                freshness_half_life_ms=freshness_half_life_ms,
            )
            for slot, count in retain_by_slot.items()
        }
        default = None
        if default_retain is not None:
            default = SlotShrinkPolicy(
                retain_features=default_retain,
                attribute_weights=attribute_weights,
                freshness_half_life_ms=freshness_half_life_ms,
            )
        return cls(policies, default)

    def policy_for_slot(self, slot: int) -> SlotShrinkPolicy | None:
        """Return the policy for a slot, or ``None`` if the slot is unbounded."""
        return self._slot_policies.get(slot, self._default_policy)

    @property
    def slot_policies(self) -> Mapping[int, SlotShrinkPolicy]:
        return dict(self._slot_policies)


@dataclass(frozen=True)
class TruncateConfig:
    """Truncation limits (Fig. 11): drop whole slices beyond these bounds.

    ``max_slices`` keeps only the newest N slices; ``max_age_ms`` drops
    slices that end before ``now - max_age_ms``.  ``None`` disables a bound.
    """

    max_slices: int | None = None
    max_age_ms: int | None = None

    def __post_init__(self) -> None:
        if self.max_slices is not None and self.max_slices < 0:
            raise ConfigError(f"max_slices must be >= 0, got {self.max_slices}")
        if self.max_age_ms is not None and self.max_age_ms <= 0:
            raise ConfigError(f"max_age_ms must be positive, got {self.max_age_ms}")


@dataclass
class TableConfig:
    """Complete configuration of one IPS table.

    ``attributes`` is the ordered schema of per-feature action counters
    (e.g. ``("like", "comment", "share")``); feature count vectors are
    stored aligned to this order.  ``aggregate`` names the pre-configured
    reduce function used when merging slices and answering queries.
    """

    name: str
    attributes: Sequence[str] = ("click",)
    aggregate: str = "sum"
    time_dimension: TimeDimensionConfig = field(
        default_factory=TimeDimensionConfig.production_default
    )
    truncate: TruncateConfig = field(default_factory=TruncateConfig)
    shrink: ShrinkConfig | None = None
    fine_grained_persistence: bool = False
    #: Columnar kernel backend for this table's query/compaction hot loops:
    #: "python" (reference), "numpy" (columnar), "auto"/None (env override
    #: via IPS_KERNEL_BACKEND, else numpy when available).  See
    #: repro.core.kernels for the selection rules and guarantees.
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("table name must be non-empty")
        if not self.attributes:
            raise ConfigError("table needs at least one attribute")
        seen = set()
        for attribute in self.attributes:
            if attribute in seen:
                raise ConfigError(f"duplicate attribute {attribute!r}")
            seen.add(attribute)
        self.attributes = tuple(self.attributes)
        if self.kernel_backend is not None and not isinstance(
            self.kernel_backend, str
        ):
            raise ConfigError(
                "kernel_backend must be a backend name or None, "
                f"got {self.kernel_backend!r}"
            )

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    def attribute_index(self, attribute: str) -> int:
        """Map an attribute name to its index in stored count vectors."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise ConfigError(
                f"unknown attribute {attribute!r}; table {self.name!r} "
                f"defines {list(self.attributes)}"
            ) from None
