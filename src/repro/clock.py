"""Clock abstractions.

All timestamps in this library are integer **milliseconds** since the Unix
epoch.  Components never call ``time.time()`` directly; they hold a
:class:`Clock` so that CURRENT/RELATIVE time ranges, cache aging, compaction
scheduling and the cluster simulator are fully deterministic under test.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable

MILLIS_PER_SECOND = 1000
MILLIS_PER_MINUTE = 60 * MILLIS_PER_SECOND
MILLIS_PER_HOUR = 60 * MILLIS_PER_MINUTE
MILLIS_PER_DAY = 24 * MILLIS_PER_HOUR


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current time in epoch milliseconds."""

    def now_ms(self) -> int:
        """Return the current time in integer milliseconds."""
        ...


def perf_ms() -> float:
    """Monotonic high-resolution wall milliseconds.

    The one sanctioned escape hatch for *measuring real compute cost*
    (span durations, handler service times, benchmark walls): everything
    that needs a timestamp holds a :class:`Clock`; everything that needs a
    duration calls this, so ``time`` stays quarantined in this module
    (enforced by ``tools/check_clock_usage.py``).
    """
    return time.perf_counter() * MILLIS_PER_SECOND


class SystemClock:
    """Wall-clock backed :class:`Clock` used in production paths."""

    def now_ms(self) -> int:
        return int(time.time() * MILLIS_PER_SECOND)

    def perf_ms(self) -> float:
        """High-resolution monotonic milliseconds for duration measurement."""
        return perf_ms()


class SimulatedClock:
    """Manually advanced clock for tests and the cluster simulator.

    The clock is monotonic: :meth:`advance` refuses to move backwards, and
    :meth:`set_time` only accepts times at or after the current one.  It is
    thread-safe so the GCache background workers can share it with a driver.
    """

    def __init__(self, start_ms: int = 0) -> None:
        if start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {start_ms}")
        self._now_ms = start_ms
        self._lock = threading.Lock()

    def now_ms(self) -> int:
        with self._lock:
            return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Move the clock forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance by negative delta {delta_ms}")
        with self._lock:
            self._now_ms += delta_ms
            return self._now_ms

    def set_time(self, now_ms: int) -> None:
        """Jump the clock forward to an absolute time."""
        with self._lock:
            if now_ms < self._now_ms:
                raise ValueError(
                    f"clock cannot move backwards: {now_ms} < {self._now_ms}"
                )
            self._now_ms = now_ms
