"""Process-wide metrics registry: counters, gauges, latency histograms.

Production IPS is observed through fleet dashboards built from per-node
counters and latency percentiles (Figs. 16-19, Table II).  This module is
the single telemetry surface behind those rollups:

* :class:`Counter` / :class:`Gauge` — monotonic and instantaneous values;
* :class:`Histogram` — the **one** histogram implementation in the
  codebase: fixed-size log-bucketed, O(buckets) memory regardless of
  sample count, with p50/p95/p99 quantile estimates.  ``sim.metrics``
  re-exports it as ``LatencyHistogram`` and ``RPCStats`` /
  ``BatchQueryMetrics`` build on it.  Histograms optionally carry
  **exemplars**: ``record(value, trace_id=...)`` remembers the most
  recent ``(trace_id, value)`` per bucket (memory stays O(buckets)),
  so a slow exposition bucket links to one concrete trace retained by
  the tail sampler (:mod:`repro.obs.tail`);
* :class:`MetricsRegistry` — named, labelled metric families with a
  Prometheus-style text exposition (:meth:`MetricsRegistry.render_text`)
  and a JSON export (:meth:`MetricsRegistry.to_json`).  Label values are
  escaped per the Prometheus line format, ``# HELP`` / ``# TYPE`` are
  emitted exactly once per family, and bucket lines carry OpenMetrics
  ``# {trace_id="..."} value`` exemplar suffixes when present.

Metric objects are handed out once and then mutated lock-free on the hot
path; only family creation takes the registry lock.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable

#: Canonical cumulative bucket edges (ms) used by the text exposition so a
#: scrape line-count stays small even though internal buckets are fine.
EXPOSITION_EDGES = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
)

#: Quantiles every histogram family reports in expositions and JSON.
EXPOSITION_QUANTILES = (0.5, 0.95, 0.99)


class Histogram:
    """Log-bucketed histogram for high-volume quantile tracking.

    Buckets grow geometrically from ``min_ms`` so quantile error stays
    below the growth factor anywhere in the range; memory is O(buckets)
    regardless of sample count, which lets simulation steps record millions
    of request latencies.  Values need not be latencies — with
    ``min_ms=1, growth=2`` the buckets are exact powers of two, which is
    how batch-size and fan-out distributions are tracked.
    """

    def __init__(
        self,
        min_ms: float = 0.01,
        max_ms: float = 60_000.0,
        growth: float = 1.05,
    ) -> None:
        if not 0 < min_ms < max_ms:
            raise ValueError("need 0 < min_ms < max_ms")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self._min_ms = min_ms
        self._log_growth = math.log(growth)
        self._num_buckets = (
            int(math.log(max_ms / min_ms) / self._log_growth) + 2
        )
        self._counts = [0] * self._num_buckets
        self._total = 0
        self._sum_ms = 0.0
        self._max_seen = 0.0
        #: bucket index -> (trace_id, value): latest exemplar per bucket.
        #: Lazily allocated so exemplar-free histograms pay nothing; bounded
        #: by the bucket count, never by the sample count.
        self._exemplars: dict[int, tuple[str, float]] | None = None

    def record(self, latency_ms: float, trace_id: str | None = None) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency {latency_ms}")
        index = self._bucket_index(latency_ms)
        self._counts[index] += 1
        self._total += 1
        self._sum_ms += latency_ms
        if latency_ms > self._max_seen:
            self._max_seen = latency_ms
        if trace_id is not None:
            if self._exemplars is None:
                self._exemplars = {}
            self._exemplars[index] = (trace_id, latency_ms)

    #: Prometheus-style alias so instrumentation code reads idiomatically.
    observe = record

    def record_many(self, latencies_ms: Iterable[float]) -> None:
        for latency in latencies_ms:
            self.record(latency)

    def _bucket_index(self, latency_ms: float) -> int:
        if latency_ms <= self._min_ms:
            return 0
        index = int(math.log(latency_ms / self._min_ms) / self._log_growth) + 1
        return min(index, self._num_buckets - 1)

    def _bucket_upper_ms(self, index: int) -> float:
        if index == 0:
            return self._min_ms
        return self._min_ms * math.exp(index * self._log_growth)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (upper bucket edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._total == 0:
            raise ValueError("histogram is empty")
        target = q * self._total
        running = 0
        for index, count in enumerate(self._counts):
            running += count
            if running >= target:
                return min(self._bucket_upper_ms(index), self._max_seen)
        return self._max_seen

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100] (same scale as
        :func:`repro.sim.metrics.percentile`)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        return self.quantile(q / 100.0)

    def count_le(self, value_ms: float) -> int:
        """Samples at or below ``value_ms`` (cumulative exposition count).

        Resolution is one bucket: a bucket straddling ``value_ms`` counts
        fully once its upper edge is within the log-growth factor.
        """
        running = 0
        for index, count in enumerate(self._counts):
            if count and self._bucket_upper_ms(index) > value_ms:
                break
            running += count
        return running

    # -- exemplars ------------------------------------------------------

    def exemplars(self) -> list[tuple[float, str, float]]:
        """(bucket_upper_ms, trace_id, value) per populated exemplar slot,
        in bucket order.  Bounded by the bucket count."""
        if not self._exemplars:
            return []
        return [
            (self._bucket_upper_ms(index), trace_id, value)
            for index, (trace_id, value) in sorted(self._exemplars.items())
        ]

    def exemplar_count(self) -> int:
        """Number of exemplar slots in use (the bounded-memory measure)."""
        return len(self._exemplars) if self._exemplars else 0

    def max_exemplar(self) -> tuple[str, float] | None:
        """The exemplar from the highest populated bucket — the concrete
        trace behind the histogram's tail."""
        if not self._exemplars:
            return None
        return self._exemplars[max(self._exemplars)]

    def exemplar_in_range(
        self, low_ms: float, high_ms: float
    ) -> tuple[str, float] | None:
        """Newest exemplar whose value falls in ``(low_ms, high_ms]``
        (the OpenMetrics rule for attaching exemplars to a cumulative
        bucket line)."""
        if not self._exemplars:
            return None
        best: tuple[str, float] | None = None
        for index in sorted(self._exemplars):
            trace_id, value = self._exemplars[index]
            if low_ms < value <= high_ms:
                best = (trace_id, value)
        return best

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper_edge_ms, count) for every populated bucket, in order."""
        return [
            (self._bucket_upper_ms(index), count)
            for index, count in enumerate(self._counts)
            if count
        ]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        """Exact sum of recorded values (not bucket-approximated)."""
        return self._sum_ms

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._sum_ms / self._total

    @property
    def max(self) -> float:
        return self._max_seen

    def merge(self, other: "Histogram") -> None:
        if len(other._counts) != len(self._counts):
            raise ValueError("histograms have incompatible bucket layouts")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._total += other._total
        self._sum_ms += other._sum_ms
        self._max_seen = max(self._max_seen, other._max_seen)
        if other._exemplars:
            if self._exemplars is None:
                self._exemplars = {}
            self._exemplars.update(other._exemplars)

    def summary(self) -> dict[str, float]:
        """Quantile summary used by the JSON export and the dashboard."""
        if self._total == 0:
            return {"count": 0.0, "sum": 0.0}
        return {
            "count": float(self._total),
            "sum": self._sum_ms,
            "mean": self.mean,
            "max": self._max_seen,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Instantaneous value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: label-set key: sorted (name, value) pairs.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus line-format escaping: backslash, double quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (for exposition parsers)."""
    out: list[str] = []
    it = iter(value)
    for char in it:
        if char != "\\":
            out.append(char)
            continue
        escaped = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, "\\" + escaped))
    return "".join(out)


def _render_labels(pairs: Iterable[tuple[str, str]]) -> str:
    body = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in pairs
    )
    return f"{{{body}}}" if body else ""


class _Family:
    """All metrics sharing one name (one per label-set)."""

    __slots__ = ("name", "kind", "metrics", "help")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.help: str | None = None
        self.metrics: dict[_LabelKey, Counter | Gauge | Histogram] = {}


def _exemplar_suffix(metric: Histogram, low_ms: float, high_ms: float) -> str:
    """OpenMetrics exemplar suffix for one cumulative bucket line."""
    exemplar = metric.exemplar_in_range(low_ms, high_ms)
    if exemplar is None:
        return ""
    trace_id, value = exemplar
    return f' # {{trace_id="{escape_label_value(trace_id)}"}} {value:g}'


class MetricsRegistry:
    """Named, labelled metric families with text and JSON expositions.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes the metric kind for that name, later calls return the same
    object for the same label set.  Hot paths should hold onto the returned
    object rather than re-looking it up per request.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _get_or_create(self, name: str, kind: str, factory, labels: dict):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            metric = family.metrics.get(key)
            if metric is None:
                metric = factory()
                family.metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(name, "gauge", Gauge, labels)

    def histogram(
        self,
        name: str,
        min_ms: float = 0.01,
        max_ms: float = 60_000.0,
        growth: float = 1.05,
        **labels: str,
    ) -> Histogram:
        factory = lambda: Histogram(min_ms=min_ms, max_ms=max_ms, growth=growth)
        return self._get_or_create(name, "histogram", factory, labels)

    def describe(self, name: str, help_text: str) -> None:
        """Attach ``# HELP`` text to a family (created lazily if needed is
        not supported — describe after the first metric registration)."""
        family = self._families.get(name)
        if family is None:
            raise ValueError(f"unknown metric family {name!r}")
        family.help = help_text

    def get(self, name: str, **labels: str):
        """Existing metric or None (no creation; for tests and tooling)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.metrics.get(_label_key(labels))

    def families(self) -> list[tuple[str, str]]:
        """(name, kind) for every registered family, sorted by name."""
        return sorted(
            (family.name, family.kind) for family in self._families.values()
        )

    def histograms(
        self, name: str
    ) -> list[tuple[Histogram, dict[str, str]]]:
        """Every histogram of a family with its labels, label-key-sorted.

        For tests and tooling (e.g. resolving a family's exemplars);
        returns ``[]`` for unknown or non-histogram families.
        """
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            return []
        return [
            (metric, dict(key))
            for key, metric in sorted(family.metrics.items())
        ]

    # ------------------------------------------------------------------
    # Expositions
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus-style text exposition.

        Histograms emit cumulative ``_bucket`` lines at the canonical
        :data:`EXPOSITION_EDGES`, exact ``_sum`` / ``_count``, and summary
        ``{quantile="..."}`` lines so a scrape carries p50/p95/p99 without
        the consumer re-deriving them from buckets.  A bucket whose value
        range holds an exemplar carries it as an OpenMetrics suffix
        (``... 17 # {trace_id="t-00000003"} 41.2``); ``# HELP`` (when
        described) and ``# TYPE`` appear exactly once per family, and
        label values are escaped per the line format.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help is not None:
                help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.metrics):
                metric = family.metrics[key]
                if isinstance(metric, (Counter, Gauge)):
                    lines.append(
                        f"{name}{_render_labels(key)} {metric.value:g}"
                    )
                    continue
                previous_edge = 0.0
                for edge in EXPOSITION_EDGES:
                    cumulative = metric.count_le(edge)
                    pairs = key + (("le", f"{edge:g}"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(pairs)} {cumulative}"
                        f"{_exemplar_suffix(metric, previous_edge, edge)}"
                    )
                    previous_edge = edge
                pairs = key + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_render_labels(pairs)} {metric.count}"
                    f"{_exemplar_suffix(metric, previous_edge, math.inf)}"
                )
                lines.append(f"{name}_sum{_render_labels(key)} {metric.sum:g}")
                lines.append(f"{name}_count{_render_labels(key)} {metric.count}")
                if metric.count:
                    for q in EXPOSITION_QUANTILES:
                        pairs = key + (("quantile", f"{q:g}"),)
                        lines.append(
                            f"{name}{_render_labels(pairs)} "
                            f"{metric.quantile(q):g}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: int | None = None) -> str:
        """JSON export: one entry per (family, label-set)."""
        out: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            entries = []
            for key in sorted(family.metrics):
                metric = family.metrics[key]
                labels = dict(key)
                if isinstance(metric, (Counter, Gauge)):
                    entries.append({"labels": labels, "value": metric.value})
                else:
                    entry = {"labels": labels, **metric.summary()}
                    exemplars = metric.exemplars()
                    if exemplars:
                        entry["exemplars"] = [
                            {"le": upper, "trace_id": trace_id, "value": value}
                            for upper, trace_id, value in exemplars
                        ]
                    entries.append(entry)
            out[name] = {"type": family.kind, "metrics": entries}
        return json.dumps(out, indent=indent, sort_keys=True)
