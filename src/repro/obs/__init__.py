"""Observability: request tracing and the unified metrics registry.

See :mod:`repro.obs.trace` for the span/tracer API and
:mod:`repro.obs.registry` for counters, gauges, histograms and the
Prometheus-style / JSON expositions.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "render_span_tree",
]
