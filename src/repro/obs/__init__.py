"""Observability: tracing, metrics, tail sampling, and SLO judgment.

See :mod:`repro.obs.trace` for the span/tracer API,
:mod:`repro.obs.registry` for counters, gauges, histograms (with
exemplars) and the Prometheus-style / JSON expositions,
:mod:`repro.obs.tail` for bounded-memory tail-based trace sampling, and
:mod:`repro.obs.slo` for declared objectives, error budgets, and
multi-window burn-rate alerts.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    unescape_label_value,
)
from .slo import Alert, BurnRateRule, SLObjective, SLOEngine, default_rules
from .tail import TailSampler
from .trace import NULL_TRACER, NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "Alert",
    "BurnRateRule",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SLObjective",
    "SLOEngine",
    "Span",
    "TailSampler",
    "Tracer",
    "default_rules",
    "escape_label_value",
    "render_span_tree",
    "unescape_label_value",
]
