"""Tail-based trace sampling: keep full span trees only when they matter.

Head sampling (keep every Nth request) is useless for debugging tail
latency — the interesting requests are by definition rare.  A
:class:`TailSampler` decides *after* a request finishes whether its span
tree is worth retaining, using the information only available at the
tail: did it error, was it chaos-afflicted, did the client hedge, was it
slow?  Everything else is dropped, so memory stays bounded by
``max_traces`` regardless of traffic volume.

The sampler plugs into :class:`~repro.obs.trace.Tracer` via the
``tail_sampler`` constructor argument; the tracer calls
:meth:`TailSampler.offer` for every finished root span.  Retained traces
are looked up by trace id — the same ids that
:class:`~repro.obs.registry.Histogram` exemplars carry, so a slow
exposition bucket resolves to a concrete retained trace.

Retention reasons, in precedence order (a trace gets exactly one):

``error``   any span in the tree finished with a non-ok status
``chaos``   any span carries a ``chaos=<kind>`` tag (set by the fault
            injection seams when they fire)
``hedged``  any span carries a ``hedged`` tag (set by the resilient
            client when a backup request was launched)
``slow``    the tracer's slow threshold flagged the root

Deterministic by construction: no wall clock, no randomness — retention
depends only on the span tree, so same-seed runs retain the same traces.
"""

from __future__ import annotations

from collections import OrderedDict

from .registry import MetricsRegistry

#: Precedence order for retention reasons (first match wins).
REASONS = ("error", "chaos", "hedged", "slow")


class TailSampler:
    """Bounded-memory store of interesting span trees, keyed by trace id.

    FIFO eviction: once ``max_traces`` traces are resident, retaining a
    new one evicts the oldest.  ``offer`` is O(tree size) for the reason
    scan and O(1) for the store.
    """

    def __init__(
        self,
        max_traces: int = 128,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_traces <= 0:
            raise ValueError(f"max_traces must be positive, got {max_traces}")
        self.max_traces = max_traces
        #: trace_id -> (reason, root span), insertion-ordered for FIFO.
        self._traces: "OrderedDict[str, tuple[str, object]]" = OrderedDict()
        self._offered = 0
        self._dropped = 0
        self._evicted = 0
        self._retained_by_reason = {reason: 0 for reason in REASONS}
        self._registry = registry
        if registry is not None:
            self._m_retained = {
                reason: registry.counter(
                    "tail_sampler_retained_total", reason=reason
                )
                for reason in REASONS
            }
            self._m_dropped = registry.counter("tail_sampler_dropped_total")
            self._m_evicted = registry.counter("tail_sampler_evicted_total")
            self._m_resident = registry.gauge("tail_sampler_resident")
        else:
            self._m_retained = None
            self._m_dropped = None
            self._m_evicted = None
            self._m_resident = None

    # ------------------------------------------------------------------

    @staticmethod
    def classify(span, slow: bool = False) -> str | None:
        """The retention reason for a finished root span, or ``None``."""
        has_chaos = False
        has_hedged = False
        for node in span.iter_spans():
            if node.status != "ok":
                return "error"
            if "chaos" in node.tags:
                has_chaos = True
            elif "hedged" in node.tags:
                has_hedged = True
        if has_chaos:
            return "chaos"
        if has_hedged:
            return "hedged"
        if slow:
            return "slow"
        return None

    def offer(self, span, slow: bool = False) -> str | None:
        """Consider a finished root span; returns the retention reason.

        Roots without a trace id (e.g. hand-built spans) are never
        retained — there would be nothing to look them up by.
        """
        self._offered += 1
        reason = None
        if span.trace_id is not None:
            reason = self.classify(span, slow=slow)
        if reason is None:
            self._dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return None
        if len(self._traces) >= self.max_traces:
            self._traces.popitem(last=False)
            self._evicted += 1
            if self._m_evicted is not None:
                self._m_evicted.inc()
        self._traces[span.trace_id] = (reason, span)
        self._retained_by_reason[reason] += 1
        if self._m_retained is not None:
            self._m_retained[reason].inc()
            self._m_resident.set(len(self._traces))
        return reason

    # -- lookup --------------------------------------------------------

    def get(self, trace_id: str):
        """The retained root span for a trace id, or ``None``."""
        entry = self._traces.get(trace_id)
        return entry[1] if entry is not None else None

    def reason(self, trace_id: str) -> str | None:
        """Why a retained trace was kept, or ``None`` if not resident."""
        entry = self._traces.get(trace_id)
        return entry[0] if entry is not None else None

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._traces

    def __len__(self) -> int:
        return len(self._traces)

    def trace_ids(self) -> tuple[str, ...]:
        """Resident trace ids, oldest first."""
        return tuple(self._traces)

    def stats(self) -> dict:
        """Lifetime counters plus current residency (JSON-friendly)."""
        return {
            "offered": self._offered,
            "dropped": self._dropped,
            "evicted": self._evicted,
            "resident": len(self._traces),
            "max_traces": self.max_traces,
            "retained_by_reason": dict(self._retained_by_reason),
        }
