"""Request-scoped tracing: span trees for every read/write in the stack.

The paper's evaluation *is* a latency decomposition (Table II: network vs
server compute; Figs. 16-19: per-stage percentiles).  :class:`Tracer`
records that decomposition per request as a span tree::

    client.multi_get_topk                  <- cluster client
      rpc.call {node=local-node-2}         <- one hop per shard
        node.multi_get_topk                <- node dispatch
          cache.get_many                   <- GCache probe
            storage.load {profile=17}      <- on miss only
          engine.execute {profile=17}      <- query-engine execute

Spans carry two time measures:

* ``start_ms`` / ``end_ms`` — timestamps from the **active**
  :class:`~repro.clock.Clock`, so a simulated run shows modelled time
  (``clock_ms``) and a live run shows wall time;
* ``duration_ms`` — real compute cost from the clock's high-resolution
  perf source (``SystemClock.perf_ms``; simulated clocks fall back to the
  process-wide :func:`repro.clock.perf_ms`).  Nested spans always sum
  consistently within their parent on this measure.

Tracing is **off-by-default-cheap**: components default to
:data:`NULL_TRACER`, a no-op object whose ``span()`` returns a shared
do-nothing context manager — no allocation, no branching at call sites.
An enabled tracer additionally keeps a bounded ring of finished root
spans, feeds root durations into a :class:`~repro.obs.registry
.MetricsRegistry` when given one, and renders roots slower than
``slow_threshold_ms`` into an indented slow-query log.

Every root span gets a deterministic **trace id** (``t-<counter>``).
When a registry is attached, the root-duration histograms carry the
trace id as an exemplar, and an optional :class:`~repro.obs.tail
.TailSampler` retains the full span tree of interesting requests (slow,
errored, hedged, chaos-afflicted) — so a slow exposition bucket resolves
to a concrete retained trace.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque

from ..clock import Clock, SystemClock, perf_ms
from .registry import MetricsRegistry


class Span:
    """One timed operation; a node in a per-request span tree."""

    __slots__ = (
        "name",
        "tags",
        "children",
        "status",
        "start_ms",
        "end_ms",
        "duration_ms",
        "trace_id",
        "_tracer",
        "_start_perf",
    )

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.children: list[Span] = []
        self.status = "ok"
        self.start_ms = 0
        self.end_ms = 0
        self.duration_ms = 0.0
        #: Deterministic request id; assigned on root spans only.
        self.trace_id: str | None = None
        self._tracer = tracer
        self._start_perf = 0.0

    # -- context manager protocol --------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._push(self)
        self.start_ms = tracer._now()
        self._start_perf = tracer._perf()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.duration_ms = tracer._perf() - self._start_perf
        self.end_ms = tracer._now()
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        tracer._pop(self)
        return False

    # ------------------------------------------------------------------

    def tag(self, **tags) -> "Span":
        """Attach tags after entry (e.g. hit counts known only at exit)."""
        self.tags.update(tags)
        return self

    @property
    def clock_ms(self) -> int:
        """Elapsed time on the active clock (modelled time under a
        :class:`~repro.clock.SimulatedClock` driven by the RPC layer)."""
        return self.end_ms - self.start_ms

    def iter_spans(self):
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> list["Span"]:
        """Every span in this tree with the given name."""
        return [span for span in self.iter_spans() if span.name == name]

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration_ms={self.duration_ms:.3f}, "
            f"children={len(self.children)})"
        )


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Indented one-line-per-span rendering (the slow-query log format)."""
    tags = "".join(
        f" {key}={value}" for key, value in sorted(span.tags.items())
    )
    status = "" if span.status == "ok" else f" [{span.status}]"
    trace_id = getattr(span, "trace_id", None)
    trace = f" trace={trace_id}" if trace_id is not None else ""
    lines = [
        f"{'  ' * indent}{span.name} {span.duration_ms:.3f}ms"
        f"{f' (clock {span.clock_ms}ms)' if span.clock_ms else ''}"
        f"{tags}{trace}{status}"
    ]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()
    name = "noop"
    tags: dict = {}
    children: list = []
    status = "ok"
    start_ms = 0
    end_ms = 0
    duration_ms = 0.0
    clock_ms = 0
    trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op returning constants."""

    enabled = False

    def span(self, name: str, **tags) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    @property
    def roots(self) -> tuple:
        return ()

    @property
    def slow_log(self) -> tuple:
        return ()

    def take_roots(self) -> list:
        return []


#: Process-wide disabled tracer; the default for every component.
NULL_TRACER = NullTracer()


class Tracer:
    """Records per-request span trees against the active clock.

    One tracer is shared by every layer of a deployment; because the
    transport is synchronous and in-process, a thread-local span stack is
    enough to parent spans correctly across client -> proxy -> node ->
    cache -> storage without passing span objects through call signatures.
    """

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        slow_threshold_ms: float | None = None,
        max_roots: int = 256,
        max_slow_log: int = 64,
        tail_sampler: "object | None" = None,
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        #: Bound methods cached once: both run on every span enter/exit.
        self._now = self._clock.now_ms
        # Durations come from the active clock's perf source when it has
        # one; otherwise the process-wide monotonic wall source.
        self._perf = getattr(self._clock, "perf_ms", perf_ms)
        self._registry = registry
        #: name -> trace_root_ms histogram, so finishing a root skips the
        #: registry's lock after the first request of each span name.
        self._root_hists: dict[str, object] = {}
        self.slow_threshold_ms = slow_threshold_ms
        self.tail_sampler = tail_sampler
        self._roots: deque[Span] = deque(maxlen=max_roots)
        #: Slow roots are kept as spans and rendered lazily on access:
        #: string-building an entire tree per slow request is pure
        #: overhead on the serving path (render_span_tree is referentially
        #: transparent over a finished tree, so the output is identical).
        self._slow_log: deque[Span] = deque(maxlen=max_slow_log)
        self._local = threading.local()
        # Monotonic counter, never wall time or random: trace ids must
        # replay byte-identically across same-seed runs.
        self._trace_ids = itertools.count(1)
        self._id_lock = threading.Lock()

    # ------------------------------------------------------------------

    def span(self, name: str, **tags) -> Span:
        """A context manager recording one span under the current one."""
        return Span(self, name, tags)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- stack discipline (called by Span) -----------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if not stack:
            with self._id_lock:
                span.trace_id = f"t-{next(self._trace_ids):08d}"
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        self._roots.append(span)
        if self._registry is not None:
            hist = self._root_hists.get(span.name)
            if hist is None:
                hist = self._registry.histogram("trace_root_ms", span=span.name)
                self._root_hists[span.name] = hist
            hist.observe(span.duration_ms, trace_id=span.trace_id)
        threshold = self.slow_threshold_ms
        is_slow = threshold is not None and (
            span.duration_ms >= threshold or span.clock_ms >= threshold
        )
        if is_slow:
            self._slow_log.append(span)
        sampler = self.tail_sampler
        if sampler is not None:
            sampler.offer(span, slow=is_slow)

    # -- inspection ----------------------------------------------------

    @property
    def roots(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first (bounded ring)."""
        return tuple(self._roots)

    @property
    def slow_log(self) -> tuple[str, ...]:
        """Rendered span trees of requests over the slow threshold."""
        return tuple(render_span_tree(span) for span in self._slow_log)

    def take_roots(self) -> list[Span]:
        """Drain and return the finished root spans."""
        roots = list(self._roots)
        self._roots.clear()
        return roots
