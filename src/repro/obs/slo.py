"""SLO engine: declared objectives, error budgets, burn-rate alerts.

The paper sells IPS on serving SLAs — p99 latency and availability under
skewed traffic — and PR 2/PR 3 gave us the raw signals (metrics, traces,
chaos incidents).  This module adds the *judgment*: what counts as good,
how much error budget an objective has, and when the system should page.

An :class:`SLObjective` declares, per tenant (``caller``) and operation:

* a **latency** SLI — a request is good if it completed within
  ``latency_threshold_ms``; the target percentile (e.g. ``0.99``) is the
  fraction of requests that must be good;
* an **availability** SLI — a request is good if it succeeded; the
  target (e.g. ``0.999``) is the fraction that must succeed.

Each SLI has an error budget of ``1 - target``.  Alerting follows the
multi-window multi-burn-rate recipe (Google SRE workbook): the **burn
rate** over a window is ``bad_fraction / (1 - target)`` — burn 1.0 means
budget spent exactly at the sustainable pace — and a rule fires only
when the burn exceeds its threshold on *both* a short and a long window
(the short window makes alerts clear quickly; the long window stops
one-off blips from paging).  Two default rules:

* **fast burn** -> page   (burn >= 14 over 5m and 1h windows)
* **slow burn** -> ticket (burn >= 2 over 30m and 6h windows)

Hysteresis: an active alert clears only after ``clear_after``
consecutive clean evaluations.

Everything is accounted on the **simulated clock** — the engine never
reads wall time (enforced by ``tools/check_clock_usage.py``), so the
alert timeline of a seeded chaos run replays byte-identically.
"""

from __future__ import annotations

import json
from collections import OrderedDict

from ..clock import Clock
from ..config import ConfigError, parse_duration_ms
from .registry import MetricsRegistry

#: Schema tag for serialized alert timelines.
TIMELINE_SCHEMA = "slo-timeline/v1"


def _parse_ms(value) -> int:
    """Accept either a numeric millisecond value or a duration string."""
    if isinstance(value, str):
        return parse_duration_ms(value)
    return int(value)


class SLObjective:
    """One tenant/op objective: latency + availability targets."""

    def __init__(
        self,
        name: str,
        caller: str = "*",
        op: str = "*",
        latency_threshold_ms: float = 50.0,
        latency_target: float = 0.99,
        availability_target: float = 0.999,
    ) -> None:
        if not 0.0 < latency_target < 1.0:
            raise ConfigError(
                f"latency_target must be in (0, 1), got {latency_target}"
            )
        if not 0.0 < availability_target < 1.0:
            raise ConfigError(
                "availability_target must be in (0, 1), "
                f"got {availability_target}"
            )
        if latency_threshold_ms <= 0:
            raise ConfigError(
                f"latency_threshold_ms must be positive, "
                f"got {latency_threshold_ms}"
            )
        self.name = name
        self.caller = caller
        self.op = op
        self.latency_threshold_ms = float(latency_threshold_ms)
        self.latency_target = float(latency_target)
        self.availability_target = float(availability_target)

    def matches(self, caller: str, op: str) -> bool:
        return (self.caller in ("*", caller)) and (self.op in ("*", op))

    @classmethod
    def from_mapping(cls, mapping: dict) -> "SLObjective":
        known = {
            "name",
            "caller",
            "op",
            "latency_threshold_ms",
            "latency_target",
            "availability_target",
        }
        unknown = set(mapping) - known
        if unknown:
            raise ConfigError(
                f"unknown SLO objective keys: {sorted(unknown)}"
            )
        if "name" not in mapping:
            raise ConfigError("SLO objective requires a 'name'")
        kwargs = dict(mapping)
        if "latency_threshold_ms" in kwargs:
            kwargs["latency_threshold_ms"] = _parse_ms(
                kwargs["latency_threshold_ms"]
            )
        return cls(**kwargs)


class BurnRateRule:
    """One multi-window burn-rate alert rule with hysteresis."""

    def __init__(
        self,
        name: str,
        severity: str,
        short_window_ms: int,
        long_window_ms: int,
        burn_threshold: float,
        clear_after: int = 3,
    ) -> None:
        if short_window_ms <= 0 or long_window_ms <= 0:
            raise ConfigError("burn-rate windows must be positive")
        if short_window_ms > long_window_ms:
            raise ConfigError(
                f"short window {short_window_ms}ms exceeds long window "
                f"{long_window_ms}ms"
            )
        if burn_threshold <= 0:
            raise ConfigError(
                f"burn_threshold must be positive, got {burn_threshold}"
            )
        if clear_after < 1:
            raise ConfigError(f"clear_after must be >= 1, got {clear_after}")
        self.name = name
        self.severity = severity
        self.short_window_ms = int(short_window_ms)
        self.long_window_ms = int(long_window_ms)
        self.burn_threshold = float(burn_threshold)
        self.clear_after = int(clear_after)

    @classmethod
    def from_mapping(cls, mapping: dict) -> "BurnRateRule":
        known = {
            "name",
            "severity",
            "short_window",
            "long_window",
            "burn_threshold",
            "clear_after",
        }
        unknown = set(mapping) - known
        if unknown:
            raise ConfigError(f"unknown burn-rate rule keys: {sorted(unknown)}")
        for key in ("name", "severity", "short_window", "long_window",
                    "burn_threshold"):
            if key not in mapping:
                raise ConfigError(f"burn-rate rule requires {key!r}")
        return cls(
            name=mapping["name"],
            severity=mapping["severity"],
            short_window_ms=_parse_ms(mapping["short_window"]),
            long_window_ms=_parse_ms(mapping["long_window"]),
            burn_threshold=float(mapping["burn_threshold"]),
            clear_after=int(mapping.get("clear_after", 3)),
        )


def default_rules() -> list[BurnRateRule]:
    """The SRE-workbook pair: fast burn pages, slow burn files a ticket.

    Windows are scaled to the simulation's compressed time (the chaos
    incident mix plays out over ~40 one-minute rounds, not 30 days).
    """
    return [
        BurnRateRule(
            name="fast",
            severity="page",
            short_window_ms=parse_duration_ms("5m"),
            long_window_ms=parse_duration_ms("1h"),
            burn_threshold=14.0,
            clear_after=3,
        ),
        BurnRateRule(
            name="slow",
            severity="ticket",
            short_window_ms=parse_duration_ms("30m"),
            long_window_ms=parse_duration_ms("6h"),
            burn_threshold=2.0,
            clear_after=3,
        ),
    ]


class _SeriesWindow:
    """Good/bad counts in time buckets, prunable to a bounded horizon."""

    __slots__ = ("bucket_ms", "horizon_ms", "_buckets", "good_total",
                 "bad_total")

    def __init__(self, bucket_ms: int, horizon_ms: int) -> None:
        self.bucket_ms = bucket_ms
        self.horizon_ms = horizon_ms
        #: bucket start ms -> [good, bad], insertion-ordered (time order).
        self._buckets: "OrderedDict[int, list[int]]" = OrderedDict()
        self.good_total = 0
        self.bad_total = 0

    def record(self, now_ms: int, good: bool) -> None:
        start = (now_ms // self.bucket_ms) * self.bucket_ms
        bucket = self._buckets.get(start)
        if bucket is None:
            bucket = self._buckets[start] = [0, 0]
            self._prune(start)
        bucket[0 if good else 1] += 1
        if good:
            self.good_total += 1
        else:
            self.bad_total += 1

    def _prune(self, now_start_ms: int) -> None:
        floor = now_start_ms - self.horizon_ms
        while self._buckets:
            oldest = next(iter(self._buckets))
            if oldest >= floor:
                break
            del self._buckets[oldest]

    def bad_fraction(self, now_ms: int, window_ms: int) -> float:
        """Fraction of bad events in the trailing window (0 if empty)."""
        floor = now_ms - window_ms
        good = bad = 0
        # Newest buckets are at the tail; walk backwards and stop early.
        for start in reversed(self._buckets):
            if start + self.bucket_ms <= floor:
                break
            counts = self._buckets[start]
            good += counts[0]
            bad += counts[1]
        total = good + bad
        return bad / total if total else 0.0


class Alert:
    """Live state of one (series, rule) alert with hysteresis."""

    __slots__ = ("series", "rule", "active", "fired_at_ms", "clean_streak",
                 "fire_count")

    def __init__(self, series: str, rule: BurnRateRule) -> None:
        self.series = series
        self.rule = rule
        self.active = False
        self.fired_at_ms: int | None = None
        self.clean_streak = 0
        self.fire_count = 0


class SLOEngine:
    """Accounts SLIs against declared objectives and evaluates alerts.

    ``observe`` classifies one finished request against every matching
    objective; ``evaluate`` (called once per simulation round, or on any
    cadence) recomputes burn rates and advances alert state.  Both run
    on timestamps from the injected clock only.
    """

    def __init__(
        self,
        clock: Clock,
        objectives: list[SLObjective],
        rules: list[BurnRateRule] | None = None,
        registry: MetricsRegistry | None = None,
        bucket_ms: int = 60_000,
    ) -> None:
        if not objectives:
            raise ConfigError("SLOEngine needs at least one objective")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO objective names: {names}")
        self._clock = clock
        self.objectives = list(objectives)
        self.rules = list(rules) if rules is not None else default_rules()
        self._registry = registry
        horizon_ms = max(rule.long_window_ms for rule in self.rules)
        #: series key ("<name>:latency" / "<name>:availability") ->
        #: window ring; series are what budgets and alerts attach to.
        self._series: dict[str, _SeriesWindow] = {}
        self._targets: dict[str, float] = {}
        for objective in self.objectives:
            for kind, target in (
                ("latency", objective.latency_target),
                ("availability", objective.availability_target),
            ):
                key = f"{objective.name}:{kind}"
                self._series[key] = _SeriesWindow(bucket_ms, horizon_ms)
                self._targets[key] = target
        self._alerts: dict[tuple[str, str], Alert] = {
            (series, rule.name): Alert(series, rule)
            for series in self._series
            for rule in self.rules
        }
        #: Chronological fire/clear events (the replayable timeline).
        self.timeline: list[dict] = []
        self._evaluations = 0
        if registry is not None:
            self._m_good = {
                key: registry.counter("slo_requests_total", slo=key,
                                      result="good")
                for key in self._series
            }
            self._m_bad = {
                key: registry.counter("slo_requests_total", slo=key,
                                      result="bad")
                for key in self._series
            }
            self._m_budget = {
                key: registry.gauge("slo_error_budget_remaining", slo=key)
                for key in self._series
            }
            self._m_active = {
                (series, rule.name): registry.gauge(
                    "slo_alert_active", slo=series, rule=rule.name,
                    severity=rule.severity,
                )
                for series in self._series
                for rule in self.rules
            }
            self._m_fired = registry.counter("slo_alerts_fired_total")
        else:
            self._m_good = self._m_bad = None
            self._m_budget = self._m_active = None
            self._m_fired = None

    # -- construction from config --------------------------------------

    @classmethod
    def from_mapping(
        cls,
        mapping: dict,
        clock: Clock,
        registry: MetricsRegistry | None = None,
    ) -> "SLOEngine":
        """Build an engine from a config mapping::

            {"objectives": [{"name": "naive-read", "caller": "naive",
                             "op": "read", "latency_threshold_ms": "50ms",
                             "latency_target": 0.99,
                             "availability_target": 0.999}],
             "rules": [...],          # optional, defaults to SRE pair
             "bucket": "1m"}          # optional accounting granularity
        """
        known = {"objectives", "rules", "bucket"}
        unknown = set(mapping) - known
        if unknown:
            raise ConfigError(f"unknown SLO config keys: {sorted(unknown)}")
        if "objectives" not in mapping:
            raise ConfigError("SLO config requires 'objectives'")
        objectives = [
            SLObjective.from_mapping(entry) for entry in mapping["objectives"]
        ]
        rules = None
        if "rules" in mapping:
            rules = [BurnRateRule.from_mapping(r) for r in mapping["rules"]]
        bucket_ms = _parse_ms(mapping.get("bucket", 60_000))
        return cls(clock, objectives, rules=rules, registry=registry,
                   bucket_ms=bucket_ms)

    # -- accounting ----------------------------------------------------

    def observe(
        self,
        caller: str,
        op: str,
        latency_ms: float,
        ok: bool,
        now_ms: int | None = None,
    ) -> None:
        """Classify one finished request against matching objectives.

        ``latency_ms`` must be modelled (clock-delta) time, not wall
        time, or the alert timeline stops replaying deterministically.
        """
        if now_ms is None:
            now_ms = self._clock.now_ms()
        for objective in self.objectives:
            if not objective.matches(caller, op):
                continue
            latency_good = ok and latency_ms <= objective.latency_threshold_ms
            self._record(f"{objective.name}:latency", now_ms, latency_good)
            self._record(f"{objective.name}:availability", now_ms, ok)

    def _record(self, key: str, now_ms: int, good: bool) -> None:
        series = self._series[key]
        series.record(now_ms, good)
        if self._m_good is not None:
            (self._m_good if good else self._m_bad)[key].inc()

    # -- evaluation ----------------------------------------------------

    def burn_rate(self, key: str, window_ms: int,
                  now_ms: int | None = None) -> float:
        """``bad_fraction / error_budget`` over the trailing window."""
        if now_ms is None:
            now_ms = self._clock.now_ms()
        budget = 1.0 - self._targets[key]
        return self._series[key].bad_fraction(now_ms, window_ms) / budget

    def budget_remaining(self, key: str) -> float:
        """Lifetime error-budget fraction left (can go negative)."""
        series = self._series[key]
        total = series.good_total + series.bad_total
        if total == 0:
            return 1.0
        budget = 1.0 - self._targets[key]
        return 1.0 - (series.bad_total / total) / budget

    def evaluate(self, now_ms: int | None = None) -> list[dict]:
        """Advance every alert's state; returns events emitted this call."""
        if now_ms is None:
            now_ms = self._clock.now_ms()
        self._evaluations += 1
        events: list[dict] = []
        for (series, _rule_name), alert in self._alerts.items():
            rule = alert.rule
            burn_short = self.burn_rate(series, rule.short_window_ms, now_ms)
            burn_long = self.burn_rate(series, rule.long_window_ms, now_ms)
            firing = (
                burn_short >= rule.burn_threshold
                and burn_long >= rule.burn_threshold
            )
            if firing:
                alert.clean_streak = 0
                if not alert.active:
                    alert.active = True
                    alert.fired_at_ms = now_ms
                    alert.fire_count += 1
                    events.append(self._event(
                        "fire", now_ms, series, rule, burn_short, burn_long
                    ))
            elif alert.active:
                alert.clean_streak += 1
                if alert.clean_streak >= rule.clear_after:
                    alert.active = False
                    alert.clean_streak = 0
                    events.append(self._event(
                        "clear", now_ms, series, rule, burn_short, burn_long
                    ))
        if self._m_budget is not None:
            for key in self._series:
                self._m_budget[key].set(self.budget_remaining(key))
            for (series, rule_name), alert in self._alerts.items():
                self._m_active[(series, rule_name)].set(
                    1.0 if alert.active else 0.0
                )
        self.timeline.extend(events)
        return events

    def _event(self, kind: str, now_ms: int, series: str,
               rule: BurnRateRule, burn_short: float,
               burn_long: float) -> dict:
        if kind == "fire" and self._m_fired is not None:
            self._m_fired.inc()
        return {
            "event": kind,
            "at_ms": now_ms,
            "slo": series,
            "rule": rule.name,
            "severity": rule.severity,
            "burn_short": round(burn_short, 6),
            "burn_long": round(burn_long, 6),
        }

    # -- inspection ----------------------------------------------------

    def active_alerts(self) -> list[dict]:
        """Currently-firing alerts, deterministic order."""
        out = []
        for (series, rule_name), alert in sorted(self._alerts.items()):
            if alert.active:
                out.append({
                    "slo": series,
                    "rule": rule_name,
                    "severity": alert.rule.severity,
                    "fired_at_ms": alert.fired_at_ms,
                })
        return out

    def series_keys(self) -> tuple[str, ...]:
        return tuple(self._series)

    def summary(self) -> dict:
        """Budget + alert rollup for every series (JSON-friendly)."""
        series = {}
        for key, window in self._series.items():
            series[key] = {
                "target": self._targets[key],
                "good": window.good_total,
                "bad": window.bad_total,
                "budget_remaining": round(self.budget_remaining(key), 6),
            }
        return {
            "schema": TIMELINE_SCHEMA,
            "evaluations": self._evaluations,
            "series": series,
            "active_alerts": self.active_alerts(),
            "events": self.timeline,
        }

    def timeline_json(self) -> str:
        """Canonical JSON of the full timeline (byte-identical replays)."""
        return json.dumps(self.summary(), sort_keys=True, indent=2)
