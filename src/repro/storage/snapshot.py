"""Table snapshots: export/import a whole table's profiles.

Operationally IPS tables move between clusters for migrations, disaster
recovery drills and offline experimentation (the §V-b "repeated
experiments" story needs production-shaped data in a scratch cluster).
A snapshot is a flat file of length-prefixed, compressed profile blobs:

``snapshot := MAGIC version table_name_len table_name (profile_len profile)*``

Profiles are encoded with the same varint codec and LZ compression as the
persistence layer, so a snapshot is byte-compatible with what the KV
store holds and round-trips exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..core.profile import ProfileData
from ..errors import SerializationError
from .compression import compress, decompress
from .kvstore import KVStore
from .serialization import ProfileCodec, read_varint, write_varint

SNAPSHOT_MAGIC = 0x49505353  # "IPSS"
SNAPSHOT_VERSION = 1


def export_table(
    store: KVStore, table: str, path: str | Path
) -> int:
    """Export every bulk-persisted profile of ``table`` to a snapshot file.

    Scans the store's key space for the table's bulk keys
    (``{table}/p/{profile_id}``).  Returns the number of profiles written.
    Fine-grained tables should be re-flushed through bulk persistence
    first (the snapshot format is profile-per-record by design).
    """
    prefix = f"{table}/p/".encode()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = bytearray()
    write_varint(header, SNAPSHOT_MAGIC)
    write_varint(header, SNAPSHOT_VERSION)
    name_bytes = table.encode("utf-8")
    write_varint(header, len(name_bytes))
    header.extend(name_bytes)
    count = 0
    with open(path, "wb") as snapshot:
        snapshot.write(bytes(header))
        for key in store.keys():
            if not key.startswith(prefix):
                continue
            blob = store.get(key)
            if blob is None:
                continue  # Deleted between scan and read.
            record = bytearray()
            write_varint(record, len(blob))
            record.extend(blob)
            snapshot.write(bytes(record))
            count += 1
    return count


def read_snapshot(path: str | Path) -> tuple[str, Iterator[ProfileData]]:
    """Open a snapshot; returns (table_name, iterator of profiles)."""
    data = Path(path).read_bytes()
    pos = 0
    magic, pos = read_varint(data, pos)
    if magic != SNAPSHOT_MAGIC:
        raise SerializationError(f"bad snapshot magic {magic:#x}")
    version, pos = read_varint(data, pos)
    if version != SNAPSHOT_VERSION:
        raise SerializationError(f"unsupported snapshot version {version}")
    name_len, pos = read_varint(data, pos)
    if pos + name_len > len(data):
        raise SerializationError("truncated snapshot header")
    table = data[pos : pos + name_len].decode("utf-8")
    pos += name_len

    def profiles() -> Iterator[ProfileData]:
        cursor = pos
        while cursor < len(data):
            length, cursor_after = read_varint(data, cursor)
            end = cursor_after + length
            if end > len(data):
                raise SerializationError("truncated snapshot record")
            blob = data[cursor_after:end]
            yield ProfileCodec.decode_profile(decompress(blob))
            cursor = end

    return table, profiles()


def import_table(
    store: KVStore, path: str | Path, table: str | None = None
) -> int:
    """Load a snapshot into a store's bulk key space.

    ``table`` overrides the snapshot's recorded table name (renaming on
    import).  Existing profiles with the same ids are overwritten.
    Returns the number of profiles imported.
    """
    recorded_table, profiles = read_snapshot(path)
    target = table if table is not None else recorded_table
    count = 0
    for profile in profiles:
        blob = compress(ProfileCodec.encode_profile(profile))
        store.set(f"{target}/p/{profile.profile_id}".encode(), blob)
        count += 1
    return count
