"""Persistent storage substrate (§III-E).

IPS keeps all serving data in memory and relies on a distributed key-value
store (HBase in production) purely for durability.  This package provides:

* :mod:`kvstore` — a key-value store with the versioned ``xget``/``xset``
  operations the fine-grained persistence protocol requires (Fig. 14);
* :mod:`compression` — a from-scratch snappy-style LZ codec;
* :mod:`serialization` — a from-scratch varint/tag binary codec for the
  profile hierarchy (the Protocol Buffers substitute, Fig. 12);
* :mod:`persistence` — the bulk (whole-profile) and fine-grained
  (slice-split with meta record) persistence modes (Figs. 12-14);
* :mod:`replication` — master/slave KV clusters for multi-region reads;
* :mod:`wal` — the per-node write-ahead log (CRC-framed records, group
  commit) the crash-recovery path replays after a node death.
"""

from .compression import compress, decompress
from .filestore import FileKVStore
from .kvstore import FailureInjector, InMemoryKVStore, KVStore, VersionedValue
from .persistence import (
    BulkPersistence,
    FineGrainedPersistence,
    PersistenceManager,
    PersistenceStats,
)
from .replication import ReplicatedKVCluster, ReplicationOp
from .serialization import (
    ProfileCodec,
    deserialize_profile,
    serialize_profile,
)
from .snapshot import export_table, import_table, read_snapshot
from .wal import (
    NULL_SITE,
    FileLogFile,
    MemoryLogFile,
    ReplayReport,
    WALRecord,
    WriteAheadLog,
)

__all__ = [
    "BulkPersistence",
    "FailureInjector",
    "FileKVStore",
    "FileLogFile",
    "FineGrainedPersistence",
    "InMemoryKVStore",
    "KVStore",
    "MemoryLogFile",
    "NULL_SITE",
    "PersistenceManager",
    "PersistenceStats",
    "ProfileCodec",
    "ReplayReport",
    "ReplicatedKVCluster",
    "ReplicationOp",
    "VersionedValue",
    "WALRecord",
    "WriteAheadLog",
    "compress",
    "decompress",
    "deserialize_profile",
    "export_table",
    "import_table",
    "read_snapshot",
    "serialize_profile",
]
