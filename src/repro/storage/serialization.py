"""Binary serialization of profile data (the Protocol Buffers substitute).

IPS serializes the in-memory profile hierarchy into a Protocol Buffer
format before persisting it (§III-E, Fig. 12).  We implement the same idea
from scratch: a varint/length-delimited wire format that encodes the
nesting Profile → Slice → Slot → Type → FeatureStat compactly.

Since the columnar-native refactor there are **two slice encodings**,
distinguished by the first varint of the slice body:

* **v1 (dict era)** — the original per-feature varint format.  Written
  only by :meth:`ProfileCodec.encode_slice_v1` (kept for compatibility
  tests); still fully decodable so WAL/checkpoint/KV images from before
  the refactor load losslessly into the array-native representation.
* **v2 (columnar)** — tagged by :data:`SLICE_V2_MAGIC`, a varint far above
  any plausible ``start_ms`` (> 2**62), which is what a v1 body starts
  with.  Each ``(slot, type)`` section carries either zigzag-varint
  feature rows (small or demoted groups) or **raw little-endian int64
  column dumps** taken straight off the primary arrays through
  ``memoryview`` — the zero-copy path: encoding touches no per-feature
  Python objects, and decoding rebuilds the arrays with one
  ``frombytes`` per column so cold reads skip the gather entirely.

Wire layout (all integers are unsigned LEB128 varints):

``profile``  := MAGIC version profile_id granularity n_slices slice*
``slice_v1`` := start_ms end_ms n_slots slot_v1*
``slot_v1``  := slot_id n_types (type_id n_features feature_v1*)*
``feature_v1`` := fid last_ts n_counts zigzag(count)*
``slice_v2`` := V2MAGIC start_ms end_ms n_slots slot_v2*
``slot_v2``  := slot_id n_types type_v2*
``type_v2``  := type_id encoding body
  encoding 0 := n_features (zigzag(fid) zigzag(last_ts) n_counts
                zigzag(count)*)*
  encoding 1 := n_rows stride flags [widths_raw] fids_raw ts_raw counts_raw
                (raw = little-endian int64 dump; flags bit0 = has widths)

Counts use zigzag encoding since aggregate functions can in principle
produce negative values.  The codec is symmetric and bounded: decoding
validates lengths so corrupt blobs fail with
:class:`~repro.errors.SerializationError` instead of producing garbage.
"""

from __future__ import annotations

import sys
from array import array

from ..core.columnar import INT64_TYPECODE, ColumnGroup
from ..core.feature import FeatureStat
from ..core.instance_set import InstanceSet
from ..core.profile import ProfileData
from ..core.slice import Slice
from ..errors import SerializationError

MAGIC = 0x49505331  # "IPS1"
FORMAT_VERSION = 1

#: First varint of a v2 slice body.  A v1 body starts with ``start_ms``;
#: this constant is > 2**62, far beyond any real timestamp, so the two
#: encodings cannot collide.
SLICE_V2_MAGIC = 0x4950_5332_434F_4C31  # "IPS2COL1"

#: Column groups with at least this many rows use raw int64 column dumps
#: (one memcpy per column); smaller groups stay on zigzag varints, which
#: are more compact for short rows.
RAW_COLUMN_MIN_ROWS = 16

#: Per-type section encodings inside a v2 slice.
_ENC_VARINT = 0
_ENC_RAW = 1

#: Decode-time sanity caps (corrupt blobs must fail, not allocate wildly).
_MAX_COUNTS = 1024

_BIG_ENDIAN = sys.byteorder == "big"


# ----------------------------------------------------------------------
# Primitive encoders
# ----------------------------------------------------------------------


def write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError(f"varint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def zigzag_encode(value: int) -> int:
    # Arbitrary-precision form (fids/counts may exceed int64 pre-clamp).
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _extend_le_int64(out: bytearray, column: array) -> None:
    """Append a column's raw bytes little-endian (zero-copy on LE hosts)."""
    if _BIG_ENDIAN:  # pragma: no cover - exercised only on BE hardware
        swapped = array(INT64_TYPECODE, column)
        swapped.byteswap()
        out += memoryview(swapped).cast("B")
    else:
        out += memoryview(column).cast("B")


def _read_le_int64(data: bytes, pos: int, count: int) -> tuple[array, int]:
    """Read ``count`` little-endian int64s into a fresh column."""
    nbytes = count * 8
    if pos + nbytes > len(data):
        raise SerializationError("truncated raw int64 column")
    column = array(INT64_TYPECODE)
    column.frombytes(data[pos : pos + nbytes])
    if _BIG_ENDIAN:  # pragma: no cover - exercised only on BE hardware
        column.byteswap()
    return column, pos + nbytes


# ----------------------------------------------------------------------
# Profile codec
# ----------------------------------------------------------------------


class ProfileCodec:
    """Encode/decode whole profiles or individual slices."""

    # -- slices ---------------------------------------------------------

    @staticmethod
    def encode_slice(profile_slice: Slice) -> bytes:
        out = bytearray()
        ProfileCodec._write_slice_v2(out, profile_slice)
        return bytes(out)

    @staticmethod
    def encode_slice_v1(profile_slice: Slice) -> bytes:
        """The dict-era encoding, kept for backward-compatibility tests."""
        out = bytearray()
        ProfileCodec._write_slice_v1(out, profile_slice)
        return bytes(out)

    @staticmethod
    def decode_slice(blob: bytes) -> Slice:
        profile_slice, pos = ProfileCodec._read_slice(blob, 0)
        if pos != len(blob):
            raise SerializationError(
                f"{len(blob) - pos} trailing bytes after slice"
            )
        return profile_slice

    @staticmethod
    def _read_slice(data: bytes, pos: int) -> tuple[Slice, int]:
        """Decode one slice body, dispatching on the version tag."""
        first, _ = read_varint(data, pos)
        if first == SLICE_V2_MAGIC:
            return ProfileCodec._read_slice_v2(data, pos)
        return ProfileCodec._read_slice_v1(data, pos)

    # -- v1 (dict era) --------------------------------------------------

    @staticmethod
    def _write_slice_v1(out: bytearray, profile_slice: Slice) -> None:
        write_varint(out, profile_slice.start_ms)
        write_varint(out, profile_slice.end_ms)
        slots = list(profile_slice.slots_items())
        write_varint(out, len(slots))
        for slot_id, instance_set in slots:
            write_varint(out, slot_id)
            types = list(instance_set.items())
            write_varint(out, len(types))
            for type_id, features in types:
                write_varint(out, type_id)
                write_varint(out, len(features))
                for stat in features.values():
                    ProfileCodec._write_feature(out, stat)

    @staticmethod
    def _read_slice_v1(data: bytes, pos: int) -> tuple[Slice, int]:
        start_ms, pos = read_varint(data, pos)
        end_ms, pos = read_varint(data, pos)
        profile_slice = ProfileCodec._new_slice(start_ms, end_ms)
        n_slots, pos = read_varint(data, pos)
        for _ in range(n_slots):
            slot_id, pos = read_varint(data, pos)
            instance_set = profile_slice.ensure_slot(slot_id)
            n_types, pos = read_varint(data, pos)
            for _ in range(n_types):
                type_id, pos = read_varint(data, pos)
                n_features, pos = read_varint(data, pos)
                features: list[FeatureStat] = []
                for _ in range(n_features):
                    stat, pos = ProfileCodec._read_feature(data, pos)
                    features.append(stat)
                instance_set.adopt_group(
                    type_id, ColumnGroup.from_stats(features)
                )
        profile_slice.mark_mutated()
        return profile_slice, pos

    @staticmethod
    def _write_feature(out: bytearray, stat: FeatureStat) -> None:
        write_varint(out, stat.fid)
        write_varint(out, stat.last_timestamp_ms)
        write_varint(out, len(stat.counts))
        for count in stat.counts:
            write_varint(out, zigzag_encode(count))

    @staticmethod
    def _read_feature(data: bytes, pos: int) -> tuple[FeatureStat, int]:
        fid, pos = read_varint(data, pos)
        last_ts, pos = read_varint(data, pos)
        n_counts, pos = read_varint(data, pos)
        if n_counts > _MAX_COUNTS:
            raise SerializationError(f"implausible count vector length {n_counts}")
        counts = []
        for _ in range(n_counts):
            encoded, pos = read_varint(data, pos)
            counts.append(zigzag_decode(encoded))
        return FeatureStat(fid, counts, last_ts), pos

    # -- v2 (columnar) --------------------------------------------------

    @staticmethod
    def _write_slice_v2(out: bytearray, profile_slice: Slice) -> None:
        write_varint(out, SLICE_V2_MAGIC)
        write_varint(out, profile_slice.start_ms)
        write_varint(out, profile_slice.end_ms)
        slots = list(profile_slice.slots_items())
        write_varint(out, len(slots))
        for slot_id, instance_set in slots:
            write_varint(out, slot_id)
            types = list(instance_set.groups_items())
            write_varint(out, len(types))
            for type_id, group in types:
                write_varint(out, type_id)
                ProfileCodec._write_group_v2(out, group)

    @staticmethod
    def _write_group_v2(out: bytearray, group: ColumnGroup) -> None:
        if group.is_columnar and len(group) >= RAW_COLUMN_MIN_ROWS:
            write_varint(out, _ENC_RAW)
            n_rows = len(group)
            write_varint(out, n_rows)
            write_varint(out, group.stride)
            widths = group.widths
            if widths is not None and all(w == group.stride for w in widths):
                widths = None  # canonical: uniform widths are implicit
            write_varint(out, 1 if widths is not None else 0)
            if widths is not None:
                _extend_le_int64(out, widths)
            _extend_le_int64(out, group.fids)
            _extend_le_int64(out, group.ts)
            _extend_le_int64(out, group.counts)
            return
        write_varint(out, _ENC_VARINT)
        stats = group.stats()
        write_varint(out, len(stats))
        for stat in stats:
            write_varint(out, zigzag_encode(stat.fid))
            write_varint(out, zigzag_encode(stat.last_timestamp_ms))
            write_varint(out, len(stat.counts))
            for count in stat.counts:
                write_varint(out, zigzag_encode(count))

    @staticmethod
    def _read_slice_v2(data: bytes, pos: int) -> tuple[Slice, int]:
        magic, pos = read_varint(data, pos)
        if magic != SLICE_V2_MAGIC:  # pragma: no cover - guarded by caller
            raise SerializationError("not a v2 slice body")
        start_ms, pos = read_varint(data, pos)
        end_ms, pos = read_varint(data, pos)
        profile_slice = ProfileCodec._new_slice(start_ms, end_ms)
        n_slots, pos = read_varint(data, pos)
        for _ in range(n_slots):
            slot_id, pos = read_varint(data, pos)
            instance_set = profile_slice.ensure_slot(slot_id)
            n_types, pos = read_varint(data, pos)
            for _ in range(n_types):
                type_id, pos = read_varint(data, pos)
                group, pos = ProfileCodec._read_group_v2(data, pos)
                instance_set.adopt_group(type_id, group)
        profile_slice.mark_mutated()
        return profile_slice, pos

    @staticmethod
    def _read_group_v2(data: bytes, pos: int) -> tuple[ColumnGroup, int]:
        encoding, pos = read_varint(data, pos)
        if encoding == _ENC_RAW:
            n_rows, pos = read_varint(data, pos)
            stride, pos = read_varint(data, pos)
            if stride > _MAX_COUNTS:
                raise SerializationError(f"implausible stride {stride}")
            flags, pos = read_varint(data, pos)
            if flags not in (0, 1):
                raise SerializationError(f"unknown column flags {flags:#x}")
            widths = None
            if flags & 1:
                widths, pos = _read_le_int64(data, pos, n_rows)
            fids, pos = _read_le_int64(data, pos, n_rows)
            ts, pos = _read_le_int64(data, pos, n_rows)
            counts, pos = _read_le_int64(data, pos, n_rows * stride)
            try:
                group = ColumnGroup.from_columns(
                    stride, fids, ts, counts, widths
                )
            except ValueError as error:
                raise SerializationError(str(error)) from None
            return group, pos
        if encoding != _ENC_VARINT:
            raise SerializationError(f"unknown group encoding {encoding}")
        n_features, pos = read_varint(data, pos)
        features: list[FeatureStat] = []
        for _ in range(n_features):
            raw_fid, pos = read_varint(data, pos)
            raw_ts, pos = read_varint(data, pos)
            n_counts, pos = read_varint(data, pos)
            if n_counts > _MAX_COUNTS:
                raise SerializationError(
                    f"implausible count vector length {n_counts}"
                )
            counts_list = []
            for _ in range(n_counts):
                encoded, pos = read_varint(data, pos)
                counts_list.append(zigzag_decode(encoded))
            features.append(
                FeatureStat(
                    zigzag_decode(raw_fid), counts_list, zigzag_decode(raw_ts)
                )
            )
        return ColumnGroup.from_stats(features), pos

    # -- shared ---------------------------------------------------------

    @staticmethod
    def _new_slice(start_ms: int, end_ms: int) -> Slice:
        if end_ms <= start_ms:
            raise SerializationError(
                f"decoded slice has empty range [{start_ms}, {end_ms})"
            )
        return Slice(start_ms, end_ms)

    # -- whole profiles ---------------------------------------------------

    @staticmethod
    def encode_profile(profile: ProfileData) -> bytes:
        out = bytearray()
        write_varint(out, MAGIC)
        write_varint(out, FORMAT_VERSION)
        write_varint(out, profile.profile_id)
        write_varint(out, profile.write_granularity_ms)
        write_varint(out, len(profile.slices))
        for profile_slice in profile.slices:
            body = ProfileCodec.encode_slice(profile_slice)
            write_varint(out, len(body))
            out.extend(body)
        return bytes(out)

    @staticmethod
    def decode_profile(blob: bytes) -> ProfileData:
        pos = 0
        magic, pos = read_varint(blob, pos)
        if magic != MAGIC:
            raise SerializationError(f"bad magic {magic:#x}; not an IPS profile")
        version, pos = read_varint(blob, pos)
        if version != FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        profile_id, pos = read_varint(blob, pos)
        granularity, pos = read_varint(blob, pos)
        n_slices, pos = read_varint(blob, pos)
        profile = ProfileData(profile_id, granularity)
        slices = []
        for _ in range(n_slices):
            length, pos = read_varint(blob, pos)
            if pos + length > len(blob):
                raise SerializationError("slice body past end of profile blob")
            profile_slice, consumed = ProfileCodec._read_slice(blob, pos)
            if consumed != pos + length:
                raise SerializationError("slice body length mismatch")
            pos = consumed
            slices.append(profile_slice)
        if pos != len(blob):
            raise SerializationError(
                f"{len(blob) - pos} trailing bytes after profile"
            )
        profile.replace_slices(slices)
        return profile


def serialize_profile(profile: ProfileData) -> bytes:
    """Module-level convenience wrapper over :class:`ProfileCodec`."""
    return ProfileCodec.encode_profile(profile)


def deserialize_profile(blob: bytes) -> ProfileData:
    """Module-level convenience wrapper over :class:`ProfileCodec`."""
    return ProfileCodec.decode_profile(blob)
