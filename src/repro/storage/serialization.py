"""Binary serialization of profile data (the Protocol Buffers substitute).

IPS serializes the in-memory profile hierarchy into a Protocol Buffer
format before persisting it (§III-E, Fig. 12).  We implement the same idea
from scratch: a varint/length-delimited wire format that encodes the
nesting Profile → Slice → Slot → Type → FeatureStat compactly.

Wire layout (all integers are unsigned LEB128 varints):

``profile``  := MAGIC version profile_id granularity n_slices slice*
``slice``    := start_ms end_ms n_slots slot*
``slot``     := slot_id n_types type*
``type``     := type_id n_features feature*
``feature``  := fid last_ts n_counts zigzag(count)*

Counts use zigzag encoding since aggregate functions can in principle
produce negative values.  The codec is symmetric and bounded: decoding
validates lengths so corrupt blobs fail with
:class:`~repro.errors.SerializationError` instead of producing garbage.
"""

from __future__ import annotations

from ..core.feature import FeatureStat
from ..core.instance_set import InstanceSet
from ..core.profile import ProfileData
from ..core.slice import Slice
from ..errors import SerializationError

MAGIC = 0x49505331  # "IPS1"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Primitive encoders
# ----------------------------------------------------------------------


def write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError(f"varint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ----------------------------------------------------------------------
# Profile codec
# ----------------------------------------------------------------------


class ProfileCodec:
    """Encode/decode whole profiles or individual slices."""

    # -- slices ---------------------------------------------------------

    @staticmethod
    def encode_slice(profile_slice: Slice) -> bytes:
        out = bytearray()
        ProfileCodec._write_slice(out, profile_slice)
        return bytes(out)

    @staticmethod
    def decode_slice(blob: bytes) -> Slice:
        profile_slice, pos = ProfileCodec._read_slice(blob, 0)
        if pos != len(blob):
            raise SerializationError(
                f"{len(blob) - pos} trailing bytes after slice"
            )
        return profile_slice

    @staticmethod
    def _write_slice(out: bytearray, profile_slice: Slice) -> None:
        write_varint(out, profile_slice.start_ms)
        write_varint(out, profile_slice.end_ms)
        slots = list(profile_slice.slots_items())
        write_varint(out, len(slots))
        for slot_id, instance_set in slots:
            write_varint(out, slot_id)
            types = list(instance_set.items())
            write_varint(out, len(types))
            for type_id, features in types:
                write_varint(out, type_id)
                write_varint(out, len(features))
                for stat in features.values():
                    ProfileCodec._write_feature(out, stat)

    @staticmethod
    def _read_slice(data: bytes, pos: int) -> tuple[Slice, int]:
        start_ms, pos = read_varint(data, pos)
        end_ms, pos = read_varint(data, pos)
        if end_ms <= start_ms:
            raise SerializationError(
                f"decoded slice has empty range [{start_ms}, {end_ms})"
            )
        profile_slice = Slice(start_ms, end_ms)
        n_slots, pos = read_varint(data, pos)
        for _ in range(n_slots):
            slot_id, pos = read_varint(data, pos)
            instance_set = InstanceSet()
            profile_slice._slots[slot_id] = instance_set
            n_types, pos = read_varint(data, pos)
            for _ in range(n_types):
                type_id, pos = read_varint(data, pos)
                n_features, pos = read_varint(data, pos)
                features: dict[int, FeatureStat] = {}
                for _ in range(n_features):
                    stat, pos = ProfileCodec._read_feature(data, pos)
                    features[stat.fid] = stat
                instance_set._types[type_id] = features
        profile_slice.mark_mutated()
        return profile_slice, pos

    # -- features -------------------------------------------------------

    @staticmethod
    def _write_feature(out: bytearray, stat: FeatureStat) -> None:
        write_varint(out, stat.fid)
        write_varint(out, stat.last_timestamp_ms)
        write_varint(out, len(stat.counts))
        for count in stat.counts:
            write_varint(out, zigzag_encode(count))

    @staticmethod
    def _read_feature(data: bytes, pos: int) -> tuple[FeatureStat, int]:
        fid, pos = read_varint(data, pos)
        last_ts, pos = read_varint(data, pos)
        n_counts, pos = read_varint(data, pos)
        if n_counts > 1024:
            raise SerializationError(f"implausible count vector length {n_counts}")
        counts = []
        for _ in range(n_counts):
            encoded, pos = read_varint(data, pos)
            counts.append(zigzag_decode(encoded))
        return FeatureStat(fid, counts, last_ts), pos

    # -- whole profiles ---------------------------------------------------

    @staticmethod
    def encode_profile(profile: ProfileData) -> bytes:
        out = bytearray()
        write_varint(out, MAGIC)
        write_varint(out, FORMAT_VERSION)
        write_varint(out, profile.profile_id)
        write_varint(out, profile.write_granularity_ms)
        write_varint(out, len(profile.slices))
        for profile_slice in profile.slices:
            body = ProfileCodec.encode_slice(profile_slice)
            write_varint(out, len(body))
            out.extend(body)
        return bytes(out)

    @staticmethod
    def decode_profile(blob: bytes) -> ProfileData:
        pos = 0
        magic, pos = read_varint(blob, pos)
        if magic != MAGIC:
            raise SerializationError(f"bad magic {magic:#x}; not an IPS profile")
        version, pos = read_varint(blob, pos)
        if version != FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        profile_id, pos = read_varint(blob, pos)
        granularity, pos = read_varint(blob, pos)
        n_slices, pos = read_varint(blob, pos)
        profile = ProfileData(profile_id, granularity)
        slices = []
        for _ in range(n_slices):
            length, pos = read_varint(blob, pos)
            if pos + length > len(blob):
                raise SerializationError("slice body past end of profile blob")
            profile_slice, consumed = ProfileCodec._read_slice(blob, pos)
            if consumed != pos + length:
                raise SerializationError("slice body length mismatch")
            pos = consumed
            slices.append(profile_slice)
        if pos != len(blob):
            raise SerializationError(
                f"{len(blob) - pos} trailing bytes after profile"
            )
        profile.replace_slices(slices)
        return profile


def serialize_profile(profile: ProfileData) -> bytes:
    """Module-level convenience wrapper over :class:`ProfileCodec`."""
    return ProfileCodec.encode_profile(profile)


def deserialize_profile(blob: bytes) -> ProfileData:
    """Module-level convenience wrapper over :class:`ProfileCodec`."""
    return ProfileCodec.decode_profile(blob)
