"""Snappy-style byte compression, implemented from scratch.

IPS compresses serialized profiles with Snappy before writing them to the
key-value store (§III-E).  Snappy itself is unavailable offline, so this
module implements a small LZ77 codec with snappy-flavoured framing:

* the stream starts with the uncompressed length as a varint;
* then a sequence of tagged elements follows — **literal** runs
  (tag byte ``0x00 | (len-1) << 2`` for short runs, with longer runs
  spilling length bytes) and **copies** (offset/length references into the
  already-decoded output).

Like Snappy, the encoder favours speed over ratio: a 4-byte hash table
finds matches, no entropy coding is performed, and incompressible input
degrades to literals with only the header as overhead.
"""

from __future__ import annotations

from ..errors import CompressionError

_MIN_MATCH = 4
_MAX_OFFSET = 1 << 16
_HASH_BITS = 14
_HASH_SIZE = 1 << _HASH_BITS

_TAG_LITERAL = 0
_TAG_COPY = 1


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CompressionError("truncated varint in compressed stream")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CompressionError("varint overflow in compressed stream")


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Emit literal runs; each tag covers up to 60 bytes, longer runs use
    extension length bytes exactly like snappy's 1/2-byte length forms."""
    length = end - start
    while length > 0:
        run = min(length, 0xFFFF + 61)
        if run <= 60:
            out.append(_TAG_LITERAL | ((run - 1) << 2))
        elif run <= 0xFF + 61:
            out.append(_TAG_LITERAL | (60 << 2))
            out.append(run - 61)
        else:
            out.append(_TAG_LITERAL | (61 << 2))
            encoded = run - 61
            out.append(encoded & 0xFF)
            out.append((encoded >> 8) & 0xFF)
        out.extend(data[start : start + run])
        start += run
        length -= run


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    """Emit copy elements; lengths above 64 split into multiple copies."""
    while length > 0:
        run = min(length, 64)
        if run < _MIN_MATCH and length != run:
            # Avoid leaving a tail too short to encode; rebalance.
            run = length
        out.append(_TAG_COPY | ((run - 1) << 2))
        out.append(offset & 0xFF)
        out.append((offset >> 8) & 0xFF)
        length -= run


def _hash4(data: bytes, pos: int) -> int:
    block = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return ((block * 0x1E35A7BD) & 0xFFFFFFFF) >> (32 - _HASH_BITS)


def compress(data: bytes) -> bytes:
    """Compress ``data``; round-trips with :func:`decompress`."""
    out = bytearray()
    _write_varint(out, len(data))
    if not data:
        return bytes(out)
    table = [-1] * _HASH_SIZE
    pos = 0
    literal_start = 0
    limit = len(data) - _MIN_MATCH
    while pos <= limit:
        slot = _hash4(data, pos)
        candidate = table[slot]
        table[slot] = pos
        if (
            candidate >= 0
            and pos - candidate <= _MAX_OFFSET
            and data[candidate : candidate + _MIN_MATCH]
            == data[pos : pos + _MIN_MATCH]
        ):
            # Extend the match forward as far as it goes.
            match_len = _MIN_MATCH
            max_len = len(data) - pos
            while (
                match_len < max_len
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            _emit_copy(out, pos - candidate, match_len)
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    if literal_start < len(data):
        _emit_literal(out, data, literal_start, len(data))
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    expected_len, pos = _read_varint(blob, 0)
    out = bytearray()
    while pos < len(blob):
        tag = blob[pos]
        pos += 1
        kind = tag & 0x03
        if kind == _TAG_LITERAL:
            length_code = tag >> 2
            if length_code < 60:
                run = length_code + 1
            elif length_code == 60:
                if pos >= len(blob):
                    raise CompressionError("truncated literal length")
                run = blob[pos] + 61
                pos += 1
            elif length_code == 61:
                if pos + 1 >= len(blob):
                    raise CompressionError("truncated literal length")
                run = blob[pos] | (blob[pos + 1] << 8)
                run += 61
                pos += 2
            else:
                raise CompressionError(f"unsupported literal length code {length_code}")
            if pos + run > len(blob):
                raise CompressionError("literal run past end of stream")
            out.extend(blob[pos : pos + run])
            pos += run
        elif kind == _TAG_COPY:
            run = (tag >> 2) + 1
            if pos + 1 >= len(blob):
                raise CompressionError("truncated copy element")
            offset = blob[pos] | (blob[pos + 1] << 8)
            pos += 2
            if offset == 0 or offset > len(out):
                raise CompressionError(
                    f"copy offset {offset} invalid at output length {len(out)}"
                )
            # Overlapping copies are the LZ idiom for runs: copy byte-wise.
            start = len(out) - offset
            for index in range(run):
                out.append(out[start + index])
        else:
            raise CompressionError(f"unknown element tag {kind}")
    if len(out) != expected_len:
        raise CompressionError(
            f"decompressed length {len(out)} != header {expected_len}"
        )
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Compressed size over original size (1.0 means no gain)."""
    if not data:
        return 1.0
    return len(compress(data)) / len(data)
